"""Ablation benches for the design choices called out in DESIGN.md §5:
solver backend, curve-fit degree and probe budget."""

from __future__ import annotations

import pytest
from _harness import run_once, save_report

from repro.analysis import format_table
from repro.core.config import CurveConfig, ExplorationConfig, IlpConfig, KnapsackLBConfig
from repro.core.controller import KnapsackLBController
from repro.core.ilp import build_assignment_problem
from repro.experiments.ilp_scale import f_series_like_curve
from repro.solver import available_backends, solve
from repro.workloads import build_testbed_cluster


def _solver_backend_study(num_dips: int = 60):
    curve = f_series_like_curve(num_dips)
    curves = {f"d{i}": curve for i in range(num_dips)}
    problem = build_assignment_problem(curves, config=IlpConfig())
    rows = []
    for backend in available_backends():
        if backend == "dp":
            continue  # no finite-theta support needed here, but dp is slow at this size
        result = solve(problem, backend=backend, time_limit_s=30.0)
        rows.append(
            [
                backend,
                result.status.value,
                f"{result.solve_time_s * 1000:.0f} ms",
                f"{(result.objective_ms or 0.0):.3f}",
            ]
        )
    return rows


def test_ablation_solver_backends(benchmark):
    rows = run_once(benchmark, _solver_backend_study)
    save_report(
        "ablation_solver_backends",
        format_table(["backend", "status", "time", "objective"], rows),
    )
    # Backends that prove optimality agree exactly; backends that stop at a
    # time limit (pure-Python branch & bound at this size) or are heuristic
    # (greedy) must stay within 2× of the best solution found.
    by_backend = {row[0]: (row[1], float(row[3])) for row in rows}
    solved = {
        name: value
        for name, (status, value) in by_backend.items()
        if status in ("optimal", "feasible")
    }
    assert solved
    best = min(solved.values())
    optimal = [
        value for name, (status, value) in by_backend.items() if status == "optimal"
    ]
    for value in optimal:
        assert value == pytest.approx(min(optimal), rel=0.01)
    for value in solved.values():
        assert value <= best * 2.0


def _curve_degree_study(degrees=(1, 2, 3)):
    rows = []
    for degree in degrees:
        cluster = build_testbed_cluster(load_fraction=0.70, seed=42)
        config = KnapsackLBConfig(curve=CurveConfig(degree=degree))
        controller = KnapsackLBController("ablate-degree", cluster, config=config)
        controller.converge()
        state = cluster.state()
        utils = state.utilization.values()
        rows.append(
            [
                degree,
                f"{state.overall_mean_latency_ms():.2f}",
                f"{max(utils) - min(utils):.2f}",
            ]
        )
    return rows


def test_ablation_curve_degree(benchmark):
    rows = run_once(benchmark, _curve_degree_study)
    save_report(
        "ablation_curve_degree",
        format_table(["poly degree", "mean latency (ms)", "util spread"], rows)
        + "\n(paper uses degree 2)",
    )
    latencies = [float(row[1]) for row in rows]
    assert all(value > 0 for value in latencies)


def _probe_budget_study(budgets=(4, 10, 25)):
    rows = []
    for budget in budgets:
        cluster = build_testbed_cluster(load_fraction=0.70, seed=42)
        config = KnapsackLBConfig(exploration=ExplorationConfig(max_iterations=budget))
        controller = KnapsackLBController("ablate-budget", cluster, config=config)
        controller.converge()
        measurements = [e.measurements for e in controller.explorations.values()]
        state = cluster.state()
        rows.append(
            [
                budget,
                f"{sum(measurements) / len(measurements):.1f}",
                f"{state.overall_mean_latency_ms():.2f}",
            ]
        )
    return rows


def test_ablation_probe_budget(benchmark):
    rows = run_once(benchmark, _probe_budget_study)
    save_report(
        "ablation_probe_budget",
        format_table(
            ["max iterations", "mean measurements/DIP", "mean latency (ms)"], rows
        )
        + "\n(paper: fewer than 10 measurements per DIP suffice)",
    )
    assert len(rows) == 3

"""Request-engine throughput: streaming/columnar hot path vs the seed path.

The policy-comparison experiments (Figs. 3, 4, 12-14, Tables 1, 4, 5) all
run on the request-level simulator, so its per-request cost bounds every
study's scale.  This bench measures, at 64 DIPs / 1M requests, the rebuilt
hot path (tuple-heap engine, streaming batched arrivals, slotted requests,
bound-method dispatch, columnar metrics) against a faithful inline copy of
the seed implementation (dataclass heap events + per-event handles, the
whole Poisson run pre-scheduled upfront, two closures + one scalar RNG draw
per request, list-of-objects metrics).  Emits
``BENCH_request_engine.json`` with requests/s, events/s, peak scheduled
events and the speedup; the acceptance bar is >= 10x with the new path's
peak heap O(DIPs + in-flight), not O(total requests).

Run directly (``PYTHONPATH=src python benchmarks/bench_request_engine.py``)
or under pytest-benchmark.  ``BENCH_REQUEST_ENGINE_REQUESTS`` overrides the
request count (useful for quick local runs; the recorded JSON should come
from the full 1M-request setting).
"""

from __future__ import annotations

import collections
import gc
import heapq
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from _harness import save_json, save_report

from repro.backends import DipServer, custom_vm_type
from repro.lb import RoundRobin
from repro.sim import RequestCluster
from repro.sim.client import WorkloadGenerator
from repro.sim.request import RequestOutcome

NUM_DIPS = 64
NUM_REQUESTS = int(os.environ.get("BENCH_REQUEST_ENGINE_REQUESTS", 1_000_000))
LOAD_FRACTION = 0.7
SPEEDUP_FLOOR = 10.0
#: retry-armed throughput at 0% failures must stay >= this x the plain
#: engine's — the resilience bookkeeping may not tax healthy runs > 10%.
RETRY_OVERHEAD_FLOOR = 0.9


def build_pool(num_dips: int, *, cores: int = 4, cap_per_core: float = 400.0):
    dips = {}
    for index in range(num_dips):
        vm = custom_vm_type(
            f"vm-{index}", vcpus=cores, capacity_rps=cap_per_core * cores
        )
        dips[f"d{index}"] = DipServer(f"d{index}", vm, seed=index, jitter_fraction=0.0)
    return dips


# --- the seed's request path (preserved inline for comparison) -----------------
#
# A faithful copy of the pre-refactor implementation: `_ScheduledEvent`
# dataclass heap entries ordered by generated __lt__, an EventHandle per
# schedule() call, every arrival pre-scheduled before the first event fires,
# per-request scalar RNG draws, per-request isinstance dispatch checks,
# dict-backed Request objects and closure-based completion dispatch.


@dataclass
class _SeedRequest:
    """The seed's Request: a plain (dict-backed) dataclass."""

    request_id: int
    flow: object
    arrival_time: float
    dip: str | None = None
    start_service_time: float | None = None
    completion_time: float | None = None
    outcome: RequestOutcome | None = None


class SeedRoundRobin(RoundRobin):
    """The seed's round robin: healthy DIP set recomputed on every select."""

    def select(self, flow):
        candidates = tuple(d for d, v in self._views.items() if v.healthy)
        dip = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return dip


@dataclass(order=True)
class _SeedEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class _SeedHandle:
    def __init__(self, event: _SeedEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True


class SeedScheduler:
    """The seed EventScheduler: dataclass events, handle per schedule."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_SeedEvent] = []
        self._sequence = itertools.count()
        self._processed = 0
        self.peak_pending = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> _SeedHandle:
        event = _SeedEvent(
            time=self._now + delay, sequence=next(self._sequence), callback=callback
        )
        heapq.heappush(self._queue, event)
        if len(self._queue) > self.peak_pending:
            self.peak_pending = len(self._queue)
        return _SeedHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _SeedHandle:
        return self.schedule(max(0.0, time - self._now), callback)

    def run_until(self, end_time: float) -> int:
        executed = 0
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
            executed += 1
            self._processed += 1
        self._now = max(self._now, end_time)
        return executed


class SeedStation:
    """The seed DipStation: one scalar RNG draw + a closure per service."""

    def __init__(self, dip, scheduler, *, queue_capacity=256, seed=None) -> None:
        self.dip = dip
        self._scheduler = scheduler
        self._queue_capacity = queue_capacity
        self._rng = np.random.default_rng(seed)
        self._waiting = collections.deque()
        self._busy_workers = 0
        self._last_change = scheduler.now
        self.busy_worker_seconds = 0.0

    @property
    def workers(self) -> int:
        return self.dip.vm_type.vcpus

    @property
    def active_requests(self) -> int:
        return self._busy_workers + len(self._waiting)

    def _mean_service_time_s(self) -> float:
        model = self.dip.latency_model
        return model.servers / model.capacity_rps

    def _account(self) -> None:
        now = self._scheduler.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self.busy_worker_seconds += self._busy_workers * elapsed
            self._last_change = now

    def mean_utilization(self, duration_s: float) -> float:
        if duration_s <= 0:
            return 0.0
        self._account()
        return min(1.0, self.busy_worker_seconds / (self.workers * duration_s))

    def submit(self, request: _SeedRequest, on_complete) -> None:
        if self.dip.failed:
            request.outcome = RequestOutcome.FAILED_DIP
            request.completion_time = self._scheduler.now
            on_complete(request)
            return
        self._account()
        if self._busy_workers < self.workers:
            self._start_service(request, on_complete)
        elif len(self._waiting) < self._queue_capacity:
            self._waiting.append((request, on_complete))
        else:
            request.outcome = RequestOutcome.DROPPED
            request.completion_time = self._scheduler.now
            on_complete(request)

    def _start_service(self, request: _SeedRequest, on_complete) -> None:
        self._busy_workers += 1
        request.start_service_time = self._scheduler.now
        service_time = float(self._rng.exponential(self._mean_service_time_s()))

        def finish() -> None:
            self._account()
            self._busy_workers -= 1
            request.completion_time = self._scheduler.now
            request.outcome = RequestOutcome.COMPLETED
            on_complete(request)
            self._dequeue_next()

        self._scheduler.schedule(service_time, finish)

    def _dequeue_next(self) -> None:
        if not self._waiting or self._busy_workers >= self.workers:
            return
        queued, callback = self._waiting.popleft()
        self._start_service(queued, callback)


@dataclass
class _SeedRecord:
    dip: str
    latency_ms: float
    completed: bool
    timestamp: float = 0.0


class SeedMetrics:
    """The seed MetricsCollector: one record object per request."""

    def __init__(self) -> None:
        self._records: list[_SeedRecord] = []

    def record_request(self, dip, latency_ms, *, completed=True, timestamp=0.0):
        self._records.append(
            _SeedRecord(
                dip=dip,
                latency_ms=float(latency_ms) if latency_ms is not None else float("nan"),
                completed=completed,
                timestamp=timestamp,
            )
        )

    def latencies_ms(self) -> np.ndarray:
        return np.asarray(
            [r.latency_ms for r in self._records if r.completed], dtype=float
        )


class SeedCluster:
    """The seed RequestCluster: whole run pre-scheduled, closures per request."""

    def __init__(self, dips, policy, *, rate_rps, seed=None, queue_capacity=256):
        self.dips = dict(dips)
        self.policy = policy
        self.scheduler = SeedScheduler()
        self.workload = WorkloadGenerator(rate_rps, seed=seed)
        self.metrics = SeedMetrics()
        self._stations = {
            dip_id: SeedStation(
                server,
                self.scheduler,
                queue_capacity=queue_capacity,
                seed=None if seed is None else seed + index + 1,
            )
            for index, (dip_id, server) in enumerate(self.dips.items())
        }
        self._submitted = 0
        self._completed = 0
        self._dropped = 0

    def _submit_one(self) -> None:
        from repro.lb.dns_lb import DnsWeightedPolicy
        from repro.lb.mux import MuxPool

        flow = self.workload.next_flow()
        if isinstance(self.policy, DnsWeightedPolicy):
            self.policy.advance_time(self.scheduler.now)
        dip_id = self.policy.select(flow)
        request = _SeedRequest(
            request_id=self.workload.requests_generated,
            flow=flow,
            arrival_time=self.scheduler.now,
            dip=dip_id,
        )
        self._submitted += 1
        if isinstance(self.policy, MuxPool):
            self.policy.on_connection_open(flow, dip_id)
        else:
            self.policy.on_connection_open(dip_id)

        def on_complete(req: _SeedRequest) -> None:
            if isinstance(self.policy, MuxPool):
                self.policy.on_connection_close(flow, dip_id)
            else:
                self.policy.on_connection_close(dip_id)
            completed = req.outcome is RequestOutcome.COMPLETED
            if completed:
                self._completed += 1
            else:
                self._dropped += 1
            latency = (
                (req.completion_time - req.arrival_time) * 1000.0
                if req.completion_time is not None
                else None
            )
            self.metrics.record_request(
                dip_id, latency, completed=completed, timestamp=self.scheduler.now
            )

        self._stations[dip_id].submit(request, on_complete)

    def run(self, *, num_requests: int):
        duration_s = num_requests / self.workload.rate_rps
        # Pre-schedule Poisson arrivals across the whole run (the seed's
        # O(total-requests) heap footprint).
        arrival_time = 0.0
        while True:
            arrival_time += self.workload.next_interarrival_s()
            if arrival_time >= duration_s:
                break
            self.scheduler.schedule_at(arrival_time, self._submit_one)
        self.scheduler.run_until(duration_s + 30.0)
        return duration_s


# --- measurement ----------------------------------------------------------------


def run_request_engine_bench(
    *, num_dips: int = NUM_DIPS, num_requests: int = NUM_REQUESTS
) -> dict:
    dips = build_pool(num_dips)
    total_capacity = sum(d.capacity_rps for d in dips.values())
    rate = LOAD_FRACTION * total_capacity

    # New streaming engine, best of three runs (measured first, on a clean
    # heap — the seed path leaves ~1M live objects behind).
    # Streaming engine and retry-armed engine, best of three runs each,
    # measured first (on a clean heap — the seed path leaves ~1M live
    # objects behind) and *interleaved* engine/retry/engine/retry so both
    # sample the same process epochs: later runs in a process are
    # systematically slower as the heap ages, and a blocked ordering would
    # charge all of that drift to whichever side ran second.
    #
    # The retry side arms RetryPolicy(enabled=True) on an all-healthy
    # pool: pure bookkeeping overhead (timeout wheel, attempt columns,
    # budget accounting) with zero actual retries.
    from repro.api.spec import RetryPolicy

    engine_wall_s = engine_cpu_s = float("inf")
    retry_wall_s = retry_cpu_s = float("inf")
    for _ in range(3):
        cluster = RequestCluster(
            build_pool(num_dips), RoundRobin(list(dips)), rate_rps=rate, seed=7
        )
        gc.collect()  # each timed run starts from the same collector state
        started = time.perf_counter()
        started_cpu = time.process_time()
        result = cluster.run(num_requests=num_requests)
        engine_cpu_s = min(engine_cpu_s, time.process_time() - started_cpu)
        engine_wall_s = min(engine_wall_s, time.perf_counter() - started)

        retry_cluster = RequestCluster(
            build_pool(num_dips),
            RoundRobin(list(dips)),
            rate_rps=rate,
            seed=7,
            retry=RetryPolicy(enabled=True),
        )
        gc.collect()
        started = time.perf_counter()
        started_cpu = time.process_time()
        retry_result = retry_cluster.run(num_requests=num_requests)
        retry_cpu_s = min(retry_cpu_s, time.process_time() - started_cpu)
        retry_wall_s = min(retry_wall_s, time.perf_counter() - started)
    engine_latency_ms = result.metrics.mean_latency_ms()
    retry_rps = retry_result.requests_submitted / retry_wall_s
    retry_summary = retry_result.metrics.retry_summary() or {}

    # Seed-equivalent path, also best of two runs (symmetric timing — a
    # one-sided min() would let runner noise skew the ratio either way).
    seed_wall_s = float("inf")
    for _ in range(2):
        seed_cluster = SeedCluster(
            build_pool(num_dips), SeedRoundRobin(list(dips)), rate_rps=rate, seed=7
        )
        started = time.perf_counter()
        seed_cluster.run(num_requests=num_requests)
        seed_wall_s = min(seed_wall_s, time.perf_counter() - started)
    seed_requests = seed_cluster._submitted
    seed_events = seed_cluster.scheduler.processed_events
    seed_latency_ms = float(seed_cluster.metrics.latencies_ms().mean())

    seed_rps = seed_requests / seed_wall_s
    engine_rps = result.requests_submitted / engine_wall_s
    return {
        "scale": {
            "num_dips": num_dips,
            "num_requests": num_requests,
            "load_fraction": LOAD_FRACTION,
            "rate_rps": rate,
        },
        "seed_path": {
            "wall_s": seed_wall_s,
            "requests": seed_requests,
            "requests_per_s": seed_rps,
            "events_per_s": seed_events / seed_wall_s,
            "peak_scheduled_events": seed_cluster.scheduler.peak_pending,
            "mean_latency_ms": seed_latency_ms,
        },
        "engine": {
            "wall_s": engine_wall_s,
            "cpu_s": engine_cpu_s,
            "requests": result.requests_submitted,
            "requests_per_s": engine_rps,
            "events_per_s": cluster.scheduler.processed_events / engine_wall_s,
            "peak_scheduled_events": cluster.scheduler.peak_pending_events,
            "mean_latency_ms": engine_latency_ms,
            "drop_fraction": result.drop_fraction,
        },
        "retry_overhead": {
            "wall_s": retry_wall_s,
            "cpu_s": retry_cpu_s,
            "requests": retry_result.requests_submitted,
            "requests_per_s": retry_rps,
            # Ratio of best-of-three CPU times, not wall times: the two
            # runs execute back to back, and process_time is immune to the
            # runner-contention noise that dwarfs a ~5% effect in wall
            # clock on shared CI machines.
            "relative_throughput": engine_cpu_s / retry_cpu_s,
            "retried_fraction": float(
                retry_summary.get("retried_fraction", 0.0)
            ),
            "floor": RETRY_OVERHEAD_FLOOR,
        },
        "speedup": engine_rps / seed_rps,
        "latency_rel_diff": abs(engine_latency_ms - seed_latency_ms)
        / max(seed_latency_ms, 1e-9),
        "speedup_floor": SPEEDUP_FLOOR,
    }


def _render(results: dict) -> str:
    scale = results["scale"]
    seed = results["seed_path"]
    engine = results["engine"]
    return (
        f"scale                      : {scale['num_dips']} DIPs, "
        f"{scale['num_requests']:,} requests @ {scale['load_fraction']:.0%} load\n"
        f"seed path                  : {seed['wall_s']:.1f} s "
        f"({seed['requests_per_s']:,.0f} req/s, {seed['events_per_s']:,.0f} ev/s, "
        f"peak heap {seed['peak_scheduled_events']:,})\n"
        f"streaming engine           : {engine['wall_s']:.1f} s "
        f"({engine['requests_per_s']:,.0f} req/s, {engine['events_per_s']:,.0f} ev/s, "
        f"peak heap {engine['peak_scheduled_events']:,})\n"
        f"retry armed, 0% failures   : {results['retry_overhead']['wall_s']:.1f} s "
        f"({results['retry_overhead']['requests_per_s']:,.0f} req/s, "
        f"{results['retry_overhead']['relative_throughput']:.0%} of engine, "
        f"floor {results['retry_overhead']['floor']:.0%})\n"
        f"speedup                    : {results['speedup']:.1f}x "
        f"(floor {results['speedup_floor']:.0f}x)\n"
        f"mean latency               : seed {seed['mean_latency_ms']:.3f} ms vs "
        f"engine {engine['mean_latency_ms']:.3f} ms "
        f"({results['latency_rel_diff']:.2%} apart)"
    )


def _check(results: dict) -> None:
    assert results["speedup"] >= results["speedup_floor"], (
        f"request-engine speedup {results['speedup']:.2f}x below floor "
        f"{results['speedup_floor']}x"
    )
    # The new heap must stay O(DIPs + in-flight), not O(total requests).
    assert (
        results["engine"]["peak_scheduled_events"]
        < results["scale"]["num_requests"] / 100
    )
    # Both paths simulate the same M/M/c/K system; means must agree closely.
    assert results["latency_rel_diff"] < 0.05
    # Arming retries may not tax a healthy run beyond the overhead floor,
    # and an all-healthy pool must produce zero actual retries.
    retry = results["retry_overhead"]
    assert retry["relative_throughput"] >= retry["floor"], (
        f"retry-armed throughput {retry['relative_throughput']:.2%} of the "
        f"plain engine, below the {retry['floor']:.0%} floor"
    )
    assert retry["retried_fraction"] == 0.0


def test_request_engine_speedup(benchmark):
    results = benchmark.pedantic(run_request_engine_bench, rounds=1, iterations=1)
    save_report("request_engine", _render(results))
    save_json("BENCH_request_engine", results)
    _check(results)


if __name__ == "__main__":
    bench_results = run_request_engine_bench()
    save_report("request_engine", _render(bench_results))
    save_json("BENCH_request_engine", bench_results)
    _check(bench_results)
    print("ok")

"""Figs. 15-17: reaction to DIP failures, capacity changes and traffic changes."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_table
from repro.experiments import run_dynamics_study
from repro.experiments.dynamics import PLOTTED_DIPS


def _render(scenario) -> str:
    rows = [
        [
            dip,
            f"{scenario.weights_before.get(dip, 0.0):.4f}",
            f"{scenario.weights_after.get(dip, 0.0):.4f}",
        ]
        for dip in PLOTTED_DIPS
    ]
    return (
        format_table(["DIP", "weight before", "weight after"], rows)
        + f"\nevents: {scenario.events}, detected after {scenario.detection_time_s:.0f}s, "
        f"max utilization after: {scenario.max_utilization_after:.2f}"
    )


def test_fig15_16_17_dynamics(benchmark):
    study = run_once(benchmark, run_dynamics_study)
    save_report(
        "fig15_failure",
        _render(study.failure) + "\n(paper: failed DIPs' weight mostly absorbed by larger DIPs)",
    )
    save_report("fig16_capacity_change", _render(study.capacity))
    save_report("fig17_traffic_change", _render(study.traffic))

    # Fig. 15: the failed DIPs end with zero weight and the rest is
    # redistributed unevenly (latency-informed, not an equal split).
    failure = study.failure
    assert failure.weights_after.get("DIP-25", 0.0) == 0.0
    assert failure.weights_after.get("DIP-26", 0.0) == 0.0
    assert sum(failure.weights_after.values()) > 0.99
    assert failure.max_utilization_after <= 1.0

    # Fig. 16: the capacity-reduced DIPs lose weight.
    capacity = study.capacity
    lost = sum(
        capacity.weights_before[d] - capacity.weights_after.get(d, 0.0)
        for d in ("DIP-25", "DIP-26", "DIP-27", "DIP-28")
    )
    assert lost > 0.0
    assert capacity.max_utilization_after <= 1.0

    # Fig. 17: after +10 % traffic no DIP is overloaded and weights changed.
    traffic = study.traffic
    assert traffic.max_utilization_after <= 1.0
    assert traffic.events  # the change was detected

"""Fig. 5: latency/CPU vs traffic; pings stay flat."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_table
from repro.experiments import run_weight_sweep


def test_fig5_weight_latency_sweep(benchmark):
    points = run_once(benchmark, run_weight_sweep)
    rows = [
        [
            f"{p.multiplier}X",
            f"{p.cpu_utilization:.0f}",
            f"{p.app_latency_ms:.2f}",
            f"{p.ping_latency_ms:.2f}",
            f"{p.tcp_latency_ms:.2f}",
        ]
        for p in points
    ]
    save_report(
        "fig05_weight_latency",
        format_table(["traffic", "CPU %", "app latency (ms)", "ICMP ping (ms)", "TCP ping (ms)"], rows),
    )
    # Application latency rises with load; pings do not (Fig. 5).
    assert points[-1].app_latency_ms > points[0].app_latency_ms * 2
    assert points[-1].ping_latency_ms < points[0].ping_latency_ms * 1.5
    assert points[-1].cpu_utilization > 90

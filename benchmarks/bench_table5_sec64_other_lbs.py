"""Table 5 (Nginx / Azure Traffic Manager) and §6.4 (agent-based baseline)."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_table
from repro.experiments import run_agent_baseline, run_other_lb_weights
from repro.experiments.other_lbs import TABLE5_WEIGHTS


def test_table5_other_lbs(benchmark):
    result = run_once(benchmark, run_other_lb_weights)
    rows = [
        ["Nginx"] + [f"{result.nginx_share.get(d, 0.0) * 100:.0f}%" for d in TABLE5_WEIGHTS],
        ["Azure TM"] + [f"{result.traffic_manager_share.get(d, 0.0) * 100:.0f}%" for d in TABLE5_WEIGHTS],
        ["programmed"] + [f"{w * 100:.0f}%" for w in TABLE5_WEIGHTS.values()],
    ]
    save_report(
        "table5_other_lbs",
        format_table(["LB"] + list(TABLE5_WEIGHTS), rows)
        + "\n(paper: Nginx 20/30/50, Azure TM 18/34/48)",
    )
    # Nginx tracks the programmed weights closely; DNS roughly (cache skew).
    for dip, weight in TABLE5_WEIGHTS.items():
        assert abs(result.nginx_share.get(dip, 0.0) - weight) <= 0.03
        assert abs(result.traffic_manager_share.get(dip, 0.0) - weight) <= 0.12


def test_sec64_agent_baseline(benchmark):
    result = run_once(benchmark, run_agent_baseline)
    report = (
        f"agent-based iterations to uniform CPU : {result.agent_iterations} (paper: 4)\n"
        f"agent final utilization spread        : {result.agent_final_spread:.3f}\n"
        f"KnapsackLB ILP computations           : {result.klb_ilp_runs} weight computation(s)\n"
        f"KnapsackLB utilization spread         : {result.klb_utilization_spread:.3f}"
    )
    save_report("sec64_agent_baseline", report)
    # The agent loop needs multiple iterations; KLB computes weights in one
    # ILP shot once the curves are known (§6.4).
    assert result.agent_iterations >= 2
    assert result.klb_ilp_runs <= 4
    assert result.klb_utilization_spread <= 0.45

"""Fig. 14: the 1×/0.8×/0.6× 3-DIP pool under (weighted) RR, LC and KnapsackLB."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_table, format_weights
from repro.experiments import run_three_dip_comparison


def test_fig14_three_dip_pool(benchmark):
    comparison = run_once(benchmark, run_three_dip_comparison, requests=6000)
    dips = sorted(next(iter(comparison.runs.values())).cpu_utilization)
    util_rows = []
    latency_rows = []
    for name, run in comparison.runs.items():
        util_rows.append([name] + [f"{run.cpu_utilization[d] * 100:.0f}" for d in dips])
        latency_rows.append(
            [name] + [f"{run.mean_latency_ms[d]:.2f}" for d in dips] + [f"{run.overall_latency_ms:.2f}"]
        )
    save_report(
        "fig14_three_dip",
        format_table(["policy"] + [f"{d} CPU %" for d in dips], util_rows)
        + "\n\n"
        + format_table(["policy"] + [f"{d} lat (ms)" for d in dips] + ["overall"], latency_rows)
        + "\n\nKLB weights: "
        + format_weights(comparison.klb_weights)
        + f"\nmax gain vs RR: {comparison.max_gain_percent('rr'):.0f}% "
        f"(paper: 37%), vs LC: {comparison.max_gain_percent('lc'):.0f}% (paper: 29%)",
    )

    runs = comparison.runs
    # RR over-utilises the 0.6× DIP; KLB does not (Fig. 14a).
    assert runs["rr"].cpu_utilization["DIP-0.6"] > runs["klb"].cpu_utilization["DIP-0.6"]
    # KLB's utilization is roughly uniform across the three DIPs.
    klb_utils = list(runs["klb"].cpu_utilization.values())
    assert max(klb_utils) - min(klb_utils) <= 0.25
    # KLB lowers the latency of the requests RR sent to DIP-0.6 (Fig. 14b).
    assert runs["klb"].mean_latency_ms["DIP-0.6"] < runs["rr"].mean_latency_ms["DIP-0.6"]
    assert runs["klb"].overall_latency_ms < runs["rr"].overall_latency_ms

"""Figs. 12-13 and Table 4: KnapsackLB vs other policies on the 30-DIP testbed."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_table
from repro.experiments import run_policy_comparison, run_weighted_policy_comparison

GROUPS = ("1-core", "2-core", "4-core", "8-core")


def _render(comparison) -> str:
    util_rows = []
    latency_rows = []
    for name, run in comparison.runs.items():
        util_rows.append([name] + [f"{run.utilization_by_group[g] * 100:.0f}" for g in GROUPS])
        latency_rows.append(
            [name]
            + [f"{run.latency_by_group_ms[g]:.2f}" for g in GROUPS]
            + [f"{run.overall_latency_ms:.2f}"]
        )
    return (
        format_table(["policy"] + [f"{g} CPU %" for g in GROUPS], util_rows)
        + "\n\n"
        + format_table(
            ["policy"] + [f"{g} lat (ms)" for g in GROUPS] + ["overall (ms)"],
            latency_rows,
        )
    )


def test_fig12_table4_unweighted_policies(benchmark):
    comparison = run_once(benchmark, run_policy_comparison, requests=6000)
    gains = {
        baseline: comparison.max_gain_percent(baseline)
        for baseline in ("rr", "lc", "random", "p2", "hash")
    }
    fractions = {
        baseline: comparison.improved_fraction_percent(baseline)
        for baseline in ("rr", "lc", "random", "p2", "hash")
    }
    gain_rows = [
        [name, f"{gains[name]:.0f}%", f"{fractions[name]:.0f}%"] for name in gains
    ]
    save_report(
        "fig12_table4_unweighted",
        _render(comparison)
        + "\n\n"
        + format_table(["baseline", "max latency gain (KLB)", "fraction of requests improved"], gain_rows)
        + "\n(paper Table 4 unweighted row: RR 45%, LC 23%, RD 42%, P2 24%, Azure 41%)",
    )

    runs = comparison.runs
    # Fig. 12: KLB keeps the small DIPs far cooler than RR/hash/random do.
    assert runs["klb"].utilization_by_group["1-core"] < runs["rr"].utilization_by_group["1-core"]
    assert runs["klb"].utilization_by_group["1-core"] < runs["hash"].utilization_by_group["1-core"]
    # KLB's CPU is roughly uniform across DIP types.
    klb_utils = [runs["klb"].utilization_by_group[g] for g in GROUPS]
    assert max(klb_utils) - min(klb_utils) <= 0.30
    # Table 4: KLB cuts overall latency vs the static policies.
    for baseline in ("rr", "random", "hash"):
        assert runs["klb"].overall_latency_ms < runs[baseline].overall_latency_ms
        assert gains[baseline] > 10.0


def test_fig13_table4_weighted_policies(benchmark):
    comparison = run_once(benchmark, run_weighted_policy_comparison, requests=6000)
    gains = {b: comparison.max_gain_percent(b) for b in ("wrr", "wlc")}
    save_report(
        "fig13_table4_weighted",
        _render(comparison)
        + "\n\n"
        + format_table(
            ["baseline", "max latency gain (KLB)"],
            [[name, f"{value:.0f}%"] for name, value in gains.items()],
        )
        + "\n(paper Table 4 weighted row: WRR 42%, WLC 36%)",
    )
    runs = comparison.runs
    # Fig. 13: core-count weights ignore the sub-linear scaling of the small
    # DS VMs, so they push the 1-core DIPs hotter than KLB does.
    assert (
        runs["klb"].utilization_by_group["1-core"]
        < runs["wrr"].utilization_by_group["1-core"]
    )
    # KLB's learned weights are at least as good overall as core-count
    # weights, without requiring any a-priori hardware knowledge.
    assert runs["klb"].overall_latency_ms <= runs["wrr"].overall_latency_ms * 1.10
    assert gains["wrr"] > 0.0

"""Figs. 3-4 and Table 1 (§2.1-§2.2): existing LBs vs changing capacities."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_table
from repro.experiments import (
    run_azure_hash_imbalance,
    run_heterogeneous_pair,
    run_policy_capacity_sweep,
)


def _render_sweep(points) -> str:
    rows = []
    for point in points:
        lc_util = point.cpu_utilization["DIP-LC"] * 100
        hc_util = (
            (point.cpu_utilization["DIP-HC-1"] + point.cpu_utilization["DIP-HC-2"]) / 2 * 100
        )
        lc_lat = point.mean_latency_ms["DIP-LC"]
        hc_lat = (point.mean_latency_ms["DIP-HC-1"] + point.mean_latency_ms["DIP-HC-2"]) / 2
        rows.append(
            [
                f"{point.capacity_ratio:.0%}",
                f"{lc_util:.0f}",
                f"{hc_util:.0f}",
                f"{lc_lat:.2f}",
                f"{hc_lat:.2f}",
            ]
        )
    return format_table(
        ["capacity ratio", "DIP-LC CPU %", "DIP-HC CPU %", "DIP-LC lat (ms)", "DIP-HC lat (ms)"],
        rows,
    )


def test_fig3_round_robin_capacity_sweep(benchmark):
    points = run_once(benchmark, run_policy_capacity_sweep, "rr", requests=4000)
    save_report("fig03_rr_capacity_sweep", _render_sweep(points))
    # The imbalance grows as the capacity ratio shrinks (Fig. 3).
    assert points[-1].cpu_utilization["DIP-LC"] > points[0].cpu_utilization["DIP-LC"]
    assert points[-1].mean_latency_ms["DIP-LC"] > points[-1].mean_latency_ms["DIP-HC-1"]


def test_fig4_least_connection_capacity_sweep(benchmark):
    points = run_once(benchmark, run_policy_capacity_sweep, "lc", requests=4000)
    save_report("fig04_lca_capacity_sweep", _render_sweep(points))
    # LCA also leaves the requests served by DIP-LC slower than those served
    # by DIP-HC at low capacity ratios (Fig. 4b) — it adapts less than the
    # capacity loss requires.
    last = points[-1]
    hc_latency = (last.mean_latency_ms["DIP-HC-1"] + last.mean_latency_ms["DIP-HC-2"]) / 2
    assert last.mean_latency_ms["DIP-LC"] > hc_latency
    assert last.cpu_utilization["DIP-LC"] > 0.85


def test_table1_azure_hash_imbalance(benchmark):
    result = run_once(benchmark, run_azure_hash_imbalance, requests=5000)
    rows = [
        ["DIP-LC", f"{result.cpu_utilization['DIP-LC'] * 100:.0f}%", f"{result.mean_latency_ms['DIP-LC']:.2f}"],
        [
            "DIP-HC",
            f"{(result.cpu_utilization['DIP-HC-1'] + result.cpu_utilization['DIP-HC-2']) / 2 * 100:.0f}%",
            f"{(result.mean_latency_ms['DIP-HC-1'] + result.mean_latency_ms['DIP-HC-2']) / 2:.2f}",
        ],
    ]
    save_report(
        "table1_azure_imbalance",
        format_table(["DIP", "CPU utilization", "Latency (ms)"], rows)
        + f"\nDIP-LC latency is {result.latency_gap_percent:.0f}% higher than DIP-HC (paper: 43%)",
    )
    assert result.latency_gap_percent > 10.0


def test_sec22_heterogeneous_pair(benchmark):
    result = run_once(benchmark, run_heterogeneous_pair, requests=5000)
    report = (
        f"equal split latency  : {result.equal_split_latency_ms:.2f} ms\n"
        f"F-biased latency     : {result.f_biased_latency_ms:.2f} ms\n"
        f"improvement          : {result.improvement_percent:.1f} %\n"
        f"equal-split shares   : {result.request_share_equal}"
    )
    save_report("sec22_heterogeneous_pair", report)
    # Sending more traffic to the F-series DIP lowers overall latency (§2.2).
    assert result.f_biased_latency_ms <= result.equal_split_latency_ms

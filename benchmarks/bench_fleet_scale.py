"""Fleet-scale fluid substrate: vectorized kernels vs the seed per-DIP loop.

Measures, at the Table 8 scale path (a 1000-DIP VIP — the largest VIP class
of the datacenter mix), how much faster the numpy-vectorized fluid splits
are than the original per-DIP Python loops, plus the joint multi-VIP fleet
evaluation throughput.  Emits ``BENCH_fleet_scale.json`` so the speedup is
tracked across PRs; the refactor's acceptance bar is >= 5x.

Run directly (``PYTHONPATH=src python benchmarks/bench_fleet_scale.py``) or
under pytest-benchmark (``pytest benchmarks/bench_fleet_scale.py``).
"""

from __future__ import annotations

import time

import numpy as np

from _harness import save_json, save_report

from repro.backends import DipServer, custom_vm_type
from repro.sim.fluid import least_connection_split, power_of_two_split
from repro.workloads import build_shared_dip_fleet

TABLE8_LARGEST_VIP_DIPS = 1000
SPEEDUP_FLOOR = 5.0


def build_heterogeneous_pool(num_dips: int, *, seed: int = 0):
    """A mixed-SKU pool so the LC/P2C fixed points genuinely iterate."""
    rng = np.random.default_rng(seed)
    dips = {}
    for index in range(num_dips):
        cores = int(rng.choice([1, 2, 4, 8]))
        capacity = 400.0 * cores * float(rng.uniform(0.6, 1.4))
        vm = custom_vm_type(f"vm-{index}", vcpus=cores, capacity_rps=capacity)
        dips[f"d{index}"] = DipServer(f"d{index}", vm, seed=index)
    return dips


# --- the seed's per-DIP reference loops (preserved for comparison) -------------


def least_connection_split_perdip(dips, total_rate_rps, *, iterations=200, damping=0.5):
    ids = list(dips)
    if not ids:
        return {}
    weight_vec = np.ones(len(ids))
    rates = np.full(len(ids), total_rate_rps / len(ids))
    for _ in range(iterations):
        latencies = np.array(
            [dips[d].latency_model.mean_latency_ms(r) for d, r in zip(ids, rates)]
        )
        target = weight_vec / np.maximum(latencies, 1e-9)
        target = target / target.sum() * total_rate_rps
        new_rates = damping * target + (1 - damping) * rates
        if np.max(np.abs(new_rates - rates)) < 1e-6 * max(1.0, total_rate_rps):
            rates = new_rates
            break
        rates = new_rates
    return {d: float(r) for d, r in zip(ids, rates)}


def power_of_two_split_perdip(dips, total_rate_rps, *, iterations=100, damping=0.5):
    ids = list(dips)
    n = len(ids)
    if n == 0:
        return {}
    if n == 1:
        return {ids[0]: total_rate_rps}
    rates = np.full(n, total_rate_rps / n)
    for _ in range(iterations):
        utils = np.array(
            [dips[d].latency_model.utilization(r) for d, r in zip(ids, rates)]
        )
        probs = np.zeros(n)
        for i in range(n):
            wins = np.sum(utils[i] < utils) + 0.5 * (np.sum(utils[i] == utils) - 1)
            probs[i] = (1.0 + 2.0 * wins) / (n * n)
        probs = probs / probs.sum()
        new_rates = damping * probs * total_rate_rps + (1 - damping) * rates
        if np.max(np.abs(new_rates - rates)) < 1e-6 * max(1.0, total_rate_rps):
            rates = new_rates
            break
        rates = new_rates
    return {d: float(r) for d, r in zip(ids, rates)}


def _time(func, *args, repeats=3, **kwargs):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_fleet_scale_bench(*, num_dips: int = TABLE8_LARGEST_VIP_DIPS) -> dict:
    dips = build_heterogeneous_pool(num_dips)
    total_rate = sum(d.capacity_rps for d in dips.values()) * 0.7

    lc_loop_s, lc_loop = _time(least_connection_split_perdip, dips, total_rate)
    lc_vec_s, lc_vec = _time(least_connection_split, dips, total_rate)
    p2_loop_s, p2_loop = _time(power_of_two_split_perdip, dips, total_rate)
    p2_vec_s, p2_vec = _time(power_of_two_split, dips, total_rate)

    lc_diff = max(abs(lc_loop[d] - lc_vec[d]) for d in lc_loop)
    p2_diff = max(abs(p2_loop[d] - p2_vec[d]) for d in p2_loop)

    # Joint multi-VIP evaluation throughput (20 VIPs x 2000 shared DIPs).
    fleet = build_shared_dip_fleet(
        num_vips=20, num_dips=2000, load_fraction=0.6, seed=9
    )
    apply_s, _ = _time(fleet.apply)

    return {
        "scale": {
            "num_dips": num_dips,
            "load_fraction": 0.7,
            "fleet_vips": 20,
            "fleet_dips": 2000,
        },
        "least_connection": {
            "per_dip_loop_s": lc_loop_s,
            "vectorized_s": lc_vec_s,
            "speedup": lc_loop_s / lc_vec_s,
            "max_abs_rate_diff_rps": lc_diff,
        },
        "power_of_two": {
            "per_dip_loop_s": p2_loop_s,
            "vectorized_s": p2_vec_s,
            "speedup": p2_loop_s / p2_vec_s,
            "max_abs_rate_diff_rps": p2_diff,
        },
        "fleet_apply": {
            "joint_eval_s": apply_s,
            "dip_evaluations_per_s": 2000 / apply_s,
        },
        "speedup_floor": SPEEDUP_FLOOR,
    }


def _render(results: dict) -> str:
    lc = results["least_connection"]
    p2 = results["power_of_two"]
    fleet = results["fleet_apply"]
    return (
        f"scale                        : {results['scale']['num_dips']} DIPs "
        f"(largest Table 8 VIP class) @ 70 % load\n"
        f"LC   per-DIP loop            : {lc['per_dip_loop_s'] * 1000:.1f} ms\n"
        f"LC   vectorized              : {lc['vectorized_s'] * 1000:.1f} ms "
        f"({lc['speedup']:.1f}x, max rate diff {lc['max_abs_rate_diff_rps']:.2e} rps)\n"
        f"P2C  per-DIP loop            : {p2['per_dip_loop_s'] * 1000:.1f} ms\n"
        f"P2C  vectorized              : {p2['vectorized_s'] * 1000:.1f} ms "
        f"({p2['speedup']:.1f}x, max rate diff {p2['max_abs_rate_diff_rps']:.2e} rps)\n"
        f"fleet joint eval (20x2000)   : {fleet['joint_eval_s'] * 1000:.1f} ms "
        f"({fleet['dip_evaluations_per_s']:,.0f} DIP evals/s)"
    )


def _check(results: dict) -> None:
    assert results["least_connection"]["speedup"] >= SPEEDUP_FLOOR
    assert results["least_connection"]["max_abs_rate_diff_rps"] < 1e-6
    assert results["power_of_two"]["max_abs_rate_diff_rps"] < 1e-6


def test_fleet_scale_speedup(benchmark):
    results = benchmark.pedantic(
        run_fleet_scale_bench, rounds=1, iterations=1
    )
    save_report("fleet_scale", _render(results))
    save_json("BENCH_fleet_scale", results)
    _check(results)


if __name__ == "__main__":
    bench_results = run_fleet_scale_bench()
    save_report("fleet_scale", _render(bench_results))
    save_json("BENCH_fleet_scale", bench_results)
    _check(bench_results)
    print("ok")

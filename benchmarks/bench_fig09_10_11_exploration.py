"""Figs. 9-11: weight exploration, curve fitting and the ILP weight assignment."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_series, format_table, format_weights
from repro.experiments import run_exploration_study


def test_fig9_10_11_exploration_and_ilp_weights(benchmark):
    study = run_once(benchmark, run_exploration_study)

    fig9 = "\n".join(
        format_series(dip, list(enumerate(history, start=1)))
        for dip, history in study.weight_history.items()
    )
    save_report(
        "fig09_exploration_weights",
        fig9 + "\n" + format_series("w_max", study.w_max),
    )

    fig10 = []
    for dip, points in study.fit_points.items():
        fig10.append(format_series(f"{dip} measured", points))
        fig10.append(format_series(f"{dip} fitted", study.curve_samples[dip][::4]))
    save_report("fig10_curve_fit", "\n".join(fig10))

    rows = [[dip, f"{weight:.4f}"] for dip, weight in sorted(study.ilp_weights.items())]
    save_report(
        "fig11_ilp_weights",
        format_table(["DIP", "weight"], rows)
        + "\nmean weight ratio by core count: "
        + format_weights(study.weight_ratio_by_cores)
        + "\n(paper: 1 : 2 : 3.9 : 9.7)",
    )

    # Fig. 9: exploration converges in few iterations with < ~10 measurements.
    assert study.iterations <= 25
    # Fig. 11: weights scale with capacity, roughly 1:2:4:10.
    ratios = study.weight_ratio_by_cores
    assert ratios["1-core"] == 1.0
    assert 1.5 <= ratios["2-core"] <= 3.0
    assert 3.0 <= ratios["4-core"] <= 7.0
    assert 7.0 <= ratios["8-core"] <= 13.0
    # w_max is lower for smaller DIPs.
    assert study.w_max["DIP-1"] < study.w_max["DIP-29"]

"""Table 8 + §6.7: overheads of KnapsackLB at datacenter scale."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_table
from repro.experiments import run_overhead_model
from repro.workloads import table8_vip_counts


def test_table8_overheads(benchmark):
    report = run_once(benchmark, run_overhead_model, max_measured_vip_size=100)
    mix_rows = [[size, count] for size, count in sorted(table8_vip_counts().items())]
    ilp_rows = [
        [size, f"{seconds * 1000:.0f} ms"]
        for size, seconds in sorted(report.measured_ilp_time_per_vip_s.items())
    ]
    text = (
        format_table(["#DIPs/VIP", "#VIPs"], mix_rows, title="Table 8 workload")
        + "\n\n"
        + format_table(["#DIPs/VIP", "measured ILP time"], ilp_rows)
        + "\n\n"
        + f"total DIPs                    : {report.total_dips:,}\n"
        + f"total VIPs                    : {report.total_vips:,}\n"
        + f"KLM cores                     : {report.klm_cores:,.0f} "
        + f"({report.klm_core_overhead_percent:.2f} % of DIP cores; paper: 0.71 %)\n"
        + f"KLM cost overhead             : {report.klm_cost_overhead_percent:.2f} % (paper: 0.83 %)\n"
        + f"latency store footprint       : {report.store_megabytes:.1f} MB (paper: < 6 GB)\n"
        + f"regression cores              : {report.regression_cores:.1f} (paper: 60)\n"
        + f"controller ILP time / round   : {report.controller_ilp_time_s:.0f} s (paper: 851 s)\n"
        + f"controller VMs                : {report.controller_vms:.0f} (paper: 193)\n"
        + f"controller core overhead      : {report.controller_core_overhead_percent:.2f} % (paper: 0.32 %)"
    )
    save_report("table8_overheads", text)

    assert report.total_dips == 60_000
    # The overheads stay small, as the paper argues.
    assert report.klm_core_overhead_percent < 2.0
    assert report.store_megabytes < 6 * 1024
    assert report.controller_core_overhead_percent < 5.0

"""Fig. 8, Table 6 and Table 7: ILP scalability and the multi-step speedup."""

from __future__ import annotations

from _harness import run_once, save_report

from repro.analysis import format_table
from repro.experiments import run_ilp_grid, run_ilp_scaling, run_multistep_accuracy


def test_fig8_naive_ilp_grid(benchmark):
    cells = run_once(
        benchmark,
        run_ilp_grid,
        dip_counts=(10, 50, 100),
        weight_counts=(10, 50, 100),
        time_limit_s=20.0,
    )
    by_dips: dict[int, dict[int, str]] = {}
    for cell in cells:
        by_dips.setdefault(cell.weights_per_dip, {})[cell.num_dips] = cell.outcome
    dip_counts = sorted({cell.num_dips for cell in cells})
    rows = [
        [weights] + [by_dips[weights].get(d, "-") for d in dip_counts]
        for weights in sorted(by_dips)
    ]
    save_report(
        "fig08_naive_ilp_grid",
        format_table(["#weights \\ #DIPs"] + [str(d) for d in dip_counts], rows)
        + "\nDO = DIP overload, TO = timeout (as in Fig. 8)",
    )
    # Coarse [0,1] grids overload DIPs once the pool is large (Fig. 8's DO cells).
    assert any(cell.outcome == "DO" for cell in cells)


def test_table6_ilp_running_time(benchmark):
    points = run_once(benchmark, run_ilp_scaling, dip_counts=(10, 50, 100, 500))
    rows = [[p.num_dips, f"{p.solve_time_s * 1000:.0f} ms"] for p in points]
    save_report("table6_ilp_running_time", format_table(["#DIPs", "ILP time"], rows))
    times = {p.num_dips: p.solve_time_s for p in points}
    # Running time grows with pool size but stays in the interactive range
    # for moderate pools (paper: 645 ms at 100 DIPs on their hardware).
    assert times[500] > times[10]
    assert times[100] < 60.0


def test_table7_multistep_ilp(benchmark):
    result = run_once(benchmark, run_multistep_accuracy, num_dips=100)
    report = (
        f"one-shot, {result.fine_points} weights/DIP : "
        f"{result.fine_time_s:.2f} s, objective {result.fine_objective:.3f}\n"
        f"multi-step, {result.multistep_points} weights ×2 : "
        f"{result.multistep_time_s:.2f} s, objective {result.multistep_objective:.3f}\n"
        f"speedup   : {result.speedup:.1f}x\n"
        f"accuracy  : {result.accuracy_percent:.1f} % (paper: 99.9 %)"
    )
    save_report("table7_multistep_ilp", report)
    assert result.speedup > 1.0
    assert result.accuracy_percent >= 95.0

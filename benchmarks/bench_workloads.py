"""Workload-generator throughput: bursty/heavy-tailed vs the Poisson engine.

The robustness envelope (MMPP and flash-crowd arrivals, Pareto/lognormal
service) streams through the same allocation-lean ``next_batch`` chunk
interface as the Poisson baseline, so arbitrarily-shaped workloads must not
tax the request engine's hot path: per-request cost is dominated by the
queueing simulation, and the generators amortize their extra math (thinning,
segment bookkeeping) over fixed-size candidate blocks.  This bench runs the
same 32-DIP deployment through the request engine under four workload
shapes and gates each non-Poisson variant's throughput at
``MIN_RELATIVE_THROUGHPUT`` of the Poisson run.  Emits
``BENCH_workloads.json``.

Run directly (``PYTHONPATH=src python benchmarks/bench_workloads.py``) or
under pytest-benchmark.  ``BENCH_WORKLOADS_REQUESTS`` overrides the request
count (useful for quick local runs; the recorded JSON should come from the
full 500k-request setting).
"""

from __future__ import annotations

import gc
import os
import time

from _harness import save_json, save_report

from repro.api.spec import ArrivalSpec, ServiceSpec
from repro.backends import DipServer, custom_vm_type
from repro.lb import RoundRobin
from repro.sim import RequestCluster

NUM_DIPS = 32
NUM_REQUESTS = int(os.environ.get("BENCH_WORKLOADS_REQUESTS", 500_000))
#: kept low enough that the MMPP high state (~1.79x the mean rate with the
#: default parameters) stays subcritical: at 0.6 the bursts overload the
#: pool and the floor would gate drop-handling under overload — a real but
#: different cost — instead of the generators' streaming overhead.
LOAD_FRACTION = 0.4
ROUNDS = 3
#: every non-Poisson workload must keep >= this fraction of the Poisson
#: engine's throughput (CPU-time ratio; the generators batch their math).
MIN_RELATIVE_THROUGHPUT = 0.8

#: the benched workload shapes, in measurement order (baseline first).
VARIANTS: tuple[tuple[str, ArrivalSpec, ServiceSpec], ...] = (
    ("poisson", ArrivalSpec(), ServiceSpec()),
    ("mmpp_arrivals", ArrivalSpec(kind="mmpp"), ServiceSpec()),
    ("pareto_service", ArrivalSpec(), ServiceSpec(kind="pareto")),
    (
        "mmpp_pareto",
        ArrivalSpec(kind="mmpp"),
        ServiceSpec(kind="pareto"),
    ),
)


def build_pool(num_dips: int, *, cores: int = 4, cap_per_core: float = 400.0):
    dips = {}
    for index in range(num_dips):
        vm = custom_vm_type(
            f"vm-{index}", vcpus=cores, capacity_rps=cap_per_core * cores
        )
        dips[f"d{index}"] = DipServer(
            f"d{index}", vm, seed=index, jitter_fraction=0.0
        )
    return dips


def run_workloads_bench(
    *, num_dips: int = NUM_DIPS, num_requests: int = NUM_REQUESTS
) -> dict:
    dips = build_pool(num_dips)
    total_capacity = sum(d.capacity_rps for d in dips.values())
    rate = LOAD_FRACTION * total_capacity

    # Best-of-N per variant, *interleaved* across rounds so every variant
    # samples the same process epochs (later runs in a process are
    # systematically slower as the heap ages; a blocked ordering would
    # charge all of that drift to whichever variant ran last).
    best: dict[str, dict] = {
        name: {"wall_s": float("inf"), "cpu_s": float("inf")}
        for name, _, _ in VARIANTS
    }
    for _ in range(ROUNDS):
        for name, arrival, service in VARIANTS:
            cluster = RequestCluster(
                build_pool(num_dips),
                RoundRobin(list(dips)),
                rate_rps=rate,
                seed=7,
                arrival=arrival,
                service=service,
            )
            gc.collect()  # timed runs start from the same collector state
            started = time.perf_counter()
            started_cpu = time.process_time()
            result = cluster.run(num_requests=num_requests)
            cpu_s = time.process_time() - started_cpu
            wall_s = time.perf_counter() - started
            row = best[name]
            if cpu_s < row["cpu_s"]:
                row.update(
                    cpu_s=cpu_s,
                    wall_s=wall_s,
                    requests=result.requests_submitted,
                    requests_per_s=result.requests_submitted / wall_s,
                    mean_latency_ms=result.metrics.mean_latency_ms(),
                    p99_latency_ms=result.metrics.percentile_latency_ms(99),
                    drop_fraction=result.drop_fraction,
                )

    # Relative throughput from best-of-N *per-request* CPU cost: the runs
    # execute back to back, process_time is immune to the runner-contention
    # noise that dwarfs a ~10% effect in wall clock on shared CI machines,
    # and normalizing per request keeps the ratio fair when a bursty
    # process lands a different arrival count inside the fixed horizon.
    base = best["poisson"]
    base_req_per_cpu = base["requests"] / base["cpu_s"]
    for name, row in best.items():
        row["relative_throughput"] = (
            row["requests"] / row["cpu_s"] / base_req_per_cpu
        )
    return {
        "scale": {
            "num_dips": num_dips,
            "num_requests": num_requests,
            "load_fraction": LOAD_FRACTION,
            "rate_rps": rate,
        },
        "variants": best,
        "floor": MIN_RELATIVE_THROUGHPUT,
    }


def _render(results: dict) -> str:
    scale = results["scale"]
    lines = [
        f"scale           : {scale['num_dips']} DIPs, "
        f"{scale['num_requests']:,} requests @ {scale['load_fraction']:.0%} load"
    ]
    for name, row in results["variants"].items():
        lines.append(
            f"{name:<16}: {row['wall_s']:.1f} s "
            f"({row['requests_per_s']:,.0f} req/s, "
            f"{row['relative_throughput']:.0%} of poisson, "
            f"mean {row['mean_latency_ms']:.2f} ms, "
            f"p99 {row['p99_latency_ms']:.2f} ms)"
        )
    lines.append(f"floor           : {results['floor']:.0%} of poisson")
    return "\n".join(lines)


def _check(results: dict) -> None:
    floor = results["floor"]
    for name, row in results["variants"].items():
        assert row["relative_throughput"] >= floor, (
            f"workload {name!r} throughput {row['relative_throughput']:.2%} "
            f"of the Poisson engine, below the {floor:.0%} floor"
        )
    # Every variant must have simulated real work inside the horizon.
    for name, row in results["variants"].items():
        assert row["requests"] > 0, f"workload {name!r} produced no requests"


def test_workloads_throughput(benchmark):
    results = benchmark.pedantic(run_workloads_bench, rounds=1, iterations=1)
    save_report("workloads", _render(results))
    save_json("BENCH_workloads", results)
    _check(results)


if __name__ == "__main__":
    bench_results = run_workloads_bench()
    save_report("workloads", _render(bench_results))
    save_json("BENCH_workloads", bench_results)
    _check(bench_results)
    print("ok")

"""Shared helpers for the benchmark harness.

Each bench runs its experiment exactly once under pytest-benchmark (the
experiments are macro-benchmarks, not micro-benchmarks), renders the same
rows/series the paper reports and saves them under ``benchmarks/results/``
so they can be inspected after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def save_report(name: str, text: str) -> None:
    """Persist a rendered table/series and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====\n{text}\n")

"""Shared helpers for the benchmark harness.

Each bench runs its experiment exactly once under pytest-benchmark (the
experiments are macro-benchmarks, not micro-benchmarks), renders the same
rows/series the paper reports and saves them under ``benchmarks/results/``
so they can be inspected after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def save_report(name: str, text: str) -> None:
    """Persist a rendered table/series and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====\n{text}\n")


def save_json(name: str, payload: dict) -> Path:
    """Persist machine-readable benchmark output (tracked across PRs).

    Written as ``benchmarks/results/<name>.json`` so CI can archive the file
    and successive PRs can diff headline numbers (e.g. the fluid-substrate
    speedup in ``BENCH_fleet_scale.json``).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\n===== {name}.json =====\n{json.dumps(payload, indent=2, sort_keys=True)}\n")
    return path

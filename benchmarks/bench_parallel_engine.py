"""Parallel execution layer: shard-count scaling and sweep throughput.

The PR 2 streaming engine saturates one core; this bench measures what the
parallel layer adds on top, on the same 64-DIP / 2M-request workload:

* **kernel scaling** — sharded runs at 1/2/4 shards with ``workers=1``
  (every shard in-process).  The per-DIP M/M/c/K recursion is the
  single-core win: it needs no event heap, no callbacks and no per-request
  objects, so even one shard on one core beats the serial DES;
* **process fan-out** — 4 shards across 4 worker processes with the
  shared-memory columnar merge.  This is the multi-core win; its speedup
  over ``workers=1`` is reported separately and the ≥2.5x floor is
  enforced only when the machine actually has ≥4 usable cores (CI does);
* **sweep throughput** — a 6-point request-level sweep through the warm
  :class:`~repro.parallel.pool.WorkerPool` vs the serial path;
* **stateful epoch sharding** — ``lc`` (routes on global connection
  counts, so it cannot shard exactly) through the epoch-synchronized
  engine: serial DES vs 4 epoch shards inline and across 4 workers.
  The ≥2x floor is enforced only on ≥4-cpu machines; the bit-identical
  repeat and inline==process checks are enforced everywhere;
* **timeline epoch sharding** — a ``dip_fail``/``dip_recover`` timeline
  under ``lc``, epoch-sharded vs serial, with the per-window event
  application asserted to line up between the two engines;
* **staleness cross-check** — :func:`repro.parallel.staleness_crosscheck`
  over ``sync_interval_s`` ∈ {0.001, 0.05, 0.25, 1.0}: the relative
  mean/p50/p99 and absolute drop-fraction error of the bounded-stale
  global view vs the serial engine (the 1ms row demonstrates sync→0
  convergence).  Ceilings on the ≤0.25s rows are enforced on every
  machine — staleness error is a property of the model, not the host.

Emits ``BENCH_parallel_engine.json``.  The acceptance floor is ≥3x
requests/s at 4 shards against the serial engine (kernel + whatever
fan-out the hardware offers), plus bit-identical merged metrics across
repeats for the fixed seed and shard count.

Run directly (``PYTHONPATH=src python benchmarks/bench_parallel_engine.py``)
or under pytest-benchmark.  ``BENCH_PARALLEL_ENGINE_REQUESTS`` overrides
the request count for quick local runs; recorded JSON should come from the
full 2M-request setting.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from _harness import save_json, save_report

from repro.api.runners import execute
from repro.api.spec import (
    ControllerSpec,
    EventSpec,
    ExperimentSpec,
    PolicySpec,
    PoolSpec,
    TimelineSpec,
    VmSpec,
    WorkloadSpec,
)
from repro.api.sweep import Sweep
from repro.parallel import (
    ShardPlan,
    plan_shards,
    run_request_epoch,
    run_request_sharded,
    staleness_crosscheck,
)
from repro.parallel.pool import WorkerPool
from repro.workloads import split_dip_ids

NUM_DIPS = 64
NUM_REQUESTS = int(os.environ.get("BENCH_PARALLEL_ENGINE_REQUESTS", 2_000_000))
LOAD_FRACTION = 0.7
SPEEDUP_FLOOR = 3.0
WORKER_SCALING_FLOOR = 2.5
SWEEP_POINTS = 6
#: Epoch sharding pays per-barrier synchronization the exact engine does
#: not, so its floor is lower than the exact-decomposition floor above.
EPOCH_SPEEDUP_FLOOR = 2.0
#: The 1ms row shows sync→0 convergence (~1.4% mean error); the others
#: show the saturation regime the default 0.25s already sits in.
STALENESS_SYNC_INTERVALS = (0.001, 0.05, 0.25, 1.0)
STALENESS_LOAD_FRACTION = 0.6
#: Always-enforced error ceilings for the staleness table rows with
#: ``sync_interval_s <= 0.25`` (the default and tighter).  Calibrated from
#: the lc curve at 60% load on the 8-DIP spec — measured ~1.4% mean error
#: at 1ms, ~16-17% in the saturated 0.05-0.25s band — with ~1.7x headroom
#: for seed-to-seed noise (~0.6%).
STALENESS_CEILING = {
    "mean_rel": 0.30,
    "p50_rel": 0.35,
    "p99_rel": 0.25,
    "drop_abs": 0.02,
}


def bench_spec(num_requests: int = NUM_REQUESTS) -> ExperimentSpec:
    return ExperimentSpec(
        name="bench-parallel-engine",
        runner="request",
        pool=PoolSpec(
            kind="uniform",
            num_dips=NUM_DIPS,
            vm=VmSpec(name="bench-4core", vcpus=4, capacity_rps=1600.0),
        ),
        workload=WorkloadSpec(
            load_fraction=LOAD_FRACTION, num_requests=num_requests, warmup_s=1.0
        ),
        policy=PolicySpec(name="rr"),
        controller=ControllerSpec(enabled=False),
        seed=7,
    )


def stateful_spec(num_requests: int) -> ExperimentSpec:
    """The bench workload under ``lc`` — epoch-shardable, never exact."""
    return replace(
        bench_spec(num_requests),
        name="bench-parallel-epoch-lc",
        policy=PolicySpec(name="lc"),
    )


def timeline_spec(num_requests: int) -> ExperimentSpec:
    """``lc`` plus a mid-run DIP failure/recovery (epoch time-slicing)."""
    return replace(
        stateful_spec(num_requests),
        name="bench-parallel-epoch-timeline",
        timeline=TimelineSpec(
            events=(
                EventSpec(time_s=2.0, kind="dip_fail", dip="DIP-1"),
                EventSpec(time_s=4.0, kind="dip_recover", dip="DIP-1"),
            ),
            window_s=1.0,
            horizon_s=6.0,
        ),
    )


def staleness_spec(num_requests: int) -> ExperimentSpec:
    """A small 8-DIP ``lc`` workload for the sync-interval error table."""
    return ExperimentSpec(
        name="bench-epoch-staleness",
        runner="request",
        pool=PoolSpec(
            kind="uniform",
            num_dips=8,
            vm=VmSpec(name="bench-2core", vcpus=2, capacity_rps=800.0),
        ),
        workload=WorkloadSpec(
            load_fraction=STALENESS_LOAD_FRACTION,
            num_requests=num_requests,
            warmup_s=1.0,
        ),
        policy=PolicySpec(name="lc"),
        controller=ControllerSpec(enabled=False),
        seed=7,
    )


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed(func, *, repeats: int = 2):
    """Best-of-N wall time (same treatment for every configuration)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return result, best


def _one_shard_plan(spec: ExperimentSpec) -> ShardPlan:
    """A degenerate single-shard plan (the kernel with no fan-out at all).

    ``plan_shards`` maps ``shards=1`` to the serial engine by design — one
    shard is not a parallel run — so the kernel-only baseline builds its
    plan directly.
    """
    reference = plan_shards(spec, shards=2)
    assert reference.shardable, reference.fallback_reason
    dip_ids = tuple(d for s in reference.dip_slices for d in s)
    return ShardPlan(
        shards=1,
        shardable=True,
        routing=reference.routing,
        dip_slices=split_dip_ids(dip_ids, 1),
    )


def run_parallel_engine_bench(*, num_requests: int = NUM_REQUESTS) -> dict:
    spec = bench_spec(num_requests)
    usable_cpus = _usable_cpus()

    # -- serial baseline: the PR 2 streaming DES ----------------------------------
    serial_result, serial_wall = _timed(lambda: execute(spec))
    serial_rps = serial_result.metrics["requests_submitted"] / serial_wall

    # -- kernel scaling: shards in-process (workers=1) ----------------------------
    sharded: dict[str, dict] = {}
    results = {}
    for shards in (1, 2, 4):
        plan = (
            _one_shard_plan(spec)
            if shards == 1
            else plan_shards(spec, shards=shards)
        )
        result, wall = _timed(
            lambda plan=plan: run_request_sharded(spec, plan, workers=1)
        )
        results[shards] = result
        sharded[str(shards)] = {
            "wall_s": wall,
            "requests_per_s": result.metrics["requests_submitted"] / wall,
            "mean_latency_ms": result.metrics["mean_latency_ms"],
            "p99_latency_ms": result.metrics["p99_latency_ms"],
        }

    # -- determinism: fixed seed + shard count => bit-identical metrics -----------
    repeat = run_request_sharded(spec, plan_shards(spec, shards=4), workers=1)
    bit_identical = (
        repeat.metrics == results[4].metrics
        and repeat.dip_summaries == results[4].dip_summaries
    )

    # -- process fan-out: 4 shards across 4 workers (shared-memory merge) ---------
    plan4 = plan_shards(spec, shards=4)
    fanout_result, fanout_wall = _timed(
        lambda: run_request_sharded(spec, plan4, workers=4)
    )
    fanout_rps = fanout_result.metrics["requests_submitted"] / fanout_wall
    fanout_identical = fanout_result.metrics == results[4].metrics
    worker_scaling = fanout_rps / sharded["4"]["requests_per_s"]
    enforce_worker_floor = usable_cpus >= 4

    # -- sweep throughput through the warm pool -----------------------------------
    sweep_spec = bench_spec(max(20_000, num_requests // 40))
    sweep = Sweep.from_axes(
        sweep_spec,
        {"workload.load_fraction": [0.4 + 0.06 * i for i in range(SWEEP_POINTS)]},
    )
    _, sweep_serial_wall = _timed(lambda: sweep.run(), repeats=1)
    sweep_workers = min(4, usable_cpus) if usable_cpus > 1 else 2
    with WorkerPool(max_workers=sweep_workers) as pool:
        pool.map(len, [[0]] * sweep_workers)  # warm the interpreters
        _, sweep_pool_wall = _timed(lambda: sweep.run(pool=pool), repeats=1)

    # -- stateful epoch sharding: lc, serial DES vs 4 epoch shards ----------------
    lc_requests = max(20_000, num_requests // 4)
    lc_spec = stateful_spec(lc_requests)
    lc_serial, lc_serial_wall = _timed(lambda: execute(lc_spec))
    lc_plan = plan_shards(lc_spec, shards=4)
    assert lc_plan.mode == "epoch", lc_plan.fallback_reason
    lc_epoch, lc_epoch_wall = _timed(
        lambda: run_request_epoch(lc_spec, lc_plan, workers=1)
    )
    lc_fanout, lc_fanout_wall = _timed(
        lambda: run_request_epoch(lc_spec, lc_plan, workers=4)
    )
    lc_repeat = run_request_epoch(lc_spec, lc_plan, workers=1)
    lc_serial_rps = lc_serial.metrics["requests_submitted"] / lc_serial_wall
    lc_epoch_rps = lc_epoch.metrics["requests_submitted"] / lc_epoch_wall
    lc_fanout_rps = lc_fanout.metrics["requests_submitted"] / lc_fanout_wall
    lc_speedup = max(lc_epoch_rps, lc_fanout_rps) / lc_serial_rps
    lc_mean_rel = abs(
        lc_epoch.metrics["mean_latency_ms"] - lc_serial.metrics["mean_latency_ms"]
    ) / max(lc_serial.metrics["mean_latency_ms"], 1e-9)
    stateful_lc = {
        "num_requests": lc_requests,
        "sync_interval_s": lc_spec.sync_interval_s,
        "serial_wall_s": lc_serial_wall,
        "serial_requests_per_s": lc_serial_rps,
        "epoch_wall_s": lc_epoch_wall,
        "epoch_requests_per_s": lc_epoch_rps,
        "fanout_wall_s": lc_fanout_wall,
        "fanout_requests_per_s": lc_fanout_rps,
        "speedup_vs_serial": lc_speedup,
        "speedup_floor": EPOCH_SPEEDUP_FLOOR,
        "floor_enforced": usable_cpus >= 4,
        "mean_latency_rel_diff": lc_mean_rel,
        "bit_identical_repeat": (
            lc_repeat.metrics == lc_epoch.metrics
            and lc_repeat.dip_summaries == lc_epoch.dip_summaries
        ),
        "fanout_identical_to_inline": lc_fanout.metrics == lc_epoch.metrics,
    }

    # -- timeline epoch sharding: dip_fail/dip_recover under lc -------------------
    tl_spec = timeline_spec(lc_requests)
    tl_serial, tl_serial_wall = _timed(lambda: execute(tl_spec), repeats=1)
    tl_plan = plan_shards(tl_spec, shards=4)
    assert tl_plan.mode == "epoch", tl_plan.fallback_reason
    tl_epoch, tl_epoch_wall = _timed(
        lambda: run_request_epoch(tl_spec, tl_plan, workers=1), repeats=1
    )
    tl_repeat = run_request_epoch(tl_spec, tl_plan, workers=1)
    timeline = {
        # With a timeline the run lasts exactly the horizon; the spec's
        # num_requests does not apply.
        "horizon_s": tl_spec.timeline.horizon_s,
        "events": [e.kind for e in tl_spec.timeline.events],
        "serial_wall_s": tl_serial_wall,
        "epoch_wall_s": tl_epoch_wall,
        "serial_mean_latency_ms": tl_serial.metrics["mean_latency_ms"],
        "epoch_mean_latency_ms": tl_epoch.metrics["mean_latency_ms"],
        "serial_drop_fraction": tl_serial.metrics["drop_fraction"],
        "epoch_drop_fraction": tl_epoch.metrics["drop_fraction"],
        "windows": len(tl_epoch.windows),
        "window_events_match_serial": (
            [w.events for w in tl_epoch.windows]
            == [w.events for w in tl_serial.windows]
        ),
        "bit_identical_repeat": (
            tl_repeat.metrics == tl_epoch.metrics
            and [w.metrics for w in tl_repeat.windows]
            == [w.metrics for w in tl_epoch.windows]
        ),
    }

    # -- staleness: epoch error vs serial as a function of sync_interval_s --------
    staleness_requests = max(20_000, num_requests // 50)
    staleness = staleness_crosscheck(
        staleness_spec(staleness_requests),
        shards=4,
        sync_intervals=STALENESS_SYNC_INTERVALS,
        workers=1,
    )
    staleness["num_requests"] = staleness_requests
    staleness["ceiling"] = dict(STALENESS_CEILING)
    staleness["ceiling_max_interval_s"] = 0.25

    best_shards4_rps = max(sharded["4"]["requests_per_s"], fanout_rps)
    speedup = best_shards4_rps / serial_rps
    latency_rel_diff = abs(
        results[4].metrics["mean_latency_ms"]
        - serial_result.metrics["mean_latency_ms"]
    ) / max(serial_result.metrics["mean_latency_ms"], 1e-9)

    return {
        "scale": {
            "num_dips": NUM_DIPS,
            "num_requests": num_requests,
            "load_fraction": LOAD_FRACTION,
            "usable_cpus": usable_cpus,
        },
        "serial_engine": {
            "wall_s": serial_wall,
            "requests_per_s": serial_rps,
            "mean_latency_ms": serial_result.metrics["mean_latency_ms"],
            "p99_latency_ms": serial_result.metrics["p99_latency_ms"],
        },
        "sharded_workers_1": sharded,
        "process_fanout": {
            "shards": 4,
            "workers": 4,
            "wall_s": fanout_wall,
            "requests_per_s": fanout_rps,
            "scaling_vs_1_worker": worker_scaling,
            "scaling_floor": WORKER_SCALING_FLOOR,
            "floor_enforced": enforce_worker_floor,
            "metrics_identical_to_inline": fanout_identical,
        },
        "sweep": {
            "points": SWEEP_POINTS,
            "requests_per_point": sweep_spec.workload.num_requests,
            "serial_wall_s": sweep_serial_wall,
            "pool_wall_s": sweep_pool_wall,
            "pool_workers": sweep_workers,
            "serial_specs_per_s": SWEEP_POINTS / sweep_serial_wall,
            "pool_specs_per_s": SWEEP_POINTS / sweep_pool_wall,
        },
        "stateful_lc": stateful_lc,
        "timeline": timeline,
        "staleness": staleness,
        "speedup_4shards_vs_serial": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "latency_rel_diff": latency_rel_diff,
        "bit_identical_repeat": bit_identical,
    }


def _render(results: dict) -> str:
    scale = results["scale"]
    serial = results["serial_engine"]
    fanout = results["process_fanout"]
    lines = [
        f"scale                      : {scale['num_dips']} DIPs, "
        f"{scale['num_requests']:,} requests @ {scale['load_fraction']:.0%} load "
        f"({scale['usable_cpus']} usable cpus)",
        f"serial engine (PR 2 DES)   : {serial['wall_s']:.2f} s "
        f"({serial['requests_per_s']:,.0f} req/s)",
    ]
    for shards, row in results["sharded_workers_1"].items():
        lines.append(
            f"sharded x{shards} (in-process)  : {row['wall_s']:.2f} s "
            f"({row['requests_per_s']:,.0f} req/s)"
        )
    lines += [
        f"4 shards x 4 workers       : {fanout['wall_s']:.2f} s "
        f"({fanout['requests_per_s']:,.0f} req/s, "
        f"{fanout['scaling_vs_1_worker']:.2f}x vs 1 worker, floor "
        f"{fanout['scaling_floor']}x "
        f"{'enforced' if fanout['floor_enforced'] else 'not enforced (<4 cpus)'})",
        f"sweep ({results['sweep']['points']} pts)             : "
        f"{results['sweep']['serial_specs_per_s']:.2f} specs/s serial vs "
        f"{results['sweep']['pool_specs_per_s']:.2f} specs/s with "
        f"{results['sweep']['pool_workers']} pooled workers",
        f"speedup (4 shards)         : {results['speedup_4shards_vs_serial']:.1f}x "
        f"(floor {results['speedup_floor']:.0f}x)",
        f"mean latency               : serial {serial['mean_latency_ms']:.3f} ms vs "
        f"sharded {results['sharded_workers_1']['4']['mean_latency_ms']:.3f} ms "
        f"({results['latency_rel_diff']:.2%} apart)",
        f"bit-identical repeat       : {results['bit_identical_repeat']}",
    ]
    lc = results["stateful_lc"]
    tl = results["timeline"]
    lines += [
        f"epoch lc ({lc['num_requests']:,} reqs)   : serial "
        f"{lc['serial_wall_s']:.2f} s vs epoch x4 {lc['epoch_wall_s']:.2f} s "
        f"inline / {lc['fanout_wall_s']:.2f} s x4 workers "
        f"({lc['speedup_vs_serial']:.1f}x, floor {lc['speedup_floor']:.0f}x "
        f"{'enforced' if lc['floor_enforced'] else 'not enforced (<4 cpus)'}; "
        f"mean {lc['mean_latency_rel_diff']:.2%} from serial at "
        f"sync={lc['sync_interval_s']:g}s)",
        f"epoch timeline (dip_fail)  : serial {tl['serial_wall_s']:.2f} s vs "
        f"epoch {tl['epoch_wall_s']:.2f} s, {tl['windows']} windows, "
        f"window events match serial: {tl['window_events_match_serial']}, "
        f"bit-identical repeat: {tl['bit_identical_repeat']}",
        "staleness vs sync interval : mean_rel / p99_rel / drop_abs "
        f"(ceiling {results['staleness']['ceiling']['mean_rel']:.0%} / "
        f"{results['staleness']['ceiling']['p99_rel']:.0%} / "
        f"{results['staleness']['ceiling']['drop_abs']:.2f} on "
        f"intervals <= {results['staleness']['ceiling_max_interval_s']:g}s)",
    ]
    for interval, row in sorted(results["staleness"]["epoch"].items()):
        lines.append(
            f"  sync={float(interval):<5g}s            : "
            f"{row['mean_rel']:.2%} / {row['p99_rel']:.2%} / "
            f"{row['drop_abs']:.4f}"
        )
    return "\n".join(lines)


def _check(results: dict) -> None:
    assert results["speedup_4shards_vs_serial"] >= results["speedup_floor"], (
        f"parallel-engine speedup {results['speedup_4shards_vs_serial']:.2f}x "
        f"below floor {results['speedup_floor']}x"
    )
    # Both paths estimate the same M/M/c/K system; means must agree closely.
    assert results["latency_rel_diff"] < 0.05
    # Fixed seed + shard count must reproduce the merged metrics exactly,
    # and the shared-memory process path must match the in-process path.
    assert results["bit_identical_repeat"]
    assert results["process_fanout"]["metrics_identical_to_inline"]
    fanout = results["process_fanout"]
    if fanout["floor_enforced"]:
        assert fanout["scaling_vs_1_worker"] >= fanout["scaling_floor"], (
            f"4-worker scaling {fanout['scaling_vs_1_worker']:.2f}x below "
            f"floor {fanout['scaling_floor']}x on "
            f"{results['scale']['usable_cpus']} cpus"
        )
    # Epoch sharding: determinism holds on any machine; the speedup floor
    # only where the hardware can express it.
    lc = results["stateful_lc"]
    assert lc["bit_identical_repeat"]
    assert lc["fanout_identical_to_inline"]
    if lc["floor_enforced"]:
        assert lc["speedup_vs_serial"] >= lc["speedup_floor"], (
            f"epoch lc speedup {lc['speedup_vs_serial']:.2f}x below floor "
            f"{lc['speedup_floor']}x on {results['scale']['usable_cpus']} cpus"
        )
    tl = results["timeline"]
    assert tl["window_events_match_serial"]
    assert tl["bit_identical_repeat"]
    # Staleness ceilings are a property of the epoch model, not the host:
    # enforce them everywhere for every interval at or under the default.
    ceiling = results["staleness"]["ceiling"]
    max_interval = results["staleness"]["ceiling_max_interval_s"]
    for interval, row in results["staleness"]["epoch"].items():
        if float(interval) > max_interval:
            continue
        for key, limit in ceiling.items():
            assert row[key] <= limit, (
                f"staleness {key}={row[key]:.4f} at sync={interval}s "
                f"exceeds ceiling {limit}"
            )


def test_parallel_engine_speedup(benchmark):
    results = benchmark.pedantic(run_parallel_engine_bench, rounds=1, iterations=1)
    save_report("parallel_engine", _render(results))
    save_json("BENCH_parallel_engine", results)
    _check(results)


if __name__ == "__main__":
    bench_results = run_parallel_engine_bench()
    save_report("parallel_engine", _render(bench_results))
    save_json("BENCH_parallel_engine", bench_results)
    _check(bench_results)
    print("ok")

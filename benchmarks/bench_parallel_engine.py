"""Parallel execution layer: shard-count scaling and sweep throughput.

The PR 2 streaming engine saturates one core; this bench measures what the
parallel layer adds on top, on the same 64-DIP / 2M-request workload:

* **kernel scaling** — sharded runs at 1/2/4 shards with ``workers=1``
  (every shard in-process).  The per-DIP M/M/c/K recursion is the
  single-core win: it needs no event heap, no callbacks and no per-request
  objects, so even one shard on one core beats the serial DES;
* **process fan-out** — 4 shards across 4 worker processes with the
  shared-memory columnar merge.  This is the multi-core win; its speedup
  over ``workers=1`` is reported separately and the ≥2.5x floor is
  enforced only when the machine actually has ≥4 usable cores (CI does);
* **sweep throughput** — a 6-point request-level sweep through the warm
  :class:`~repro.parallel.pool.WorkerPool` vs the serial path.

Emits ``BENCH_parallel_engine.json``.  The acceptance floor is ≥3x
requests/s at 4 shards against the serial engine (kernel + whatever
fan-out the hardware offers), plus bit-identical merged metrics across
repeats for the fixed seed and shard count.

Run directly (``PYTHONPATH=src python benchmarks/bench_parallel_engine.py``)
or under pytest-benchmark.  ``BENCH_PARALLEL_ENGINE_REQUESTS`` overrides
the request count for quick local runs; recorded JSON should come from the
full 2M-request setting.
"""

from __future__ import annotations

import os
import time

from _harness import save_json, save_report

from repro.api.runners import execute
from repro.api.spec import (
    ControllerSpec,
    ExperimentSpec,
    PolicySpec,
    PoolSpec,
    VmSpec,
    WorkloadSpec,
)
from repro.api.sweep import Sweep
from repro.parallel import ShardPlan, plan_shards, run_request_sharded
from repro.parallel.pool import WorkerPool
from repro.workloads import split_dip_ids

NUM_DIPS = 64
NUM_REQUESTS = int(os.environ.get("BENCH_PARALLEL_ENGINE_REQUESTS", 2_000_000))
LOAD_FRACTION = 0.7
SPEEDUP_FLOOR = 3.0
WORKER_SCALING_FLOOR = 2.5
SWEEP_POINTS = 6


def bench_spec(num_requests: int = NUM_REQUESTS) -> ExperimentSpec:
    return ExperimentSpec(
        name="bench-parallel-engine",
        runner="request",
        pool=PoolSpec(
            kind="uniform",
            num_dips=NUM_DIPS,
            vm=VmSpec(name="bench-4core", vcpus=4, capacity_rps=1600.0),
        ),
        workload=WorkloadSpec(
            load_fraction=LOAD_FRACTION, num_requests=num_requests, warmup_s=1.0
        ),
        policy=PolicySpec(name="rr"),
        controller=ControllerSpec(enabled=False),
        seed=7,
    )


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed(func, *, repeats: int = 2):
    """Best-of-N wall time (same treatment for every configuration)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return result, best


def _one_shard_plan(spec: ExperimentSpec) -> ShardPlan:
    """A degenerate single-shard plan (the kernel with no fan-out at all).

    ``plan_shards`` maps ``shards=1`` to the serial engine by design — one
    shard is not a parallel run — so the kernel-only baseline builds its
    plan directly.
    """
    reference = plan_shards(spec, shards=2)
    assert reference.shardable, reference.fallback_reason
    dip_ids = tuple(d for s in reference.dip_slices for d in s)
    return ShardPlan(
        shards=1,
        shardable=True,
        routing=reference.routing,
        dip_slices=split_dip_ids(dip_ids, 1),
    )


def run_parallel_engine_bench(*, num_requests: int = NUM_REQUESTS) -> dict:
    spec = bench_spec(num_requests)
    usable_cpus = _usable_cpus()

    # -- serial baseline: the PR 2 streaming DES ----------------------------------
    serial_result, serial_wall = _timed(lambda: execute(spec))
    serial_rps = serial_result.metrics["requests_submitted"] / serial_wall

    # -- kernel scaling: shards in-process (workers=1) ----------------------------
    sharded: dict[str, dict] = {}
    results = {}
    for shards in (1, 2, 4):
        plan = (
            _one_shard_plan(spec)
            if shards == 1
            else plan_shards(spec, shards=shards)
        )
        result, wall = _timed(
            lambda plan=plan: run_request_sharded(spec, plan, workers=1)
        )
        results[shards] = result
        sharded[str(shards)] = {
            "wall_s": wall,
            "requests_per_s": result.metrics["requests_submitted"] / wall,
            "mean_latency_ms": result.metrics["mean_latency_ms"],
            "p99_latency_ms": result.metrics["p99_latency_ms"],
        }

    # -- determinism: fixed seed + shard count => bit-identical metrics -----------
    repeat = run_request_sharded(spec, plan_shards(spec, shards=4), workers=1)
    bit_identical = (
        repeat.metrics == results[4].metrics
        and repeat.dip_summaries == results[4].dip_summaries
    )

    # -- process fan-out: 4 shards across 4 workers (shared-memory merge) ---------
    plan4 = plan_shards(spec, shards=4)
    fanout_result, fanout_wall = _timed(
        lambda: run_request_sharded(spec, plan4, workers=4)
    )
    fanout_rps = fanout_result.metrics["requests_submitted"] / fanout_wall
    fanout_identical = fanout_result.metrics == results[4].metrics
    worker_scaling = fanout_rps / sharded["4"]["requests_per_s"]
    enforce_worker_floor = usable_cpus >= 4

    # -- sweep throughput through the warm pool -----------------------------------
    sweep_spec = bench_spec(max(20_000, num_requests // 40))
    sweep = Sweep.from_axes(
        sweep_spec,
        {"workload.load_fraction": [0.4 + 0.06 * i for i in range(SWEEP_POINTS)]},
    )
    _, sweep_serial_wall = _timed(lambda: sweep.run(), repeats=1)
    sweep_workers = min(4, usable_cpus) if usable_cpus > 1 else 2
    with WorkerPool(max_workers=sweep_workers) as pool:
        pool.map(len, [[0]] * sweep_workers)  # warm the interpreters
        _, sweep_pool_wall = _timed(lambda: sweep.run(pool=pool), repeats=1)

    best_shards4_rps = max(sharded["4"]["requests_per_s"], fanout_rps)
    speedup = best_shards4_rps / serial_rps
    latency_rel_diff = abs(
        results[4].metrics["mean_latency_ms"]
        - serial_result.metrics["mean_latency_ms"]
    ) / max(serial_result.metrics["mean_latency_ms"], 1e-9)

    return {
        "scale": {
            "num_dips": NUM_DIPS,
            "num_requests": num_requests,
            "load_fraction": LOAD_FRACTION,
            "usable_cpus": usable_cpus,
        },
        "serial_engine": {
            "wall_s": serial_wall,
            "requests_per_s": serial_rps,
            "mean_latency_ms": serial_result.metrics["mean_latency_ms"],
            "p99_latency_ms": serial_result.metrics["p99_latency_ms"],
        },
        "sharded_workers_1": sharded,
        "process_fanout": {
            "shards": 4,
            "workers": 4,
            "wall_s": fanout_wall,
            "requests_per_s": fanout_rps,
            "scaling_vs_1_worker": worker_scaling,
            "scaling_floor": WORKER_SCALING_FLOOR,
            "floor_enforced": enforce_worker_floor,
            "metrics_identical_to_inline": fanout_identical,
        },
        "sweep": {
            "points": SWEEP_POINTS,
            "requests_per_point": sweep_spec.workload.num_requests,
            "serial_wall_s": sweep_serial_wall,
            "pool_wall_s": sweep_pool_wall,
            "pool_workers": sweep_workers,
            "serial_specs_per_s": SWEEP_POINTS / sweep_serial_wall,
            "pool_specs_per_s": SWEEP_POINTS / sweep_pool_wall,
        },
        "speedup_4shards_vs_serial": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "latency_rel_diff": latency_rel_diff,
        "bit_identical_repeat": bit_identical,
    }


def _render(results: dict) -> str:
    scale = results["scale"]
    serial = results["serial_engine"]
    fanout = results["process_fanout"]
    lines = [
        f"scale                      : {scale['num_dips']} DIPs, "
        f"{scale['num_requests']:,} requests @ {scale['load_fraction']:.0%} load "
        f"({scale['usable_cpus']} usable cpus)",
        f"serial engine (PR 2 DES)   : {serial['wall_s']:.2f} s "
        f"({serial['requests_per_s']:,.0f} req/s)",
    ]
    for shards, row in results["sharded_workers_1"].items():
        lines.append(
            f"sharded x{shards} (in-process)  : {row['wall_s']:.2f} s "
            f"({row['requests_per_s']:,.0f} req/s)"
        )
    lines += [
        f"4 shards x 4 workers       : {fanout['wall_s']:.2f} s "
        f"({fanout['requests_per_s']:,.0f} req/s, "
        f"{fanout['scaling_vs_1_worker']:.2f}x vs 1 worker, floor "
        f"{fanout['scaling_floor']}x "
        f"{'enforced' if fanout['floor_enforced'] else 'not enforced (<4 cpus)'})",
        f"sweep ({results['sweep']['points']} pts)             : "
        f"{results['sweep']['serial_specs_per_s']:.2f} specs/s serial vs "
        f"{results['sweep']['pool_specs_per_s']:.2f} specs/s with "
        f"{results['sweep']['pool_workers']} pooled workers",
        f"speedup (4 shards)         : {results['speedup_4shards_vs_serial']:.1f}x "
        f"(floor {results['speedup_floor']:.0f}x)",
        f"mean latency               : serial {serial['mean_latency_ms']:.3f} ms vs "
        f"sharded {results['sharded_workers_1']['4']['mean_latency_ms']:.3f} ms "
        f"({results['latency_rel_diff']:.2%} apart)",
        f"bit-identical repeat       : {results['bit_identical_repeat']}",
    ]
    return "\n".join(lines)


def _check(results: dict) -> None:
    assert results["speedup_4shards_vs_serial"] >= results["speedup_floor"], (
        f"parallel-engine speedup {results['speedup_4shards_vs_serial']:.2f}x "
        f"below floor {results['speedup_floor']}x"
    )
    # Both paths estimate the same M/M/c/K system; means must agree closely.
    assert results["latency_rel_diff"] < 0.05
    # Fixed seed + shard count must reproduce the merged metrics exactly,
    # and the shared-memory process path must match the in-process path.
    assert results["bit_identical_repeat"]
    assert results["process_fanout"]["metrics_identical_to_inline"]
    fanout = results["process_fanout"]
    if fanout["floor_enforced"]:
        assert fanout["scaling_vs_1_worker"] >= fanout["scaling_floor"], (
            f"4-worker scaling {fanout['scaling_vs_1_worker']:.2f}x below "
            f"floor {fanout['scaling_floor']}x on "
            f"{results['scale']['usable_cpus']} cpus"
        )


def test_parallel_engine_speedup(benchmark):
    results = benchmark.pedantic(run_parallel_engine_bench, rounds=1, iterations=1)
    save_report("parallel_engine", _render(results))
    save_json("BENCH_parallel_engine", results)
    _check(results)


if __name__ == "__main__":
    bench_results = run_parallel_engine_bench()
    save_report("parallel_engine", _render(bench_results))
    save_json("BENCH_parallel_engine", bench_results)
    _check(bench_results)
    print("ok")

"""Plain-text rendering of experiment results (tables and figure series).

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place so benches and examples agree.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a simple fixed-width table."""
    columns = len(headers)
    normalized_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in normalized_rows:
        for index in range(columns):
            if index < len(row):
                widths[index] = max(widths[index], len(row[index]))

    def render_row(cells: Sequence[str]) -> str:
        padded = [str(cells[i]).ljust(widths[i]) if i < len(cells) else " " * widths[i] for i in range(columns)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append(separator)
    lines.extend(render_row(row) for row in normalized_rows)
    return "\n".join(lines)


def format_series(
    name: str, points: Mapping[object, object] | Sequence[tuple[object, object]]
) -> str:
    """Render an (x, y) series as ``name: x=y, x=y, ...``."""
    if isinstance(points, Mapping):
        items = list(points.items())
    else:
        items = list(points)
    rendered = ", ".join(f"{_format_cell(x)}={_format_cell(y)}" for x, y in items)
    return f"{name}: {rendered}"


def format_weights(weights: Mapping[str, float], *, precision: int = 3) -> str:
    """Render a weight map sorted by DIP id."""
    parts = [f"{dip}={weight:.{precision}f}" for dip, weight in sorted(weights.items())]
    return ", ".join(parts)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)

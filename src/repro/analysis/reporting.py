"""Plain-text rendering of experiment results (tables and figure series).

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place so benches and examples agree.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a simple fixed-width table."""
    columns = len(headers)
    normalized_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in normalized_rows:
        for index in range(columns):
            if index < len(row):
                widths[index] = max(widths[index], len(row[index]))

    def render_row(cells: Sequence[str]) -> str:
        padded = [str(cells[i]).ljust(widths[i]) if i < len(cells) else " " * widths[i] for i in range(columns)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append(separator)
    lines.extend(render_row(row) for row in normalized_rows)
    return "\n".join(lines)


def format_series(
    name: str, points: Mapping[object, object] | Sequence[tuple[object, object]]
) -> str:
    """Render an (x, y) series as ``name: x=y, x=y, ...``."""
    if isinstance(points, Mapping):
        items = list(points.items())
    else:
        items = list(points)
    rendered = ", ".join(f"{_format_cell(x)}={_format_cell(y)}" for x, y in items)
    return f"{name}: {rendered}"


def format_weights(weights: Mapping[str, float], *, precision: int = 3) -> str:
    """Render a weight map sorted by DIP id."""
    parts = [f"{dip}={weight:.{precision}f}" for dip, weight in sorted(weights.items())]
    return ", ".join(parts)


def format_run_comparison(
    runs: Sequence[Mapping[str, object]], *, title: str | None = None
) -> str:
    """Render run artifacts side by side: one row per metric, one column per run.

    ``runs`` are mappings with ``name`` and ``metrics`` (the shape
    :func:`repro.api.compare` produces); the first run is the baseline and
    every other column annotates its relative delta against it.
    """
    if not runs:
        return "(no runs to compare)"
    names = [str(run.get("name", f"run-{i}")) for i, run in enumerate(runs)]
    metric_order: list[str] = []
    for run in runs:
        for metric in run.get("metrics", {}):
            if metric not in metric_order:
                metric_order.append(metric)

    rows = []
    for metric in metric_order:
        cells: list[str] = [metric]
        base = None
        for index, run in enumerate(runs):
            value = run.get("metrics", {}).get(metric)
            if value is None:
                cells.append("-")
                continue
            value = float(value)
            rendered = _format_cell(value)
            if index == 0:
                base = value
            elif base not in (None, 0.0) and base == base and value == value:
                delta = (value - base) / abs(base) * 100.0
                rendered += f" ({delta:+.1f}%)"
            cells.append(rendered)
        rows.append(cells)
    heading = title or f"Run comparison (baseline: {names[0]})"
    return format_table(["metric"] + names, rows, title=heading)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)

"""Analysis and reporting helpers."""

from repro.analysis.metrics import (
    LatencyStats,
    group_mean,
    relative_gain,
    utilization_spread,
    weighted_mean,
    weights_ratio,
)
from repro.analysis.reporting import (
    format_run_comparison,
    format_series,
    format_table,
    format_weights,
)

__all__ = [
    "LatencyStats",
    "group_mean",
    "relative_gain",
    "utilization_spread",
    "weighted_mean",
    "weights_ratio",
    "format_run_comparison",
    "format_series",
    "format_table",
    "format_weights",
]

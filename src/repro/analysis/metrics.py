"""Statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.types import DipId
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample."""

    count: int
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyStats":
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan)
        return cls(
            count=int(values.size),
            mean_ms=float(values.mean()),
            p50_ms=float(np.percentile(values, 50)),
            p90_ms=float(np.percentile(values, 90)),
            p95_ms=float(np.percentile(values, 95)),
            p99_ms=float(np.percentile(values, 99)),
            max_ms=float(values.max()),
        )


def relative_gain(baseline: float, improved: float) -> float:
    """Relative reduction of ``improved`` vs ``baseline`` (positive = better)."""
    if baseline <= 0:
        raise ConfigurationError("baseline must be positive")
    return (baseline - improved) / baseline


def utilization_spread(utilization: Mapping[DipId, float]) -> float:
    """max − min CPU utilization across DIPs (0 = perfectly balanced)."""
    if not utilization:
        return 0.0
    values = list(utilization.values())
    return max(values) - min(values)


def weighted_mean(values: Mapping[DipId, float], weights: Mapping[DipId, float]) -> float:
    """Weight-averaged value (e.g. request-weighted mean latency)."""
    total_weight = sum(weights.get(d, 0.0) for d in values)
    if total_weight <= 0:
        raise ConfigurationError("weights must sum to a positive value")
    return sum(values[d] * weights.get(d, 0.0) for d in values) / total_weight


def group_mean(
    per_dip: Mapping[DipId, float], groups: Mapping[str, Sequence[DipId]]
) -> dict[str, float]:
    """Mean of a per-DIP metric within each named group (e.g. per VM type)."""
    result: dict[str, float] = {}
    for name, dips in groups.items():
        values = [per_dip[d] for d in dips if d in per_dip]
        result[name] = float(np.mean(values)) if values else float("nan")
    return result


def weights_ratio(weights: Mapping[DipId, float], groups: Mapping[str, Sequence[DipId]]) -> dict[str, float]:
    """Per-group mean weight normalised to the smallest group mean.

    Used to report statements like "weights are in ratio 1:2:3.9:9.7"
    (§6.1, Fig. 11).
    """
    means = group_mean(weights, groups)
    finite = [v for v in means.values() if v > 0]
    if not finite:
        return {name: float("nan") for name in means}
    smallest = min(finite)
    return {name: value / smallest for name, value in means.items()}

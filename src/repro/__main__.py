"""``python -m repro`` — the declarative experiment CLI (see repro.api.cli)."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Catalogue of VM types used in the paper's evaluation (Table 3, §6.7).

Capacities are expressed in requests per second for the paper's
cache-intensive web-server workload.  Absolute values are synthetic (we do
not have the authors' Azure testbed) but the *relationships* the paper
relies on are preserved:

* capacity grows with vCPU count, slightly sub-linearly for the larger
  DS-series VMs (the paper notes the 4-core DS VM "did not scale linearly");
* F-series VMs are 15-20 % faster than the DS VM with the same core count
  (§2.2, §6), well short of the advertised 2×;
* the idle (unloaded) request latency is lower on F-series VMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class VMType:
    """A cloud VM SKU as seen by the DIP model."""

    name: str
    series: str
    vcpus: int
    #: sustainable request throughput (requests/second) for the evaluation
    #: workload when no antagonist is running.
    base_capacity_rps: float
    #: mean service latency at (near-)zero load, milliseconds.
    idle_latency_ms: float
    #: monthly price in USD, used only by the §6.7 overhead model.
    monthly_cost_usd: float = 0.0

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ConfigurationError("vcpus must be >= 1")
        if self.base_capacity_rps <= 0:
            raise ConfigurationError("base_capacity_rps must be positive")
        if self.idle_latency_ms <= 0:
            raise ConfigurationError("idle_latency_ms must be positive")


#: Per-core capacity of the baseline DS series, requests/second.
_DS_PER_CORE_RPS = 400.0
#: F-series speedup over DS at equal core count (paper: 15-20 %).
_F_SERIES_SPEEDUP = 1.18
#: Scaling efficiency of multi-core DS VMs (sub-linear, per the paper).
_DS_SCALING = {1: 1.00, 2: 0.97, 4: 0.88, 8: 0.82}


def _ds_capacity(vcpus: int) -> float:
    efficiency = _DS_SCALING.get(vcpus, 0.80)
    return _DS_PER_CORE_RPS * vcpus * efficiency


def _idle_latency_ms(vcpus: int, capacity_rps: float) -> float:
    """Mean per-request service time, keeping capacity = vcpus / service_time."""
    return 1000.0 * vcpus / capacity_rps


def _vm(name: str, series: str, vcpus: int, capacity: float, cost: float) -> VMType:
    return VMType(
        name=name,
        series=series,
        vcpus=vcpus,
        base_capacity_rps=capacity,
        idle_latency_ms=_idle_latency_ms(vcpus, capacity),
        monthly_cost_usd=cost,
    )


DS1_V2 = _vm("DS1v2", "DS", 1, _ds_capacity(1), 41.0)
DS2_V2 = _vm("DS2v2", "DS", 2, _ds_capacity(2), 85.0)
DS3_V2 = _vm("DS3v2", "DS", 4, _ds_capacity(4), 167.0)
DS4_V2 = _vm("DS4v2", "DS", 8, _ds_capacity(8), 335.0)
F8S_V2 = _vm("F8sv2", "F", 8, _ds_capacity(8) * _F_SERIES_SPEEDUP, 270.0)
F2S_V2 = _vm("F2sv2", "F", 2, _ds_capacity(2) * _F_SERIES_SPEEDUP, 68.0)
D8A_V4 = _vm("D8av4", "D", 8, _ds_capacity(8), 280.0)

_CATALOGUE: dict[str, VMType] = {
    vm.name: vm
    for vm in (DS1_V2, DS2_V2, DS3_V2, DS4_V2, F8S_V2, F2S_V2, D8A_V4)
}


def get_vm_type(name: str) -> VMType:
    """Look up a VM type by name (raises ``KeyError`` for unknown names)."""
    return _CATALOGUE[name]


def all_vm_types() -> tuple[VMType, ...]:
    return tuple(_CATALOGUE.values())


def custom_vm_type(
    name: str,
    *,
    vcpus: int,
    capacity_rps: float,
    idle_latency_ms: float | None = None,
    series: str = "custom",
    monthly_cost_usd: float = 0.0,
) -> VMType:
    """Create an ad-hoc VM type (used by tests and small scenarios).

    When ``idle_latency_ms`` is omitted it defaults to the M/M/c-consistent
    value ``1000 · vcpus / capacity_rps``, which keeps the analytic latency
    model and the request-level simulator in agreement.
    """
    if idle_latency_ms is None:
        idle_latency_ms = _idle_latency_ms(vcpus, capacity_rps)
    return VMType(
        name=name,
        series=series,
        vcpus=vcpus,
        base_capacity_rps=capacity_rps,
        idle_latency_ms=idle_latency_ms,
        monthly_cost_usd=monthly_cost_usd,
    )

"""Analytical latency model for a DIP under load.

The paper's Fig. 5 shows the qualitative relationship KnapsackLB depends on:
request latency is flat at low load, rises convexly once CPU utilization
passes ~60 %, and requests start being dropped as utilization approaches
100 %; ICMP/TCP pings stay flat because they are served by the OS, not the
application.

We model the application as an M/M/c queue (c = vCPUs) with a finite queue.
The mean response time of an M/M/c system reproduces exactly that shape:

    T(rho) = service_time + Wq(rho)

where ``Wq`` is the Erlang-C mean waiting time.  Past saturation we keep the
latency finite but large (bounded by the queue capacity) and report drops.

The model is deterministic given the offered load; the simulator adds
stochastic jitter on top when sampling individual requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arriving request must queue.

    ``offered_load`` is λ/μ (in Erlangs).  Only defined for
    ``offered_load < servers``.
    """
    if servers < 1:
        raise ConfigurationError("servers must be >= 1")
    if offered_load < 0:
        raise ConfigurationError("offered_load must be >= 0")
    if offered_load >= servers:
        return 1.0
    if offered_load == 0:
        return 0.0
    # Iterative Erlang-B, then convert to Erlang-C; numerically stable.
    inv_b = 1.0
    for k in range(1, servers + 1):
        inv_b = 1.0 + inv_b * k / offered_load
    erlang_b = 1.0 / inv_b
    rho = offered_load / servers
    return erlang_b / (1.0 - rho + rho * erlang_b)


@dataclass(frozen=True)
class LatencyModel:
    """Mean request latency as a function of offered request rate.

    Parameters
    ----------
    servers:
        Number of service workers (vCPUs).
    capacity_rps:
        Aggregate sustainable throughput; per-worker service rate is
        ``capacity_rps / servers``.
    idle_latency_ms:
        Mean latency when the system is idle (pure service time).
    max_queue:
        Mean number of requests that can be queued before drops start;
        bounds the latency past saturation.
    drop_utilization:
        Utilization above which requests begin to be dropped (paper: ~95 %).
    """

    servers: int
    capacity_rps: float
    idle_latency_ms: float
    max_queue: int = 64
    drop_utilization: float = 0.95

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ConfigurationError("servers must be >= 1")
        if self.capacity_rps <= 0:
            raise ConfigurationError("capacity_rps must be positive")
        if self.idle_latency_ms <= 0:
            raise ConfigurationError("idle_latency_ms must be positive")
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if not 0 < self.drop_utilization <= 1:
            raise ConfigurationError("drop_utilization must be in (0, 1]")

    @property
    def service_rate_per_server(self) -> float:
        """μ of one worker, requests/second."""
        return self.capacity_rps / self.servers

    def utilization(self, rate_rps: float) -> float:
        """CPU utilization (0..1, may exceed 1 nominally) at ``rate_rps``."""
        if rate_rps < 0:
            raise ConfigurationError("rate_rps must be >= 0")
        return rate_rps / self.capacity_rps

    def mean_latency_ms(
        self, rate_rps: float, *, scv_correction: float = 1.0
    ) -> float:
        """Mean application-level response latency at offered ``rate_rps``.

        ``scv_correction`` is the Allen-Cunneen M/G/c factor
        ``(Ca^2 + Cs^2) / 2`` (see :mod:`repro.workloads.divergence`): it
        scales the *waiting* component only — idle service time does not
        depend on variability — turning the M/M/c mean into the standard
        M/G/c approximation.  The default of 1.0 is the exact M/M/c value
        and is bit-identical to the uncorrected model.
        """
        if rate_rps < 0:
            raise ConfigurationError("rate_rps must be >= 0")
        if rate_rps == 0:
            return self.idle_latency_ms

        mu = self.service_rate_per_server  # per-server rate, req/s
        offered = rate_rps / mu  # Erlangs
        service_time_ms = self.idle_latency_ms

        saturation = self.capacity_rps * 0.999
        if rate_rps < saturation:
            pq = erlang_c(self.servers, offered)
            # Mean wait in queue (seconds) for M/M/c, converted to ms.
            wait_s = pq / (self.servers * mu - rate_rps)
            wait_ms = wait_s * 1000.0 * scv_correction
            # Bound by the finite queue: cannot wait longer than draining a
            # full queue.
            max_wait_ms = self.max_queue / self.capacity_rps * 1000.0
            return service_time_ms + min(wait_ms, max_wait_ms)

        # At or past saturation the queue stays full: latency plateaus at
        # service time + time to drain the full queue.
        max_wait_ms = self.max_queue / self.capacity_rps * 1000.0
        return service_time_ms + max_wait_ms

    def drop_probability(self, rate_rps: float) -> float:
        """Fraction of requests dropped at offered ``rate_rps``.

        Zero below ``drop_utilization``; above it, grows linearly with the
        excess and past capacity equals the structural loss ``1 - cap/rate``.
        """
        util = self.utilization(rate_rps)
        if util <= self.drop_utilization:
            return 0.0
        if util >= 1.0:
            return max(0.0, 1.0 - self.capacity_rps / rate_rps) or 0.01
        # Between drop_utilization and 1.0: small but growing loss.
        span = 1.0 - self.drop_utilization
        return 0.05 * (util - self.drop_utilization) / span

    def has_drops(self, rate_rps: float) -> bool:
        return self.drop_probability(rate_rps) > 0.0

    def ping_latency_ms(self, rate_rps: float) -> float:
        """ICMP/TCP-SYN ping latency: handled by the OS, load-independent."""
        base = 0.3
        # A barely perceptible rise at extreme overload (kernel softirq
        # pressure), matching Fig. 5 where pings stay essentially flat.
        util = min(self.utilization(rate_rps), 2.0)
        return base * (1.0 + 0.02 * max(0.0, util - 1.0))

    def latency_at_utilization(self, utilization: float) -> float:
        """Convenience: latency at a target utilization level."""
        if utilization < 0:
            raise ConfigurationError("utilization must be >= 0")
        return self.mean_latency_ms(utilization * self.capacity_rps)

    def max_rate_for_latency(self, latency_ms: float, *, tol: float = 1e-6) -> float:
        """Largest request rate whose mean latency stays below ``latency_ms``.

        Solved by bisection on the monotone ``mean_latency_ms``.
        """
        if latency_ms <= self.idle_latency_ms:
            return 0.0
        lo, hi = 0.0, self.capacity_rps * 2.0
        if self.mean_latency_ms(hi) <= latency_ms:
            return hi
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if self.mean_latency_ms(mid) <= latency_ms:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol:
                break
        return lo


def scaled_model(model: LatencyModel, capacity_factor: float) -> LatencyModel:
    """A copy of ``model`` with capacity scaled by ``capacity_factor``.

    Used to emulate noisy-neighbour antagonists and dynamic capacity change
    (§2.1): cache thrash slows every request down, so the per-request
    service time grows by ``1 / capacity_factor`` and the sustainable
    throughput shrinks by ``capacity_factor``, keeping the M/M/c relation
    ``capacity = servers / service_time`` intact.
    """
    if capacity_factor <= 0:
        raise ConfigurationError("capacity_factor must be positive")
    return LatencyModel(
        servers=model.servers,
        capacity_rps=model.capacity_rps * capacity_factor,
        idle_latency_ms=model.idle_latency_ms / capacity_factor,
        max_queue=model.max_queue,
        drop_utilization=model.drop_utilization,
    )

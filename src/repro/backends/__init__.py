"""DIP (backend server) substrate.

Provides the simulated equivalents of the Azure VMs in the paper's testbed:
VM SKUs (Table 3), an M/M/c-based latency model reproducing the Fig. 5
latency-vs-load shape, a noisy-neighbour antagonist, and the
:class:`DipServer` that combines them.
"""

from repro.backends.antagonist import Antagonist
from repro.backends.dip import DipServer, ProbeResult
from repro.backends.latency_model import LatencyModel, erlang_c, scaled_model
from repro.backends.vm_types import (
    D8A_V4,
    DS1_V2,
    DS2_V2,
    DS3_V2,
    DS4_V2,
    F2S_V2,
    F8S_V2,
    VMType,
    all_vm_types,
    custom_vm_type,
    get_vm_type,
)

__all__ = [
    "Antagonist",
    "DipServer",
    "ProbeResult",
    "LatencyModel",
    "erlang_c",
    "scaled_model",
    "VMType",
    "DS1_V2",
    "DS2_V2",
    "DS3_V2",
    "DS4_V2",
    "F2S_V2",
    "F8S_V2",
    "D8A_V4",
    "all_vm_types",
    "custom_vm_type",
    "get_vm_type",
]

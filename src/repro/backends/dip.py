"""The DIP (backend server) model.

A :class:`DipServer` combines a VM type, an M/M/c latency model and an
optional antagonist into the behaviour KnapsackLB observes from outside:

* an *offered request rate* set by whatever load balancer fronts the DIP;
* application request latencies drawn around the analytic mean;
* ICMP/TCP ping latencies that do not depend on load (Fig. 5);
* request drops once utilization approaches 100 %;
* a failure flag (probes to a failed DIP get no response, §4.5).

The DIP is intentionally opaque: it exposes no CPU counters to KnapsackLB
(agent-less design), but the simulator and experiments may read
``cpu_utilization`` to produce the paper's CPU-utilization figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.antagonist import Antagonist
from repro.backends.latency_model import LatencyModel, scaled_model
from repro.backends.vm_types import VMType
from repro.exceptions import ConfigurationError, DipFailureError


@dataclass
class ProbeResult:
    """Outcome of one KLM probe batch against a DIP."""

    dip: str
    mean_latency_ms: float
    dropped: bool
    samples: int
    drop_fraction: float = 0.0


@dataclass
class DipServer:
    """A simulated backend server instance.

    Parameters
    ----------
    dip_id:
        Unique identifier (plays the role of the DIP's IP address).
    vm_type:
        Hardware SKU; fixes core count, base capacity and idle latency.
    jitter_fraction:
        Coefficient of variation of individual request latencies around the
        analytic mean.
    seed:
        Seed of the DIP's private RNG so experiments are reproducible.
    """

    dip_id: str
    vm_type: VMType
    jitter_fraction: float = 0.08
    seed: int | None = None
    antagonist: Antagonist = field(default_factory=Antagonist)
    failed: bool = False
    #: current offered application request rate (requests/second).
    offered_rate_rps: float = 0.0
    #: Allen-Cunneen M/G/c waiting-time factor ``(Ca^2 + Cs^2) / 2`` of
    #: the workload this DIP serves (see repro.workloads.divergence);
    #: 1.0 is the exact M/M/c baseline.  Runners stamp this from the
    #: workload spec so analytic latencies track non-Poisson traffic.
    scv_correction: float = 1.0

    def __post_init__(self) -> None:
        if self.jitter_fraction < 0:
            raise ConfigurationError("jitter_fraction must be >= 0")
        self._rng = np.random.default_rng(self.seed)
        self._base_model = LatencyModel(
            servers=self.vm_type.vcpus,
            capacity_rps=self.vm_type.base_capacity_rps,
            idle_latency_ms=self.vm_type.idle_latency_ms,
        )
        self._served_requests = 0
        self._dropped_requests = 0

    # -- capacity ---------------------------------------------------------

    @property
    def latency_model(self) -> LatencyModel:
        """The latency model including any antagonist-induced capacity loss."""
        factor = self.antagonist.capacity_factor
        if factor >= 1.0:
            return self._base_model
        return scaled_model(self._base_model, factor)

    @property
    def capacity_rps(self) -> float:
        """Current sustainable throughput (after antagonist effects)."""
        return self.latency_model.capacity_rps

    @property
    def base_capacity_rps(self) -> float:
        return self._base_model.capacity_rps

    def set_capacity_ratio(self, ratio: float, *, at_time: float = 0.0) -> None:
        """Pin the DIP's capacity to ``ratio`` of its base value."""
        self.antagonist.set_capacity_ratio(ratio, at_time=at_time)

    def reset_capacity(self, *, at_time: float = 0.0) -> None:
        self.antagonist.clear(at_time=at_time)

    # -- load & utilization ------------------------------------------------

    def set_offered_rate(self, rate_rps: float) -> None:
        if rate_rps < 0:
            raise ConfigurationError("rate_rps must be >= 0")
        self.offered_rate_rps = float(rate_rps)

    @property
    def cpu_utilization(self) -> float:
        """CPU utilization in [0, 1]; saturates at 1.0 when overloaded."""
        if self.failed:
            return 0.0
        return min(1.0, self.latency_model.utilization(self.offered_rate_rps))

    @property
    def mean_latency_ms(self) -> float:
        """Mean application latency at the current offered rate."""
        return self.latency_model.mean_latency_ms(
            self.offered_rate_rps, scv_correction=self.scv_correction
        )

    @property
    def drop_probability(self) -> float:
        return self.latency_model.drop_probability(self.offered_rate_rps)

    @property
    def idle_latency_ms(self) -> float:
        return self.latency_model.idle_latency_ms

    # -- failures ----------------------------------------------------------

    def fail(self) -> None:
        """Take the DIP down; subsequent probes and requests fail."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    # -- request serving ----------------------------------------------------

    def sample_request_latency_ms(self, *, rate_rps: float | None = None) -> float:
        """Latency of one application request at the (or a given) load."""
        if self.failed:
            raise DipFailureError(f"DIP {self.dip_id} is down")
        rate = self.offered_rate_rps if rate_rps is None else rate_rps
        mean = self.latency_model.mean_latency_ms(
            rate, scv_correction=self.scv_correction
        )
        if self.jitter_fraction == 0:
            return mean
        sample = self._rng.normal(mean, mean * self.jitter_fraction)
        self._served_requests += 1
        return float(max(mean * 0.25, sample))

    def sample_ping_latency_ms(self) -> float:
        """ICMP / TCP-SYN latency; load independent (handled by the OS)."""
        if self.failed:
            raise DipFailureError(f"DIP {self.dip_id} is down")
        base = self.latency_model.ping_latency_ms(self.offered_rate_rps)
        return float(max(0.05, self._rng.normal(base, base * 0.05)))

    def serve_probe_batch(self, num_requests: int) -> ProbeResult:
        """Serve a KLM probe batch and report the averaged latency.

        Probe traffic is tiny compared to client traffic, so it does not
        perturb the offered rate; drops reflect the DIP's current overload
        state.
        """
        if self.failed:
            raise DipFailureError(f"DIP {self.dip_id} is down")
        if num_requests < 1:
            raise ConfigurationError("num_requests must be >= 1")
        drop_p = self.drop_probability
        drops = int(self._rng.binomial(num_requests, min(1.0, drop_p)))
        served = num_requests - drops
        self._dropped_requests += drops
        if served == 0:
            return ProbeResult(
                dip=self.dip_id,
                mean_latency_ms=float("inf"),
                dropped=True,
                samples=0,
                drop_fraction=1.0,
            )
        latencies = [self.sample_request_latency_ms() for _ in range(served)]
        return ProbeResult(
            dip=self.dip_id,
            mean_latency_ms=float(np.mean(latencies)),
            dropped=drops > 0,
            samples=served,
            drop_fraction=drops / num_requests,
        )

    # -- accounting ---------------------------------------------------------

    @property
    def served_requests(self) -> int:
        return self._served_requests

    @property
    def dropped_requests(self) -> int:
        return self._dropped_requests

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DipServer({self.dip_id!r}, type={self.vm_type.name}, "
            f"capacity={self.capacity_rps:.0f} rps, "
            f"util={self.cpu_utilization:.0%})"
        )

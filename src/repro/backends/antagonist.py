"""Noisy-neighbour antagonist model (§2.1).

The paper emulates dynamic capacity loss by running copies of an antagonist
process that thrashes the CPU caches and partially consumes CPU on the DIP's
host.  We model the aggregate effect as a multiplicative capacity factor:
each antagonist copy removes a fraction of the remaining capacity, with
diminishing returns so that stacking copies approaches (but never reaches)
zero capacity — matching the 100 %/90 %/75 %/60 % capacity-ratio sweeps in
Figs. 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass
class Antagonist:
    """A configurable capacity-stealing co-located workload.

    ``per_copy_loss`` is the fraction of remaining capacity one antagonist
    copy steals (cache thrash + partial CPU burn).
    """

    per_copy_loss: float = 0.12
    copies: int = 0
    #: explicit override: when set, the capacity factor is exactly this
    #: value regardless of ``copies`` (used to hit the paper's 0.9/0.75/0.6
    #: ratios precisely).
    capacity_override: float | None = None
    #: history of (time, factor) changes, for traceability in experiments.
    history: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.per_copy_loss < 1:
            raise ConfigurationError("per_copy_loss must be in (0, 1)")
        if self.copies < 0:
            raise ConfigurationError("copies must be >= 0")
        if self.capacity_override is not None and not 0 < self.capacity_override <= 1:
            raise ConfigurationError("capacity_override must be in (0, 1]")

    @property
    def capacity_factor(self) -> float:
        """Multiplier applied to the DIP's base capacity (1.0 = no impact)."""
        if self.capacity_override is not None:
            return self.capacity_override
        return (1.0 - self.per_copy_loss) ** self.copies

    def set_copies(self, copies: int, *, at_time: float = 0.0) -> float:
        """Run ``copies`` antagonist copies; returns the new capacity factor."""
        if copies < 0:
            raise ConfigurationError("copies must be >= 0")
        self.copies = copies
        self.capacity_override = None
        self.history.append((at_time, self.capacity_factor))
        return self.capacity_factor

    def set_capacity_ratio(self, ratio: float, *, at_time: float = 0.0) -> float:
        """Pin the capacity factor to ``ratio`` (paper's 90 %/75 %/60 % sweeps)."""
        if not 0 < ratio <= 1:
            raise ConfigurationError("ratio must be in (0, 1]")
        self.capacity_override = ratio
        self.history.append((at_time, ratio))
        return ratio

    def clear(self, *, at_time: float = 0.0) -> float:
        """Remove all antagonist load."""
        self.copies = 0
        self.capacity_override = None
        self.history.append((at_time, 1.0))
        return 1.0

    def copies_for_ratio(self, ratio: float) -> int:
        """Smallest number of copies achieving a capacity factor <= ratio."""
        if not 0 < ratio <= 1:
            raise ConfigurationError("ratio must be in (0, 1]")
        copies = 0
        factor = 1.0
        while factor > ratio and copies < 1000:
            copies += 1
            factor *= 1.0 - self.per_copy_loss
        return copies

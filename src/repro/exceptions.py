"""Exception hierarchy for the KnapsackLB reproduction.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries while tests can assert on the
precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration object (or a set of arguments) is inconsistent."""


class SolverError(ReproError):
    """The MILP solver failed in an unexpected way."""


class InfeasibleError(SolverError):
    """The optimization model has no feasible solution."""


class SolverTimeoutError(SolverError):
    """The solver exceeded its configured time limit.

    The paper reports such cases as "TO" in Fig. 8.
    """

    def __init__(self, message: str, elapsed: float | None = None) -> None:
        super().__init__(message)
        self.elapsed = elapsed


class DipOverloadError(ReproError):
    """A computed weight assignment would overload at least one DIP.

    The paper reports such cases as "DO" in Fig. 8: with a coarse weight
    grid, every feasible assignment pushes some DIP past its capacity.
    """

    def __init__(self, message: str, overloaded_dips: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.overloaded_dips = overloaded_dips


class MeasurementError(ReproError):
    """A latency measurement (KLM probe) could not be completed."""


class DipFailureError(MeasurementError):
    """Probes to a DIP repeatedly failed; the DIP is considered down."""


class CurveFitError(ReproError):
    """Weight-latency curve fitting failed (e.g. too few valid points)."""


class SchedulingError(ReproError):
    """The measurement scheduler was asked to do something impossible."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""

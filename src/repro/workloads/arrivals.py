"""Bursty, heavy-tailed and trace-driven workload generators.

Everything PR 2-9 built ran on the friendliest traffic that exists —
Poisson arrivals and exponential service.  This module supplies the
stress: Markov-modulated Poisson (MMPP) and flash-crowd arrival
processes, lognormal / Pareto / elephant-mix service-time samplers, and
CSV/JSONL trace replay.

Arrival processes stream through the same allocation-lean chunk
interface :class:`~repro.sim.client.WorkloadGenerator` already exposes:
:meth:`ArrivalProcess.produce` hands back the next ``n`` interarrival
gaps as one numpy array.  Generation happens internally in fixed-size
candidate blocks on dedicated RNG lanes, so the gap stream is
bit-identical per seed **regardless of the chunk sizes consumers
request** — ``produce(4096)`` equals 4096 calls of ``produce(1)``
concatenated.  That invariance is what lets the request engine keep its
pop-from-buffer hot path and what makes results reproducible across
refill boundaries.

Service samplers are unit-mean by construction (the station scales draws
by the DIP's mean service time at consumption, exactly as the legacy
exponential path does), so ``load_fraction`` keeps its meaning under
every kind.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec imports us)
    from repro.api.spec import ArrivalSpec, ServiceSpec

#: Registered arrival-process kinds -> one-line summary (``repro list``).
ARRIVAL_KINDS: dict[str, str] = {
    "poisson": "memoryless baseline; the only kind exact sharding accepts",
    "mmpp": "Markov-modulated Poisson: a cyclic CTMC switches the intensity",
    "flash_crowd": "shot-noise bursts: Poisson onsets, exponential decay",
    "trace": "replay interarrival gaps from a CSV/JSONL trace file",
}

#: Registered service-time kinds -> one-line summary (``repro list``).
SERVICE_KINDS: dict[str, str] = {
    "exponential": "memoryless service; the M/M/c-exact baseline",
    "lognormal": "lognormal service times with configurable SCV",
    "pareto": "Pareto service times with configurable tail index",
    "elephant": "hyperexponential mice/elephant flow-size mix",
}

#: Internal candidate-block size.  Fixed — never derived from the
#: consumer's chunk size — so RNG consumption is chunk-invariant.
_GEN_BLOCK = 4096


def _lane_rng(seed: int | None, lane: int) -> np.random.Generator:
    """A dedicated generator lane so each random purpose has its own stream."""
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng([int(seed), lane])


class ArrivalProcess:
    """Streaming interarrival-gap source behind ``WorkloadGenerator``.

    Subclasses implement :meth:`_generate_block`, which appends a batch of
    gaps generated from a *fixed* number of internal candidate draws.  The
    base class owns the pending buffer and slices it to whatever chunk
    sizes the consumer asks for, which is how chunk-size invariance falls
    out: internal generation never sees the requested ``n``.
    """

    kind = "base"

    def __init__(self, rate_rps: float) -> None:
        if rate_rps <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.rate_rps = float(rate_rps)
        self._pending: list[np.ndarray] = []
        self._pending_count = 0

    def produce(self, n: int) -> np.ndarray:
        """The next ``n`` interarrival gaps (seconds), in arrival order."""
        while self._pending_count < n:
            block = self._generate_block()
            if block.size:
                self._pending.append(block)
                self._pending_count += block.size
        out: list[np.ndarray] = []
        need = n
        while need > 0:
            head = self._pending[0]
            if head.size <= need:
                out.append(head)
                need -= head.size
                self._pending.pop(0)
            else:
                out.append(head[:need])
                self._pending[0] = head[need:]
                need = 0
        self._pending_count -= n
        return out[0] if len(out) == 1 else np.concatenate(out)

    def set_rate(self, rate_rps: float) -> None:
        """Retarget the mean rate.

        This is the ``arrival_scale`` timeline contract for non-Poisson
        kinds: the *modulating rates themselves* rescale (every state's
        absolute intensity for MMPP, the base rate for flash crowds, the
        replay clock for traces), and gaps already buffered here are
        rescaled in place, not just regenerated.
        """
        if rate_rps <= 0:
            raise ConfigurationError("arrival rate must be positive")
        factor = self.rate_rps / rate_rps
        if factor == 1.0:
            return
        self.rate_rps = float(rate_rps)
        self._pending = [gaps * factor for gaps in self._pending]
        self._pending_count = sum(int(g.size) for g in self._pending)
        self._rescale(factor)

    def _rescale(self, factor: float) -> None:
        """Subclass hook: rescale un-generated future time by ``factor``."""

    def _generate_block(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError


class MarkovModulatedPoisson(ArrivalProcess):
    """MMPP arrivals: a cyclic CTMC switches the Poisson intensity.

    ``state_rates`` are *relative* intensities, normalized so the
    stationary mean intensity equals ``rate_rps`` (``load_fraction``
    keeps its meaning).  ``switch_rates[i]`` is the exit rate of state
    ``i`` (mean sojourn ``1/switch_rates[i]``); the chain cycles
    ``0 -> 1 -> ... -> 0``.  Arrivals come from thinning a dominating
    Poisson stream at the peak state intensity; candidates, acceptance
    and CTMC sojourns each draw from their own RNG lane so the stream is
    chunk-invariant and deterministic per seed.
    """

    kind = "mmpp"

    def __init__(
        self,
        rate_rps: float,
        *,
        state_rates: tuple[float, ...],
        switch_rates: tuple[float, ...],
        seed: int | None = None,
    ) -> None:
        super().__init__(rate_rps)
        rates = np.asarray(state_rates, dtype=float)
        switches = np.asarray(switch_rates, dtype=float)
        if rates.size < 2:
            raise ConfigurationError("mmpp needs at least two state_rates")
        if switches.size != rates.size:
            raise ConfigurationError(
                f"mmpp switch_rates must match state_rates "
                f"({switches.size} vs {rates.size})"
            )
        if (rates < 0).any() or float(rates.max()) <= 0:
            raise ConfigurationError("mmpp state_rates must be >= 0, max > 0")
        if (switches <= 0).any():
            raise ConfigurationError("mmpp switch_rates must be positive")
        sojourns = 1.0 / switches
        stationary = sojourns / sojourns.sum()
        self._multipliers = rates / float(stationary @ rates)
        self._switch = switches
        self._rng_cand = _lane_rng(seed, 1)
        self._rng_accept = _lane_rng(seed, 2)
        self._rng_state = _lane_rng(seed, 3)
        self._state = 0
        self._clock = 0.0
        self._last_arrival = 0.0
        #: piecewise-constant intensity path: segment end times + multipliers.
        self._seg_ends: list[float] = []
        self._seg_mults: list[float] = []
        self._path_end = 0.0

    def _extend_path(self, until: float) -> None:
        while self._path_end <= until:
            sojourn = self._rng_state.exponential(
                1.0 / float(self._switch[self._state])
            )
            self._path_end += sojourn
            self._seg_ends.append(self._path_end)
            self._seg_mults.append(float(self._multipliers[self._state]))
            self._state = (self._state + 1) % self._multipliers.size

    def _generate_block(self) -> np.ndarray:
        peak = float(self._multipliers.max())
        gaps = self._rng_cand.exponential(
            1.0 / (self.rate_rps * peak), size=_GEN_BLOCK
        )
        times = self._clock + np.cumsum(gaps)
        self._clock = float(times[-1])
        self._extend_path(self._clock)
        ends = np.asarray(self._seg_ends)
        mult = np.asarray(self._seg_mults)[
            np.searchsorted(ends, times, side="left")
        ]
        accepted = times[self._rng_accept.random(_GEN_BLOCK) * peak < mult]
        done = int(np.searchsorted(ends, self._clock, side="left"))
        if done > 64:
            del self._seg_ends[:done]
            del self._seg_mults[:done]
        if accepted.size == 0:
            return accepted
        out = np.diff(accepted, prepend=self._last_arrival)
        self._last_arrival = float(accepted[-1])
        return out


class FlashCrowd(ArrivalProcess):
    """Shot-noise flash-crowd arrivals.

    Burst onsets form a Poisson process at ``burst_rate_per_s``; each
    burst adds ``burst_height`` times the base intensity, decaying
    exponentially with time constant ``burst_decay_s``.  The base rate is
    normalized by the stationary boost ``1 + height * rate * decay`` so
    the long-run mean stays ``rate_rps``.  Between onsets the intensity
    only decays, so its value at a segment start bounds the segment and
    thinning against that bound is exact.
    """

    kind = "flash_crowd"

    def __init__(
        self,
        rate_rps: float,
        *,
        burst_rate_per_s: float,
        burst_height: float,
        burst_decay_s: float,
        seed: int | None = None,
    ) -> None:
        super().__init__(rate_rps)
        if burst_rate_per_s <= 0:
            raise ConfigurationError("flash_crowd burst_rate_per_s must be > 0")
        if burst_height <= 0:
            raise ConfigurationError("flash_crowd burst_height must be > 0")
        if burst_decay_s <= 0:
            raise ConfigurationError("flash_crowd burst_decay_s must be > 0")
        self.burst_rate_per_s = float(burst_rate_per_s)
        self.burst_height = float(burst_height)
        self.burst_decay_s = float(burst_decay_s)
        self._mean_boost = 1.0 + burst_height * burst_rate_per_s * burst_decay_s
        self._rng_cand = _lane_rng(seed, 11)
        self._rng_accept = _lane_rng(seed, 12)
        self._rng_burst = _lane_rng(seed, 13)
        self._clock = 0.0
        self._last_arrival = 0.0
        self._bursts: list[float] = []
        self._next_burst: float | None = None

    def _boost_at(self, times: np.ndarray) -> np.ndarray:
        boost = np.ones_like(times)
        for onset in self._bursts:
            boost += self.burst_height * np.exp(
                -(times - onset) / self.burst_decay_s
            )
        return boost

    def _generate_block(self) -> np.ndarray:
        if self._next_burst is None:
            self._next_burst = self._clock + self._rng_burst.exponential(
                1.0 / self.burst_rate_per_s
            )
        base = self.rate_rps / self._mean_boost
        bound = float(self._boost_at(np.asarray([self._clock]))[0])
        gaps = self._rng_cand.exponential(
            1.0 / (base * bound), size=_GEN_BLOCK
        )
        times = self._clock + np.cumsum(gaps)
        cut = int(np.searchsorted(times, self._next_burst, side="right"))
        times = times[:cut]
        if cut:
            accepted = times[
                self._rng_accept.random(cut) * bound < self._boost_at(times)
            ]
        else:
            accepted = times
        if cut < _GEN_BLOCK:
            # The segment ended at the burst onset: arm the burst and drop
            # contributions decayed to nothing (e^-40) so the sum stays O(1).
            self._clock = self._next_burst
            self._bursts.append(self._next_burst)
            self._next_burst = None
            horizon = self._clock - 40.0 * self.burst_decay_s
            self._bursts = [b for b in self._bursts if b > horizon]
        else:
            self._clock = float(times[-1])
        if accepted.size == 0:
            return accepted
        out = np.diff(accepted, prepend=self._last_arrival)
        self._last_arrival = float(accepted[-1])
        return out


class TraceReplay(ArrivalProcess):
    """Deterministic replay of interarrival gaps from a trace file.

    The trace's timestamp column becomes a cyclic gap sequence (the first
    gap and the wrap-around gap are the trace's mean gap, so cycling does
    not inject a burst).  ``preserve_rate=True`` replays the trace's own
    mean rate — ``rate_rps`` then *reports* the trace rate instead of
    targeting the spec's; otherwise gaps are scaled once so the mean rate
    matches the requested one.  No RNG is involved: replay is exact.
    """

    kind = "trace"

    def __init__(
        self,
        rate_rps: float,
        *,
        path: str,
        time_column: str = "timestamp",
        preserve_rate: bool = False,
    ) -> None:
        timestamps = load_trace_timestamps(path, time_column=time_column)
        t = np.asarray(timestamps, dtype=float)
        span = float(t[-1] - t[0])
        if span <= 0:
            raise ConfigurationError(
                f"trace file {str(path)!r} spans zero time"
            )
        trace_rate = (t.size - 1) / span
        mean_gap = span / (t.size - 1)
        gaps = np.concatenate([[mean_gap], np.diff(t)])
        if preserve_rate:
            effective = trace_rate
        else:
            gaps = gaps * (trace_rate / rate_rps)
            effective = rate_rps
        super().__init__(effective)
        self.path = str(path)
        self.preserve_rate = bool(preserve_rate)
        self._gaps = gaps
        self._cursor = 0

    def set_rate(self, rate_rps: float) -> None:
        if self.preserve_rate and rate_rps != self.rate_rps:
            raise ConfigurationError(
                "a preserve_rate trace replays the trace's own clock and "
                "cannot be rescaled; set workload.arrival.preserve_rate = "
                "false to allow arrival_scale events"
            )
        super().set_rate(rate_rps)

    def _rescale(self, factor: float) -> None:
        self._gaps = self._gaps * factor

    def _generate_block(self) -> np.ndarray:
        start = self._cursor
        stop = min(start + _GEN_BLOCK, self._gaps.size)
        self._cursor = stop % self._gaps.size
        return self._gaps[start:stop].copy()


def load_trace_timestamps(
    path: str | Path, *, time_column: str = "timestamp"
) -> np.ndarray:
    """Sorted arrival timestamps from a CSV or JSONL trace file."""
    file = Path(path)
    if not file.exists():
        raise ConfigurationError(
            f"trace file {str(file)!r} does not exist"
        )
    if file.suffix.lower() in {".jsonl", ".ndjson"}:
        values = _read_jsonl(file, time_column)
    else:
        values = _read_csv(file, time_column)
    if len(values) < 2:
        raise ConfigurationError(
            f"trace file {str(file)!r} holds {len(values)} arrivals; "
            "at least 2 are needed"
        )
    t = np.asarray(values, dtype=float)
    if (np.diff(t) < 0).any():
        raise ConfigurationError(
            f"trace file {str(file)!r} column {time_column!r} is not "
            "sorted by time"
        )
    return t


def _read_csv(file: Path, time_column: str) -> list[float]:
    with file.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        fields = reader.fieldnames or []
        if time_column not in fields:
            raise ConfigurationError(
                f"trace file {str(file)!r} has no column {time_column!r}; "
                f"columns: {', '.join(fields) or '(none)'}"
            )
        try:
            return [float(row[time_column]) for row in reader]
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"trace file {str(file)!r} column {time_column!r} holds a "
                f"non-numeric value: {error}"
            ) from None


def _read_jsonl(file: Path, time_column: str) -> list[float]:
    values: list[float] = []
    with file.open(encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"trace file {str(file)!r} line {lineno} is not valid "
                    f"JSON: {error}"
                ) from None
            if time_column not in record:
                raise ConfigurationError(
                    f"trace file {str(file)!r} line {lineno} has no field "
                    f"{time_column!r}"
                )
            values.append(float(record[time_column]))
    return values


def make_arrival_process(
    arrival: "ArrivalSpec", rate_rps: float, *, seed: int | None = None
) -> ArrivalProcess | None:
    """The :class:`ArrivalProcess` for a spec, or ``None`` for plain Poisson.

    Poisson stays ``None`` on purpose: ``WorkloadGenerator`` keeps its
    legacy inline exponential draw, bit-identical with every artifact
    recorded before this module existed.
    """
    kind = arrival.kind
    if kind == "poisson":
        return None
    if kind == "mmpp":
        return MarkovModulatedPoisson(
            rate_rps,
            state_rates=arrival.state_rates,
            switch_rates=arrival.switch_rates,
            seed=seed,
        )
    if kind == "flash_crowd":
        return FlashCrowd(
            rate_rps,
            burst_rate_per_s=arrival.burst_rate_per_s,
            burst_height=arrival.burst_height,
            burst_decay_s=arrival.burst_decay_s,
            seed=seed,
        )
    if kind == "trace":
        return TraceReplay(
            rate_rps,
            path=arrival.trace_path,
            time_column=arrival.trace_column,
            preserve_rate=arrival.preserve_rate,
        )
    raise ConfigurationError(
        f"unknown arrival kind {kind!r}; known kinds: "
        f"{', '.join(sorted(ARRIVAL_KINDS))}"
    )


def unit_service_sampler(
    service: "ServiceSpec", rng: np.random.Generator
) -> Callable[[int], np.ndarray]:
    """A unit-mean batched service sampler for ``DipStation``.

    Returns ``draw(n) -> ndarray`` of ``n`` unit-mean service draws on
    the station's own generator; the station scales them by the DIP's
    mean service time at consumption.  ``exponential`` returns the
    generator's bound ``standard_exponential`` — the bit-identical
    legacy path, consuming exactly the same stream.
    """
    kind = service.kind
    if kind == "exponential":
        return rng.standard_exponential
    if kind == "lognormal":
        sigma2 = math.log(1.0 + service.scv)
        sigma = math.sqrt(sigma2)
        mu = -0.5 * sigma2

        def draw_lognormal(n: int) -> np.ndarray:
            return rng.lognormal(mu, sigma, size=n)

        return draw_lognormal
    if kind == "pareto":
        alpha = service.tail_index
        scale = (alpha - 1.0) / alpha

        def draw_pareto(n: int) -> np.ndarray:
            # numpy's pareto is the Lomax form; 1 + Lomax is standard
            # Pareto with x_m = 1, rescaled here to unit mean.
            return scale * (1.0 + rng.pareto(alpha, size=n))

        return draw_pareto
    if kind == "elephant":
        p = service.elephant_fraction
        m = service.elephant_factor
        mouse_scale = 1.0 / ((1.0 - p) + p * m)

        def draw_elephant(n: int) -> np.ndarray:
            draws = rng.standard_exponential(n) * mouse_scale
            draws[rng.random(n) < p] *= m
            return draws

        return draw_elephant
    raise ConfigurationError(
        f"unknown service kind {kind!r}; known kinds: "
        f"{', '.join(sorted(SERVICE_KINDS))}"
    )

"""Workload and DIP-pool builders used across experiments.

The builders mirror the setups of the paper's evaluation:

* the 41-VM testbed of Table 3 (30 DIPs of four VM types behind HAProxy);
* the 3-DIP pool of §2.1 (two high-capacity DIPs plus one whose capacity is
  squeezed by an antagonist);
* the heterogeneous DS-vs-F pair of §2.2;
* the datacenter-scale VIP mix of Table 8 (60 K DIPs split across VIPs of
  5 to 1000 DIPs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backends import (
    DS1_V2,
    DS2_V2,
    DS3_V2,
    F2S_V2,
    F8S_V2,
    DipServer,
    VMType,
    custom_vm_type,
)
from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.sim.fleet import Fleet
from repro.sim.fluid import FluidCluster

#: DIP counts per VM type in the paper's 30-DIP testbed (Table 3).
TESTBED_COMPOSITION: tuple[tuple[VMType, int], ...] = (
    (DS1_V2, 16),
    (DS2_V2, 8),
    (DS3_V2, 4),
    (F8S_V2, 2),
)

#: Table 8: number of VIPs per pool size for the 60 K-DIP datacenter.
TABLE8_VIP_MIX: tuple[tuple[int, int], ...] = (
    (5, 2000),
    (10, 1000),
    (50, 200),
    (100, 100),
    (500, 20),
    (1000, 10),
)


@dataclass(frozen=True)
class TestbedLayout:
    """The DIP servers of the 30-DIP testbed, grouped by VM type."""

    dips: dict[DipId, DipServer]

    def by_type(self) -> dict[str, list[DipId]]:
        groups: dict[str, list[DipId]] = {}
        for dip_id, server in self.dips.items():
            groups.setdefault(server.vm_type.name, []).append(dip_id)
        return groups

    def by_core_count(self) -> dict[int, list[DipId]]:
        groups: dict[int, list[DipId]] = {}
        for dip_id, server in self.dips.items():
            groups.setdefault(server.vm_type.vcpus, []).append(dip_id)
        return groups

    @property
    def total_capacity_rps(self) -> float:
        return sum(s.capacity_rps for s in self.dips.values())


def build_testbed_dips(*, seed: int | None = 42) -> TestbedLayout:
    """The 30 DIPs of Table 3: DIP-1..16 (1 core), 17..24 (2), 25..28 (4), 29..30 (8)."""
    dips: dict[DipId, DipServer] = {}
    index = 1
    for vm_type, count in TESTBED_COMPOSITION:
        for _ in range(count):
            dip_id = f"DIP-{index}"
            dips[dip_id] = DipServer(
                dip_id=dip_id,
                vm_type=vm_type,
                seed=None if seed is None else seed + index,
            )
            index += 1
    return TestbedLayout(dips=dips)


def build_testbed_cluster(
    *,
    load_fraction: float = 0.70,
    policy_name: str = "wrr",
    seed: int | None = 42,
) -> FluidCluster:
    """The 30-DIP testbed as a fluid cluster at ``load_fraction`` of capacity."""
    if not 0 < load_fraction < 1.5:
        raise ConfigurationError("load_fraction must be in (0, 1.5)")
    layout = build_testbed_dips(seed=seed)
    total_rate = layout.total_capacity_rps * load_fraction
    return FluidCluster(
        dips=dict(layout.dips),
        total_rate_rps=total_rate,
        policy_name=policy_name,
    )


def build_three_dip_pool(
    *,
    capacity_ratio: float = 0.6,
    cores: int = 2,
    seed: int | None = 7,
) -> dict[DipId, DipServer]:
    """The §2.1 pool: DIP-HC ×2 at full capacity, DIP-LC at ``capacity_ratio``."""
    if not 0 < capacity_ratio <= 1:
        raise ConfigurationError("capacity_ratio must be in (0, 1]")
    vm = custom_vm_type(
        f"web-{cores}core",
        vcpus=cores,
        capacity_rps=400.0 * cores,
        idle_latency_ms=1000.0 * cores / (400.0 * cores),
    )
    dips = {
        "DIP-HC-1": DipServer("DIP-HC-1", vm, seed=None if seed is None else seed + 1),
        "DIP-HC-2": DipServer("DIP-HC-2", vm, seed=None if seed is None else seed + 2),
        "DIP-LC": DipServer("DIP-LC", vm, seed=None if seed is None else seed + 3),
    }
    if capacity_ratio < 1.0:
        dips["DIP-LC"].set_capacity_ratio(capacity_ratio)
    return dips


def build_graded_three_dip_pool(
    ratios: tuple[float, float, float] = (1.0, 0.8, 0.6),
    *,
    seed: int | None = 7,
) -> dict[DipId, DipServer]:
    """The Fig. 14 pool: three 1-core DIPs at capacities 1×, 0.8× and 0.6×."""
    vm = custom_vm_type("web-1core", vcpus=1, capacity_rps=400.0)
    dips: dict[DipId, DipServer] = {}
    for index, ratio in enumerate(ratios, start=1):
        if not 0 < ratio <= 1:
            raise ConfigurationError("ratios must be in (0, 1]")
        dip_id = f"DIP-{ratio:g}"
        server = DipServer(
            dip_id, vm, seed=None if seed is None else seed + index
        )
        if ratio < 1.0:
            server.set_capacity_ratio(ratio)
        dips[dip_id] = server
    return dips


def build_heterogeneous_pair(*, seed: int | None = 3) -> dict[DipId, DipServer]:
    """The §2.2 pool: one DS-series and one F-series DIP with equal cores."""
    return {
        "DIP-DS": DipServer("DIP-DS", DS2_V2, seed=None if seed is None else seed + 1),
        "DIP-F": DipServer("DIP-F", F2S_V2, seed=None if seed is None else seed + 2),
    }


def build_uniform_pool(
    num_dips: int,
    *,
    vm_type: VMType = F8S_V2,
    seed: int | None = 11,
    prefix: str = "DIP",
) -> dict[DipId, DipServer]:
    """``num_dips`` identical DIPs (used for the Fig. 8 / Table 6 ILP studies)."""
    if num_dips < 1:
        raise ConfigurationError("num_dips must be >= 1")
    return {
        f"{prefix}-{i + 1}": DipServer(
            f"{prefix}-{i + 1}", vm_type, seed=None if seed is None else seed + i
        )
        for i in range(num_dips)
    }


def build_mixed_core_pool(
    num_dips: int,
    *,
    core_choices: tuple[int, ...] = (1, 2, 4, 8),
    seed: int | None = 21,
) -> dict[DipId, DipServer]:
    """``num_dips`` DIPs with randomly mixed core counts (the fleet shape).

    Each DIP draws one of ``core_choices`` (400 rps per core, 2.5 ms idle
    latency), reproducing the heterogeneous pool
    :func:`build_shared_dip_fleet` windows its VIPs over — now addressable
    from declarative specs as ``pool.kind = "mixed_core"``.
    """
    if num_dips < 1:
        raise ConfigurationError("num_dips must be >= 1")
    rng = np.random.default_rng(seed)
    dips: dict[DipId, DipServer] = {}
    for index in range(num_dips):
        cores = int(core_choices[int(rng.integers(len(core_choices)))])
        vm = custom_vm_type(
            f"fleet-{cores}core",
            vcpus=cores,
            capacity_rps=400.0 * cores,
            idle_latency_ms=1000.0 / 400.0,
        )
        dip_id = f"DIP-{index + 1}"
        dips[dip_id] = DipServer(
            dip_id, vm, seed=None if seed is None else seed + index
        )
    return dips


#: Pool shapes :func:`build_pool` can produce (the spec-facing vocabulary).
POOL_KINDS: tuple[str, ...] = (
    "uniform",
    "testbed",
    "three_dip",
    "graded_three_dip",
    "heterogeneous_pair",
    "mixed_core",
)


def build_pool(
    kind: str = "uniform",
    *,
    num_dips: int = 8,
    vm_name: str = "api-pool",
    vcpus: int = 2,
    capacity_rps: float = 800.0,
    idle_latency_ms: float | None = None,
    capacity_ratio: float = 1.0,
    seed: int | None = 11,
) -> dict[DipId, DipServer]:
    """One entry point over every pool builder, keyed by ``kind``.

    This is the vocabulary the declarative experiment specs
    (:mod:`repro.api.spec`) speak: ``uniform`` builds ``num_dips`` identical
    DIPs of an ad-hoc VM type, the other kinds reproduce the paper's fixed
    pools (Table 3 testbed, the §2.1 / Fig. 14 three-DIP pools, the §2.2
    DS-vs-F pair) and ignore the sizing arguments that do not apply.
    """
    if kind == "uniform":
        vm = custom_vm_type(
            vm_name,
            vcpus=vcpus,
            capacity_rps=capacity_rps,
            idle_latency_ms=idle_latency_ms,
        )
        return build_uniform_pool(num_dips, vm_type=vm, seed=seed)
    if kind == "testbed":
        return dict(build_testbed_dips(seed=seed).dips)
    if kind == "three_dip":
        return build_three_dip_pool(
            capacity_ratio=capacity_ratio, cores=vcpus, seed=seed
        )
    if kind == "graded_three_dip":
        return build_graded_three_dip_pool(seed=seed)
    if kind == "heterogeneous_pair":
        return build_heterogeneous_pair(seed=seed)
    if kind == "mixed_core":
        return build_mixed_core_pool(num_dips, seed=seed)
    known = ", ".join(POOL_KINDS)
    raise ConfigurationError(f"unknown pool kind {kind!r}; known kinds: {known}")


def split_dip_ids(
    dip_ids: Sequence[DipId], shards: int
) -> tuple[tuple[DipId, ...], ...]:
    """Partition ``dip_ids`` into ``shards`` contiguous, balanced slices.

    Slice sizes differ by at most one and every DIP lands in exactly one
    slice, in pool order — the shard planner relies on this so the merged
    columnar metrics are independent of the shard count (per-DIP streams
    are keyed by the DIP's *global* index, not its shard).
    """
    ids = tuple(dip_ids)
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    shards = min(shards, len(ids))
    base, extra = divmod(len(ids), shards)
    slices: list[tuple[DipId, ...]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        slices.append(ids[start : start + size])
        start += size
    return tuple(slices)


def fleet_from_pool(
    dips: dict[DipId, DipServer],
    *,
    num_vips: int = 8,
    pool_size: int | None = None,
    load_fraction: float = 0.55,
    policy_name: str = "wrr",
    rate_mix: tuple[float, ...] | None = None,
) -> Fleet:
    """Share an existing DIP pool between ``num_vips`` overlapping VIPs.

    Each VIP fronts a contiguous window of ``pool_size`` DIPs starting at a
    stride of ``len(dips) / num_vips``, so neighbouring VIPs overlap and most
    DIPs serve more than one VIP — the shared-fleet contention shape of the
    Table 8 datacenter.  Per-VIP rates are sized so the *total* load on each
    DIP (summed over the VIPs sharing it) lands around ``load_fraction`` of
    its capacity; ``rate_mix`` multiplies the per-VIP rates for heterogeneous
    traffic mixes.
    """
    num_dips = len(dips)
    if num_vips < 1 or num_dips < 1:
        raise ConfigurationError("num_vips and the pool size must be >= 1")
    pool_size = pool_size or min(num_dips, max(2, (2 * num_dips) // num_vips))
    if pool_size > num_dips:
        raise ConfigurationError("pool_size cannot exceed the number of DIPs")
    if rate_mix is not None and len(rate_mix) != num_vips:
        raise ConfigurationError("rate_mix must have one entry per VIP")

    fleet = Fleet()
    for server in dips.values():
        fleet.add_dip(server)

    dip_ids = list(fleet.dips)
    stride = max(1, num_dips // num_vips)
    # How many VIPs share a typical DIP under this windowing.
    sharing = max(1.0, num_vips * pool_size / num_dips)
    for vip_index in range(num_vips):
        start = (vip_index * stride) % num_dips
        members = [dip_ids[(start + j) % num_dips] for j in range(pool_size)]
        pool_capacity = sum(fleet.dips[d].capacity_rps for d in members)
        rate = load_fraction * pool_capacity / sharing
        if rate_mix is not None:
            rate *= rate_mix[vip_index]
        # Start from capacity-proportional weights (a sane operator baseline);
        # an equal split would saturate the small DIPs of a heterogeneous
        # pool outright — the very pathology KnapsackLB is meant to fix.
        initial = {
            d: fleet.dips[d].capacity_rps / pool_capacity for d in members
        }
        fleet.create_vip(
            f"VIP-{vip_index + 1}",
            dip_ids=members,
            total_rate_rps=rate,
            policy_name=policy_name,
            weights=initial,
        )
    fleet.apply()
    return fleet


def build_shared_dip_fleet(
    *,
    num_vips: int = 8,
    num_dips: int = 32,
    pool_size: int | None = None,
    load_fraction: float = 0.55,
    policy_name: str = "wrr",
    rate_mix: tuple[float, ...] | None = None,
    core_choices: tuple[int, ...] = (1, 2, 4, 8),
    seed: int | None = 21,
) -> Fleet:
    """A fleet of ``num_dips`` heterogeneous DIPs shared by ``num_vips`` VIPs.

    Builds a random mixed-core pool (one of ``core_choices`` per DIP) and
    windows the VIPs over it with :func:`fleet_from_pool`.
    """
    dips = build_mixed_core_pool(num_dips, core_choices=core_choices, seed=seed)
    return fleet_from_pool(
        dips,
        num_vips=num_vips,
        pool_size=pool_size,
        load_fraction=load_fraction,
        policy_name=policy_name,
        rate_mix=rate_mix,
    )


def table8_vip_counts() -> dict[int, int]:
    """{DIPs-per-VIP: number of VIPs} of the Table 8 datacenter workload."""
    return {size: count for size, count in TABLE8_VIP_MIX}


def table8_total_dips() -> int:
    return sum(size * count for size, count in TABLE8_VIP_MIX)

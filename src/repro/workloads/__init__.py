"""Workload and scenario builders for the paper's experimental setups."""

from repro.workloads.generators import (
    POOL_KINDS,
    TABLE8_VIP_MIX,
    TESTBED_COMPOSITION,
    TestbedLayout,
    build_graded_three_dip_pool,
    build_heterogeneous_pair,
    build_mixed_core_pool,
    build_pool,
    build_shared_dip_fleet,
    build_testbed_cluster,
    build_testbed_dips,
    build_three_dip_pool,
    build_uniform_pool,
    fleet_from_pool,
    table8_total_dips,
    table8_vip_counts,
)

__all__ = [
    "POOL_KINDS",
    "TABLE8_VIP_MIX",
    "TESTBED_COMPOSITION",
    "TestbedLayout",
    "build_graded_three_dip_pool",
    "build_heterogeneous_pair",
    "build_mixed_core_pool",
    "build_pool",
    "build_shared_dip_fleet",
    "build_testbed_cluster",
    "build_testbed_dips",
    "build_three_dip_pool",
    "build_uniform_pool",
    "fleet_from_pool",
    "table8_total_dips",
    "table8_vip_counts",
]

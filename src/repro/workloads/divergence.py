"""Quantify where the analytic M/M/c twin stops being trustworthy.

The fluid substrate's Erlang-C math silently assumes Poisson arrivals
and exponential service.  This module makes that assumption explicit and
measurable: closed-form squared coefficients of variation (SCVs) for
every workload kind, the Allen-Cunneen M/G/c correction factor the fluid
substrate applies to its waiting times, and :func:`assess_divergence` —
the guard that stamps a ``model_divergence`` warning into
``RunResult.provenance`` instead of letting the analytic twin lie.

Two SCVs summarize a workload:

* ``Ca^2`` — the arrival process's asymptotic index of dispersion
  (variance-to-mean ratio of counts over long windows).  1 for Poisson;
  computed exactly for MMPP from the chain's deviation matrix; closed
  form for shot-noise flash crowds; empirical for traces.
* ``Cs^2`` — the service-time SCV.  1 for exponential; closed form for
  the other kinds (infinite for Pareto tail_index <= 2).

The Allen-Cunneen approximation corrects the M/M/c waiting time by
``(Ca^2 + Cs^2) / 2`` — exact at 1.0 for M/M/c, an *approximation*
elsewhere, which is exactly why the divergence guard exists: when either
SCV strays past ``workload.divergence_tolerance`` the provenance says so
and points at the request engine as the authority.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.workloads.arrivals import load_trace_timestamps

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.spec import ArrivalSpec, ServiceSpec, WorkloadSpec

#: Cap on the Allen-Cunneen correction factor.  Pareto tail_index <= 2
#: has infinite SCV; an infinite factor would turn ``0 * inf`` into NaN
#: in the vectorized wait computation, and the fluid model has nothing
#: meaningful to say at that point anyway — the guard has long fired.
MAX_CORRECTION = 100.0


def mmpp_index_of_dispersion(
    rate_rps: float,
    state_rates: tuple[float, ...],
    switch_rates: tuple[float, ...],
) -> float:
    """Exact asymptotic IDC of the cyclic MMPP, via the deviation matrix.

    For an MMPP with generator ``Q`` and intensity vector ``lam``, the
    asymptotic variance rate of the counting process is
    ``mean + 2 * pi diag(lam) D lam`` with ``D`` the deviation matrix
    ``(Pi - Q)^-1 - Pi``; the IDC is that over ``mean``.  The chain here
    is the same cyclic one the generator simulates, with intensities
    normalized so the stationary mean equals ``rate_rps``.
    """
    rates = np.asarray(state_rates, dtype=float)
    switches = np.asarray(switch_rates, dtype=float)
    n = rates.size
    sojourns = 1.0 / switches
    pi = sojourns / sojourns.sum()
    lam = rates * (rate_rps / float(pi @ rates))
    q = np.zeros((n, n))
    for i in range(n):
        q[i, i] = -switches[i]
        q[i, (i + 1) % n] = switches[i]
    ones_pi = np.outer(np.ones(n), pi)
    deviation = np.linalg.inv(ones_pi - q) - ones_pi
    mean = float(pi @ lam)
    variance_rate = mean + 2.0 * float(pi @ (lam * (deviation @ lam)))
    return variance_rate / mean


def arrival_scv(arrival: "ArrivalSpec", rate_rps: float) -> float:
    """``Ca^2``: the arrival kind's asymptotic index of dispersion."""
    kind = arrival.kind
    if kind == "poisson":
        return 1.0
    if kind == "mmpp":
        return mmpp_index_of_dispersion(
            rate_rps, arrival.state_rates, arrival.switch_rates
        )
    if kind == "flash_crowd":
        # Shot-noise Cox process: IDC(inf) = 1 + base * h^2 * nu * tau^2
        # / (1 + h * nu * tau) with base normalized to the mean rate.
        boost = (
            1.0
            + arrival.burst_height
            * arrival.burst_rate_per_s
            * arrival.burst_decay_s
        )
        base = rate_rps / boost
        return 1.0 + (
            base
            * arrival.burst_height**2
            * arrival.burst_rate_per_s
            * arrival.burst_decay_s**2
            / boost
        )
    if kind == "trace":
        gaps = np.diff(
            load_trace_timestamps(
                arrival.trace_path, time_column=arrival.trace_column
            )
        )
        mean = float(gaps.mean())
        if mean <= 0:
            return 1.0
        return float(gaps.var() / mean**2)
    raise ConfigurationError(f"unknown arrival kind {kind!r}")


def service_scv(service: "ServiceSpec") -> float:
    """``Cs^2``: the service kind's squared coefficient of variation."""
    kind = service.kind
    if kind == "exponential":
        return 1.0
    if kind == "lognormal":
        return float(service.scv)
    if kind == "pareto":
        alpha = service.tail_index
        if alpha <= 2.0:
            return math.inf
        return 1.0 / (alpha * (alpha - 2.0))
    if kind == "elephant":
        p = service.elephant_fraction
        m = service.elephant_factor
        scale = 1.0 / ((1.0 - p) + p * m)
        return 2.0 * scale**2 * ((1.0 - p) + p * m**2) - 1.0
    raise ConfigurationError(f"unknown service kind {kind!r}")


def scv_correction(workload: "WorkloadSpec", rate_rps: float) -> float:
    """The Allen-Cunneen M/G/c waiting-time factor ``(Ca^2 + Cs^2) / 2``.

    Exactly 1.0 for the Poisson/exponential baseline (so the fluid math
    is bit-identical to every pre-existing artifact); capped at
    :data:`MAX_CORRECTION` where the SCVs blow up.
    """
    if (
        workload.arrival.kind == "poisson"
        and workload.service.kind == "exponential"
    ):
        return 1.0
    ca2 = arrival_scv(workload.arrival, rate_rps)
    cs2 = service_scv(workload.service)
    return float(min((ca2 + cs2) / 2.0, MAX_CORRECTION))


def assess_divergence(workload: "WorkloadSpec", rate_rps: float) -> str | None:
    """The ``model_divergence`` provenance warning, or ``None`` if silent.

    The score is how far either SCV strays from the M/M/c value of 1;
    past ``workload.divergence_tolerance`` the analytic twin's numbers
    are an extrapolation (Allen-Cunneen), not a model, and the warning
    names the request engine as the authority.
    """
    if (
        workload.arrival.kind == "poisson"
        and workload.service.kind == "exponential"
    ):
        return None
    ca2 = arrival_scv(workload.arrival, rate_rps)
    cs2 = service_scv(workload.service)
    score = max(abs(ca2 - 1.0), abs(cs2 - 1.0))
    if score <= workload.divergence_tolerance:
        return None
    return (
        f"workload (arrival={workload.arrival.kind!r}, "
        f"service={workload.service.kind!r}) breaks the analytic twin's "
        f"M/M/c assumptions: Ca^2={ca2:.3g}, Cs^2={cs2:.3g}, divergence "
        f"score {score:.3g} > tolerance {workload.divergence_tolerance:g}. "
        "Fluid latencies use the Allen-Cunneen M/G/c correction; "
        "request-level results are authoritative for this workload."
    )

"""The Fig. 7 ILP: choosing DIP weights that minimise total latency (§3.3).

This module turns fitted weight-latency curves into an
:class:`~repro.solver.assignment.AssignmentProblem`, hands it to a solver
backend and wraps the outcome in a :class:`~repro.core.types.WeightAssignment`.
Weight candidates are drawn uniformly in ``[0, w_max]`` per DIP (not
``[0, 1]``), which is the first half of the paper's answer to the ILP's
scalability problem; the second half (multi-step refinement) lives in
:mod:`repro.core.multistep`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.config import IlpConfig
from repro.core.curve import WeightLatencyCurve
from repro.core.types import DipId, VipId, WeightAssignment
from repro.exceptions import (
    ConfigurationError,
    DipOverloadError,
    InfeasibleError,
    SolverTimeoutError,
)
from repro.solver import (
    AssignmentProblem,
    DipCandidates,
    SolveCache,
    SolveResult,
    SolveStatus,
    solve,
)


@dataclass(frozen=True)
class IlpOutcome:
    """A solved ILP step together with the raw solver result."""

    assignment: WeightAssignment
    solver_result: SolveResult
    problem: AssignmentProblem


def candidate_grid(
    curve: WeightLatencyCurve,
    *,
    count: int,
    lower: float = 0.0,
    upper: float | None = None,
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Uniform candidate weights in ``[lower, upper]`` and their latencies."""
    if count < 2:
        raise ConfigurationError("count must be >= 2")
    upper = curve.w_max if upper is None else upper
    upper = max(upper, lower)
    if upper == lower:
        weights = [lower] * count
    else:
        step = (upper - lower) / (count - 1)
        weights = [lower + i * step for i in range(count)]
    clipped = [min(max(w, 0.0), 1.0) for w in weights]
    latencies = [curve.predict(w) for w in clipped]
    return tuple(clipped), tuple(latencies)


def build_assignment_problem(
    curves: Mapping[DipId, WeightLatencyCurve],
    *,
    config: IlpConfig | None = None,
    total_weight: float = 1.0,
    total_weight_tolerance: float | None = None,
    windows: Mapping[DipId, tuple[float, float]] | None = None,
) -> AssignmentProblem:
    """Build the ILP input from fitted curves.

    ``windows`` optionally restricts the candidate range per DIP (used by
    the multi-step refinement); otherwise candidates span ``[0, w_max]``.
    """
    config = config or IlpConfig()
    if not curves:
        raise ConfigurationError("need at least one curve")

    # When the estimated safe capacity (sum of w_max) cannot cover the target
    # weight, scale every DIP's candidate range up proportionally: overload is
    # unavoidable, so it is spread according to capacity and the ILP still
    # returns an assignment (flagged as overloaded) instead of failing.
    sum_w_max = sum(curve.w_max for curve in curves.values())
    stretch = 1.0
    if sum_w_max > 0 and sum_w_max < total_weight:
        stretch = (total_weight / sum_w_max) * 1.05

    dips: list[DipCandidates] = []
    for dip, curve in curves.items():
        if windows and dip in windows:
            lower, upper = windows[dip]
        else:
            lower, upper = 0.0, min(1.0, curve.w_max * stretch)
        weights, latencies = candidate_grid(
            curve, count=config.weights_per_dip, lower=lower, upper=upper
        )
        if config.objective == "request_weighted":
            # Cost of a candidate is the latency contribution of the requests
            # it attracts (weight × latency), so the ILP minimises the mean
            # latency a request experiences.
            costs = tuple(w * lat for w, lat in zip(weights, latencies))
        else:
            costs = latencies
        dips.append(
            DipCandidates(
                dip=dip,
                weights=weights,
                latencies_ms=costs,
                w_max=curve.w_max if curve.w_max > 0 else None,
            )
        )

    if total_weight_tolerance is None:
        # Default tolerance: half of the coarsest candidate spacing, so a
        # solution always exists whenever the weight range can cover the
        # target, while staying close enough to renormalise afterwards.
        spacings = []
        for cand in dips:
            span = max(cand.weights) - min(cand.weights)
            if span > 0:
                spacings.append(span / (len(cand.weights) - 1))
        total_weight_tolerance = max(spacings) / 2.0 if spacings else 0.01
        total_weight_tolerance = max(total_weight_tolerance, 1e-3)

    return AssignmentProblem(
        dips=tuple(dips),
        total_weight=total_weight,
        total_weight_tolerance=total_weight_tolerance,
        theta=config.theta,
    )


def solve_assignment(
    vip: VipId,
    problem: AssignmentProblem,
    *,
    config: IlpConfig | None = None,
    normalize: bool = True,
    raise_on_overload: bool = False,
    cache: SolveCache | None = None,
) -> IlpOutcome:
    """Solve one ILP step and wrap the result.

    ``cache`` warm-starts the solver on problems seen before (unchanged
    curves between control rounds produce identical candidate grids).

    Raises
    ------
    InfeasibleError
        If no feasible weight assignment exists for the candidate grid.
    SolverTimeoutError
        If the solver hit its time limit without a solution.
    DipOverloadError
        If ``raise_on_overload`` and the solution pushes a DIP past w_max
        (the paper's "DO" outcome in Fig. 8).
    """
    config = config or IlpConfig()
    result = solve(
        problem,
        backend=config.backend,
        time_limit_s=config.time_limit_s,
        cache=cache,
    )

    if result.status is SolveStatus.TIMEOUT:
        raise SolverTimeoutError(
            f"ILP for VIP {vip} timed out after {result.solve_time_s:.1f}s",
            elapsed=result.solve_time_s,
        )
    if not result.status.has_solution:
        raise InfeasibleError(
            f"ILP for VIP {vip} is infeasible for the given candidate weights"
        )
    if raise_on_overload and result.is_overloaded:
        raise DipOverloadError(
            f"ILP for VIP {vip} overloads DIPs {result.overloaded_dips}",
            overloaded_dips=result.overloaded_dips,
        )

    assignment = WeightAssignment(
        vip=vip,
        weights=dict(result.weights),
        objective_ms=result.objective_ms,
        solve_time_s=result.solve_time_s,
    )
    if normalize and assignment.total_weight > 0:
        assignment = WeightAssignment(
            vip=vip,
            weights=assignment.normalized().weights,
            objective_ms=result.objective_ms,
            solve_time_s=result.solve_time_s,
        )
    return IlpOutcome(assignment=assignment, solver_result=result, problem=problem)


def compute_weights(
    vip: VipId,
    curves: Mapping[DipId, WeightLatencyCurve],
    *,
    config: IlpConfig | None = None,
    total_weight: float = 1.0,
    cache: SolveCache | None = None,
) -> IlpOutcome:
    """Single-step ILP: build the problem from curves and solve it."""
    config = config or IlpConfig()
    problem = build_assignment_problem(
        curves, config=config, total_weight=total_weight
    )
    return solve_assignment(vip, problem, config=config, cache=cache)

"""The KnapsackLB controller (§3.2, §5).

The controller is the only stateful component of KnapsackLB.  Per VIP it:

1. bootstraps idle latencies (``l0``) for newly added DIPs;
2. runs the measurement phase — Algorithm 1 per DIP, with the §4.6
   scheduler packing measurement weights into rounds — and fits the
   weight-latency curves;
3. computes LB weights with the (multi-step) ILP and programs them through
   the LB's weight interface;
4. in steady state, consumes KLM probes every control interval, detects
   traffic/capacity changes and failures (§4.5), rescales curves and
   recomputes weights when needed.

The controller talks to the deployment only through two narrow interfaces:
the weight-programming call of the LB (``set_weights``) and the latency
store filled by KLMs.  It never reads DIP counters — the agent-less design
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

from repro.backends.dip import DipServer
from repro.core.config import KnapsackLBConfig
from repro.core.curve import WeightLatencyCurve, fit_curve
from repro.core.dynamics import (
    DynamicsDetector,
    DynamicsEvent,
    DynamicsEventKind,
    Observation,
    rescale_all_curves,
    rescale_curve_for_observation,
)
from repro.core.exploration import ExplorationState
from repro.core.multistep import MultiStepOutcome, compute_weights_multistep
from repro.core.scheduler import MeasurementPriority, MeasurementScheduler
from repro.core.types import (
    DipId,
    MeasurementPoint,
    VipId,
    WeightAssignment,
    equal_weights,
    normalize_weights,
)
from repro.exceptions import ConfigurationError, CurveFitError
from repro.probing.klm import KLM
from repro.probing.latency_store import LatencyStore
from repro.solver import SolveCache


class Deployment(Protocol):
    """What the controller needs from the system under control.

    :class:`repro.sim.fluid.FluidCluster` satisfies this protocol; a wrapper
    around a request-level cluster or a real LB controller would too.
    """

    dips: dict[DipId, DipServer]

    def set_weights(self, weights: Mapping[DipId, float]) -> None: ...

    def advance(self, duration_s: float) -> object: ...

    def healthy_dip_ids(self) -> tuple[DipId, ...]: ...


@dataclass
class ExplorationReport:
    """Summary of one VIP's measurement phase (feeds Fig. 9 / §6.1)."""

    iterations: int
    rounds: int
    elapsed_s: float
    measurements_per_dip: dict[DipId, int]
    weight_history: dict[DipId, list[float]]
    w_max: dict[DipId, float]


@dataclass
class ExplorationRoundOutcome:
    """What one scheduler round of the measurement phase accomplished.

    Returned by :meth:`KnapsackLBController.exploration_round` so a fleet
    driver can interleave rounds from several VIPs: ``measured`` names the
    DIPs measured at their scheduled weights this round, ``done`` signals
    that the VIP's whole measurement phase has finished.
    """

    measured: dict[DipId, float] = field(default_factory=dict)
    programmed: dict[DipId, float] = field(default_factory=dict)
    done: bool = False


@dataclass
class ControlStepReport:
    """What happened during one steady-state control tick."""

    time: float
    events: list[DynamicsEvent] = field(default_factory=list)
    failed_dips: tuple[DipId, ...] = ()
    reprogrammed: bool = False
    assignment: WeightAssignment | None = None


class KnapsackLBController:
    """Per-VIP weight computation and reaction to dynamics."""

    def __init__(
        self,
        vip: VipId,
        deployment: Deployment,
        *,
        store: LatencyStore | None = None,
        config: KnapsackLBConfig | None = None,
        solve_cache: SolveCache | None = None,
    ) -> None:
        self.vip = vip
        self.deployment = deployment
        self.config = config or KnapsackLBConfig()
        self.store = store or LatencyStore()
        #: warm-start memo for ILP solves; the fleet control plane shares
        #: one cache across its VIPs so unchanged problems skip re-solving.
        self.solve_cache = solve_cache
        self.klm = KLM(
            vip=vip,
            dips=deployment.dips,
            store=self.store,
            config=self.config.probe,
        )
        self.scheduler = MeasurementScheduler(
            vip, config=self.config.scheduler, ilp_config=self.config.ilp
        )
        self.detector = DynamicsDetector(self.config.dynamics)

        self.l0_ms: dict[DipId, float] = {}
        self.explorations: dict[DipId, ExplorationState] = {}
        self._explore_overutilized: set[DipId] = set()
        self._explore_limit: int = self.config.exploration.max_iterations
        self._explore_history: dict[DipId, list[float]] = {}
        self._explore_proposals: dict[DipId, int] = {}
        self._explore_rounds: int = 0
        self.curves: dict[DipId, WeightLatencyCurve] = {}
        #: curves of failed DIPs, kept so a recovery can restore them.
        self.retired_curves: dict[DipId, WeightLatencyCurve] = {}
        self.failed_dips: set[DipId] = set()
        self.current_weights: dict[DipId, float] = {}
        self.last_assignment: WeightAssignment | None = None
        self.ilp_history: list[MultiStepOutcome] = []
        self.time: float = 0.0

    # ------------------------------------------------------------------ helpers

    def _healthy_dips(self) -> tuple[DipId, ...]:
        healthy = tuple(
            d for d in self.deployment.healthy_dip_ids() if d not in self.failed_dips
        )
        if not healthy:
            raise ConfigurationError(f"VIP {self.vip} has no healthy DIPs")
        return healthy

    def _program(self, weights: Mapping[DipId, float]) -> None:
        """Push weights to the LB (failed DIPs pinned to zero)."""
        full = {d: 0.0 for d in self.deployment.dips}
        full.update({d: float(w) for d, w in weights.items()})
        for dip in self.failed_dips:
            full[dip] = 0.0
        self.deployment.set_weights(full)
        self.current_weights = {d: w for d, w in full.items() if w > 0}

    def _advance(self, duration_s: float) -> None:
        self.deployment.advance(duration_s)
        self.time += duration_s

    def _probe(self, dips: Sequence[DipId]) -> dict[DipId, tuple[float | None, bool]]:
        """Probe ``dips`` once; returns {dip: (latency_ms or None, dropped)}."""
        results: dict[DipId, tuple[float | None, bool]] = {}
        for dip in dips:
            outcome = self.klm.probe_dip(dip, now=self.time)
            if outcome.failed:
                results[dip] = (None, False)
            else:
                results[dip] = (outcome.latency_ms, outcome.dropped)
        return results

    # ------------------------------------------------------- bootstrap (l0)

    def bootstrap_idle_latencies(self, *, batch_fraction: float = 0.2) -> dict[DipId, float]:
        """Measure every DIP's idle latency ``l0`` by zero-weighting it.

        DIPs are processed in batches: the batch gets weight 0 (so it stops
        receiving client traffic), the rest of the pool shares the full
        weight, the controller waits for old connections to drain and then
        probes the batch.
        """
        if not 0 < batch_fraction <= 1:
            raise ConfigurationError("batch_fraction must be in (0, 1]")
        dips = list(self._healthy_dips())
        batch_size = max(1, int(len(dips) * batch_fraction))
        settle_s = self.config.probe.interval_s

        for start in range(0, len(dips), batch_size):
            batch = dips[start : start + batch_size]
            others = [d for d in dips if d not in batch]
            weights: dict[DipId, float] = {d: 0.0 for d in batch}
            if others:
                weights.update(equal_weights(others))
            else:
                # A single-DIP pool cannot be zero-weighted; probe as-is.
                weights = equal_weights(batch)
            self._program(weights)
            self._advance(settle_s)
            for dip, (latency, _) in self._probe(batch).items():
                if latency is not None:
                    self.l0_ms[dip] = latency
        return dict(self.l0_ms)

    # ------------------------------------------------------- measurement phase

    def begin_exploration(
        self,
        *,
        max_iterations: int | None = None,
        overutilized: Sequence[DipId] = (),
    ) -> None:
        """Initialise the measurement phase (stepwise API).

        After this, :meth:`exploration_round` runs one scheduler round at a
        time — a fleet driver can interleave rounds from many VIPs — and
        :meth:`finish_exploration` fits any stragglers and builds the report.
        :meth:`run_exploration` drives the whole loop for single-VIP use.
        """
        dips = self._healthy_dips()
        if not self.l0_ms:
            self.bootstrap_idle_latencies()

        initial = 1.0 / len(dips)
        for dip in dips:
            l0 = self.l0_ms.get(dip)
            if l0 is None or l0 <= 0:
                raise ConfigurationError(f"missing idle latency for DIP {dip}")
            self.explorations[dip] = ExplorationState(
                dip=dip,
                l0_ms=l0,
                initial_weight=initial,
                config=self.config.exploration,
            )
        self._explore_overutilized = set(overutilized)
        self._explore_limit = max_iterations or self.config.exploration.max_iterations
        self._explore_history = {d: [] for d in dips}
        self._explore_proposals = {d: 0 for d in dips}
        self._explore_rounds = 0

    def _exploration_finished(self) -> bool:
        """Every DIP is either converged or out of proposal budget."""
        queued = {r.dip for r in self.scheduler.pending}
        for dip, state in self.explorations.items():
            if state.done:
                continue
            if dip in queued:
                return False
            if self._explore_proposals.get(dip, 0) < self._explore_limit:
                return False
        return True

    def exploration_round(
        self,
        *,
        advance: bool = True,
        exclude: Sequence[DipId] = (),
    ) -> ExplorationRoundOutcome:
        """Run one measurement round: propose, schedule, program, probe.

        ``exclude`` names DIPs a fleet driver has already measured in the
        current fleet-wide round (a shared DIP cannot serve two measurement
        weights at once); their requests stay queued.  With ``advance=False``
        the deployment clock is left untouched so the driver can advance a
        shared fleet exactly once per interleaved round.
        """
        pending = [d for d, e in self.explorations.items() if not e.done]
        if not pending:
            return ExplorationRoundOutcome(done=True)
        dips = self._healthy_dips()

        # Queue the next measurement weight for every DIP whose previous
        # request was consumed, while it still has proposal budget.
        queued = {r.dip for r in self.scheduler.pending}
        for dip in pending:
            if dip in queued:
                continue
            if self._explore_proposals.get(dip, 0) >= self._explore_limit:
                continue
            weight = self.explorations[dip].propose()
            priority = (
                MeasurementPriority.OVERUTILIZED
                if dip in self._explore_overutilized
                else MeasurementPriority.NORMAL
            )
            self.scheduler.submit(dip, weight, priority=priority)
            self._explore_history.setdefault(dip, []).append(weight)
            self._explore_proposals[dip] = self._explore_proposals.get(dip, 0) + 1

        curves_done = {d: c for d, c in self.curves.items() if d not in pending}
        plan = self.scheduler.plan_round(list(dips), curves_done, exclude=exclude)
        if not plan.measured:
            return ExplorationRoundOutcome(done=self._exploration_finished())

        self._program(plan.weights())
        if advance:
            self._advance(self.config.scheduler.round_duration_s)
        self._explore_rounds += 1

        # KLM probes every DIP each interval (§5); use every sample.  Probes
        # for the DIPs scheduled this round drive Algorithm 1; probes for
        # filler DIPs still under exploration are recorded as additional
        # (weight, latency) points, which spreads the regression inputs
        # across the weight range for free.
        round_weights = plan.weights()
        probe_targets = [d for d, w in round_weights.items() if w > 0]
        probe_results = self._probe(probe_targets)
        for dip, (latency, dropped) in probe_results.items():
            if dip not in self.explorations or self.explorations[dip].done:
                continue
            if dip in plan.measured:
                if latency is None:
                    # Probe failure during exploration: treat as a drop at a
                    # very high latency so Algorithm 1 backtracks.
                    latency = (
                        self.l0_ms[dip]
                        * self.config.exploration.drop_latency_multiplier
                    )
                    dropped = True
                self.explorations[dip].observe(
                    plan.measured[dip], latency, dropped=dropped
                )
            elif latency is not None:
                self.explorations[dip].points.append(
                    MeasurementPoint(
                        weight=round_weights[dip],
                        latency_ms=latency,
                        dropped=dropped,
                    )
                )

        # Fit curves for DIPs that just finished.
        for dip in plan.measured:
            state = self.explorations.get(dip)
            if state is not None and state.done and dip not in self.curves:
                self._fit_dip_curve(dip)

        return ExplorationRoundOutcome(
            measured=dict(plan.measured),
            programmed=round_weights,
            done=self._exploration_finished(),
        )

    def finish_exploration(self) -> ExplorationReport:
        """Fit stragglers and summarise the measurement phase."""
        for dip in self.explorations:
            if dip not in self.curves:
                try:
                    self._fit_dip_curve(dip)
                except CurveFitError:
                    continue
        return ExplorationReport(
            iterations=max(self._explore_proposals.values(), default=0),
            rounds=self._explore_rounds,
            elapsed_s=self._explore_rounds * self.config.scheduler.round_duration_s,
            measurements_per_dip={
                d: e.measurements for d, e in self.explorations.items()
            },
            weight_history={
                d: list(w) for d, w in self._explore_history.items()
            },
            w_max={d: e.effective_w_max() for d, e in self.explorations.items()},
        )

    def run_exploration(
        self,
        *,
        max_iterations: int | None = None,
        overutilized: Sequence[DipId] = (),
    ) -> ExplorationReport:
        """Run the measurement phase until every DIP's exploration finishes.

        Returns per-DIP weight histories (Fig. 9) and the iteration/round
        counts reported in §6.1.
        """
        self.begin_exploration(
            max_iterations=max_iterations, overutilized=overutilized
        )
        while not self.exploration_round().done:
            pass
        return self.finish_exploration()

    def _fit_dip_curve(self, dip: DipId) -> WeightLatencyCurve:
        state = self.explorations[dip]
        try:
            curve = fit_curve(
                state.points,
                config=self.config.curve,
                l0_ms=self.l0_ms.get(dip),
                w_max=state.effective_w_max(),
            )
        except CurveFitError:
            # Very small DIPs may have few non-dropped points (every probe
            # past their tiny w_max drops).  Fall back to fitting on all
            # points, which still captures the latency rise near capacity.
            relaxed = [
                MeasurementPoint(weight=p.weight, latency_ms=p.latency_ms)
                for p in state.points
            ]
            curve = fit_curve(
                relaxed,
                config=self.config.curve,
                l0_ms=self.l0_ms.get(dip),
                w_max=state.effective_w_max(),
            )
        self.curves[dip] = curve
        return curve

    # ------------------------------------------------------------ weight computation

    def compute_weights(self, *, force_multistep: bool | None = None) -> MultiStepOutcome:
        """Run the (multi-step) ILP over the healthy DIPs' curves."""
        healthy = self._healthy_dips()
        curves = {d: c for d, c in self.curves.items() if d in healthy}
        if not curves:
            raise ConfigurationError(
                f"VIP {self.vip}: no fitted curves; run the measurement phase first"
            )
        outcome = compute_weights_multistep(
            self.vip,
            curves,
            config=self.config.ilp,
            force_multistep=force_multistep,
            cache=self.solve_cache,
        )
        self.ilp_history.append(outcome)
        self.last_assignment = outcome.assignment
        return outcome

    def program_assignment(self, assignment: WeightAssignment | None = None) -> None:
        """Program the latest (or a given) assignment on the LB dataplane."""
        assignment = assignment or self.last_assignment
        if assignment is None:
            raise ConfigurationError("no assignment to program")
        self._program(normalize_weights(dict(assignment.weights)))

    def converge(self, *, settle_steps: int = 3) -> WeightAssignment:
        """Bootstrap + explore + solve + program, in one call (quickstart API).

        ``settle_steps`` extra control ticks are run after the first
        programming so the §4.5 curve-rescaling feedback can absorb any
        extrapolation error of the freshly fitted curves before the
        controller is handed over to its steady-state loop.
        """
        if not self.l0_ms:
            self.bootstrap_idle_latencies()
        if not self.curves:
            self.run_exploration()
        outcome = self.compute_weights()
        self.program_assignment(outcome.assignment)
        for _ in range(max(0, settle_steps)):
            report = self.control_step()
            if not report.events:
                break
        assert self.last_assignment is not None
        return self.last_assignment

    # ------------------------------------------------------------ steady state

    def control_step(self, *, advance: bool = True) -> ControlStepReport:
        """One steady-state tick: probe, detect dynamics, react.

        Mirrors the 5-second control loop of §5: KLM probes all DIPs, the
        controller checks for failures and for latency drift against the
        fitted curves, rescales curves and recomputes/programs weights when
        something changed.
        """
        if advance:
            self._advance(self.config.control_interval_s)
        report = ControlStepReport(time=self.time)

        # Probe every DIP the controller still believes is alive; a DIP that
        # just went down is only discovered *by* probing it.
        healthy = [d for d in self.deployment.dips if d not in self.failed_dips]
        probe_results = self._probe(healthy)

        # Failure detection (§4.5): repeated probe failures.
        newly_failed = [
            dip
            for dip in healthy
            if self.klm.consecutive_failures.get(dip, 0)
            >= self.config.dynamics.failure_probe_threshold
        ]
        # A probe that failed this very tick also counts when the DIP is
        # actually down (the fluid deployment reports failure immediately).
        for dip, (latency, _) in probe_results.items():
            if latency is None and self.deployment.dips[dip].failed:
                if dip not in newly_failed:
                    newly_failed.append(dip)
        if newly_failed:
            for dip in newly_failed:
                self.failed_dips.add(dip)
                curve = self.curves.pop(dip, None)
                if curve is not None:
                    self.retired_curves[dip] = curve
            report.failed_dips = tuple(newly_failed)
            report.events.append(
                DynamicsEvent(
                    kind=DynamicsEventKind.DIP_FAILURE,
                    dips=tuple(newly_failed),
                    magnitude=1.0,
                    time=self.time,
                )
            )

        # Latency drift detection against the curves.
        observations = [
            Observation(
                dip=dip,
                weight=self.current_weights.get(dip, 0.0),
                observed_latency_ms=latency,
            )
            for dip, (latency, _) in probe_results.items()
            if latency is not None
            and dip in self.curves
            and self.current_weights.get(dip, 0.0) > 0
        ]
        events = self.detector.detect(observations, self.curves, now=self.time)
        report.events.extend(events)

        for event in events:
            if event.kind in (
                DynamicsEventKind.TRAFFIC_INCREASE,
                DynamicsEventKind.TRAFFIC_DECREASE,
            ):
                self.curves = rescale_all_curves(self.curves, observations)
            elif event.kind is DynamicsEventKind.CAPACITY_CHANGE:
                for dip in event.dips:
                    obs = next(o for o in observations if o.dip == dip)
                    self.curves[dip] = rescale_curve_for_observation(
                        self.curves[dip], obs
                    )

        if report.events:
            outcome = self.compute_weights()
            self.program_assignment(outcome.assignment)
            report.reprogrammed = True
            report.assignment = outcome.assignment

        return report

    def recover_dip(self, dip: DipId) -> None:
        """Bring a previously failed DIP back (exploration must be redone)."""
        self.failed_dips.discard(dip)
        self.klm.consecutive_failures[dip] = 0
        self.explorations.pop(dip, None)

    def restore_dip(self, dip: DipId) -> bool:
        """Fold a recovered DIP back into the weight computation cheaply.

        The strict §4.5 path re-explores a recovered DIP from scratch;
        mid-run (a timeline ``dip_recover`` event) that would stall every
        other tenant, so instead the curve retired at failure time is
        restored and the ILP immediately re-includes the DIP — the ongoing
        control ticks' curve-rescaling feedback then corrects the curve if
        the DIP came back with different capacity.  Returns whether a
        retired curve existed to restore (callers reprogram only then).
        """
        self.recover_dip(dip)
        curve = self.retired_curves.pop(dip, None)
        if curve is None:
            return False
        self.curves[dip] = curve
        return True

    # ------------------------------------------------------------ reporting

    def status(self) -> dict[DipId, dict[str, float | bool]]:
        """A per-DIP summary of the controller's view (for observability)."""
        summary: dict[DipId, dict[str, float | bool]] = {}
        for dip in self.deployment.dips:
            state = self.explorations.get(dip)
            summary[dip] = {
                "weight": self.current_weights.get(dip, 0.0),
                "l0_ms": self.l0_ms.get(dip, float("nan")),
                "w_max": state.effective_w_max() if state else 0.0,
                "exploration_done": bool(state.done) if state else False,
                "has_curve": dip in self.curves,
                "failed": dip in self.failed_dips,
            }
        return summary

"""Detecting and reacting to service dynamics (§4.5).

Three kinds of drift can make a learned weight-latency curve stale:

* **Traffic change** — the aggregate load at the LB changed, so the same
  weight now maps to a different per-DIP request rate; detected when most
  DIPs see a latency shift in the same direction while weights are
  unchanged.  Reaction: rescale every DIP's curve along the weight axis.
* **Capacity change** — one DIP's capacity changed (noisy neighbours,
  vCPU reassignment); detected when that DIP's observed latency deviates
  from the curve's estimate by more than ±20 %.  Reaction: rescale that
  DIP's curve.
* **Failure** — KLM probes to a DIP repeatedly fail.  Reaction: drop the
  DIP and re-run the ILP without it.

This module also implements the refresh-budget rule: at most 5 % of total
capacity may be under curve refresh at any time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.config import DynamicsConfig
from repro.core.curve import WeightLatencyCurve
from repro.core.types import DipId
from repro.exceptions import ConfigurationError


class DynamicsEventKind(enum.Enum):
    TRAFFIC_INCREASE = "traffic_increase"
    TRAFFIC_DECREASE = "traffic_decrease"
    CAPACITY_CHANGE = "capacity_change"
    DIP_FAILURE = "dip_failure"


@dataclass(frozen=True)
class DynamicsEvent:
    """One detected change, with enough context to react."""

    kind: DynamicsEventKind
    dips: tuple[DipId, ...]
    #: mean relative latency deviation of the affected DIPs (signed).
    magnitude: float
    time: float = 0.0


@dataclass(frozen=True)
class Observation:
    """One steady-state latency observation for a DIP at its current weight."""

    dip: DipId
    weight: float
    observed_latency_ms: float


def relative_deviation(observed: float, estimated: float) -> float:
    """Signed relative deviation of an observation from the curve estimate."""
    if estimated <= 0:
        raise ConfigurationError("estimated latency must be positive")
    return (observed - estimated) / estimated


class DynamicsDetector:
    """Classifies latency deviations into traffic/capacity change events."""

    def __init__(self, config: DynamicsConfig | None = None) -> None:
        self.config = config or DynamicsConfig()

    def detect(
        self,
        observations: Sequence[Observation],
        curves: Mapping[DipId, WeightLatencyCurve],
        *,
        now: float = 0.0,
    ) -> list[DynamicsEvent]:
        """Compare observations against curve estimates and classify drift.

        A traffic change is reported when at least ``traffic_change_quorum``
        of the observed DIPs deviate beyond the threshold *in the same
        direction*; otherwise each deviating DIP is reported as a capacity
        change.
        """
        deviations: dict[DipId, float] = {}
        for obs in observations:
            curve = curves.get(obs.dip)
            if curve is None:
                continue
            estimate = curve.predict(obs.weight)
            deviations[obs.dip] = relative_deviation(obs.observed_latency_ms, estimate)

        if not deviations:
            return []

        threshold = self.config.capacity_change_threshold
        increased = [d for d, dev in deviations.items() if dev > threshold]
        decreased = [d for d, dev in deviations.items() if dev < -threshold]
        total = len(deviations)

        events: list[DynamicsEvent] = []
        quorum = self.config.traffic_change_quorum

        if total > 0 and len(increased) / total >= quorum:
            magnitude = sum(deviations[d] for d in increased) / len(increased)
            events.append(
                DynamicsEvent(
                    kind=DynamicsEventKind.TRAFFIC_INCREASE,
                    dips=tuple(sorted(increased)),
                    magnitude=magnitude,
                    time=now,
                )
            )
            return events
        if total > 0 and len(decreased) / total >= quorum:
            magnitude = sum(deviations[d] for d in decreased) / len(decreased)
            events.append(
                DynamicsEvent(
                    kind=DynamicsEventKind.TRAFFIC_DECREASE,
                    dips=tuple(sorted(decreased)),
                    magnitude=magnitude,
                    time=now,
                )
            )
            return events

        for dip in sorted(increased + decreased):
            events.append(
                DynamicsEvent(
                    kind=DynamicsEventKind.CAPACITY_CHANGE,
                    dips=(dip,),
                    magnitude=deviations[dip],
                    time=now,
                )
            )
        return events


def rescale_curve_for_observation(
    curve: WeightLatencyCurve, observation: Observation
) -> WeightLatencyCurve:
    """Apply the §4.5 curve shift so it matches the observed latency."""
    return curve.rescale_for_latency_shift(
        observation.weight, observation.observed_latency_ms
    )


def rescale_all_curves(
    curves: Mapping[DipId, WeightLatencyCurve],
    observations: Sequence[Observation],
) -> dict[DipId, WeightLatencyCurve]:
    """Shift every observed DIP's curve (used on traffic-change events)."""
    by_dip = {obs.dip: obs for obs in observations}
    updated: dict[DipId, WeightLatencyCurve] = dict(curves)
    for dip, obs in by_dip.items():
        if dip in updated:
            updated[dip] = rescale_curve_for_observation(updated[dip], obs)
    return updated


@dataclass
class RefreshBudget:
    """Tracks how much capacity is currently under curve refresh (§4.5).

    At most ``max_refresh_fraction`` of the VIP's total capacity may be in
    refresh at any time; the budget is expressed in capacity units
    (requests/second) so large DIPs consume more of it.
    """

    total_capacity: float
    max_refresh_fraction: float = 0.05
    in_refresh: dict[DipId, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_capacity <= 0:
            raise ConfigurationError("total_capacity must be positive")
        if not 0 < self.max_refresh_fraction <= 1:
            raise ConfigurationError("max_refresh_fraction must be in (0, 1]")

    @property
    def budget(self) -> float:
        return self.total_capacity * self.max_refresh_fraction

    @property
    def used(self) -> float:
        return sum(self.in_refresh.values())

    def can_start(self, dip: DipId, capacity: float) -> bool:
        if dip in self.in_refresh:
            return True
        return self.used + capacity <= self.budget + 1e-9

    def start(self, dip: DipId, capacity: float) -> None:
        if not self.can_start(dip, capacity):
            raise ConfigurationError(
                f"refresh budget exceeded: {self.used + capacity:.1f} > {self.budget:.1f}"
            )
        self.in_refresh[dip] = capacity

    def finish(self, dip: DipId) -> None:
        self.in_refresh.pop(dip, None)

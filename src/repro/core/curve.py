"""Weight-latency curves (§4.2).

KnapsackLB learns, per DIP, a mapping from LB weight to the mean response
latency the DIP would exhibit at that weight.  The mapping is fitted with
polynomial regression (degree 2 in the paper) over a handful of measured
points — only points without packet drops are used — and corrected to be
monotonically non-decreasing, since assigning more traffic can never make a
DIP faster.

The curve also supports the §4.5 adaptations: *rescaling* the weight axis
when aggregate traffic changes (the same latency is now reached at a
different weight) and *inverting* the curve (weight for a target latency),
which is what the rescaling computation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
from scipy.optimize import nnls

from repro.core.config import CurveConfig
from repro.core.types import MeasurementPoint
from repro.exceptions import ConfigurationError, CurveFitError


@dataclass(frozen=True)
class WeightLatencyCurve:
    """A fitted weight → latency curve for one DIP.

    ``coefficients`` are in :func:`numpy.polyval` order (highest degree
    first) and describe the fit in the *unscaled* weight domain;
    ``weight_scale`` multiplies query weights before evaluation, which is
    how traffic-change rescaling (§4.5) is applied without re-fitting.
    """

    coefficients: tuple[float, ...]
    l0_ms: float
    w_max: float
    weight_scale: float = 1.0
    fit_points: tuple[MeasurementPoint, ...] = field(default=())
    enforce_monotone: bool = True

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise ConfigurationError("coefficients must not be empty")
        if self.l0_ms < 0:
            raise ConfigurationError("l0_ms must be >= 0")
        if self.w_max < 0:
            raise ConfigurationError("w_max must be >= 0")
        if self.weight_scale <= 0:
            raise ConfigurationError("weight_scale must be positive")

    # -- evaluation -------------------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def _raw(self, weight: float) -> float:
        """The polynomial value at the (scaled) weight, before corrections."""
        scaled = weight / self.weight_scale
        return float(np.polyval(self.coefficients, scaled))

    def _monotone_envelope(self, weight: float) -> float:
        """max of the polynomial over [0, weight] (monotone correction)."""
        value = self._raw(weight)
        if not self.enforce_monotone:
            return value
        candidates = [self._raw(0.0), value]
        if self.degree == 2:
            a, b, _ = self.coefficients
            if a < 0 and abs(a) > 1e-15:
                vertex = -b / (2 * a) * self.weight_scale
                if 0.0 < vertex < weight:
                    candidates.append(self._raw(vertex))
        elif self.degree > 2:
            grid = np.linspace(0.0, weight, 64)
            candidates.extend(float(v) for v in np.polyval(
                self.coefficients, grid / self.weight_scale
            ))
        return max(candidates)

    def predict(self, weight: float) -> float:
        """Estimated mean latency (ms) at ``weight``.

        The prediction is never below the idle latency ``l0``.
        """
        if weight < 0:
            raise ConfigurationError("weight must be >= 0")
        return max(self.l0_ms, self._monotone_envelope(weight))

    def predict_many(self, weights: Iterable[float]) -> list[float]:
        return [self.predict(w) for w in weights]

    # -- inversion and rescaling (§4.5) -------------------------------------------

    def weight_for_latency(
        self, latency_ms: float, *, upper: float | None = None, tol: float = 1e-6
    ) -> float:
        """The smallest weight whose predicted latency reaches ``latency_ms``.

        Solved by bisection over the monotone prediction; returns ``upper``
        when even the largest weight stays below the target latency.
        """
        upper = upper if upper is not None else max(self.w_max, 1e-3) * 2.0
        if latency_ms <= self.predict(0.0):
            return 0.0
        if self.predict(upper) < latency_ms:
            return upper
        lo, hi = 0.0, upper
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if self.predict(mid) >= latency_ms:
                hi = mid
            else:
                lo = mid
            if hi - lo < tol:
                break
        return hi

    def rescaled(self, delta: float) -> "WeightLatencyCurve":
        """Shift the curve along the weight axis by multiplying weights by δ.

        §4.5: if the latency previously seen at weight ``w1`` is now seen at
        weight ``w2``, all weights are multiplied by ``δ = w1 / w2``; the
        curve must be evaluated accordingly (a query at weight ``w`` now
        corresponds to the old ``w / δ``).
        """
        if delta <= 0:
            raise ConfigurationError("delta must be positive")
        return WeightLatencyCurve(
            coefficients=self.coefficients,
            l0_ms=self.l0_ms,
            w_max=self.w_max * delta,
            weight_scale=self.weight_scale * delta,
            fit_points=self.fit_points,
            enforce_monotone=self.enforce_monotone,
        )

    def rescale_for_latency_shift(
        self, weight: float, observed_latency_ms: float
    ) -> "WeightLatencyCurve":
        """Rescale so the curve predicts ``observed_latency_ms`` at ``weight``.

        This is the full §4.5 mechanism: find ``w2`` (the weight at which the
        current curve predicts the observed latency), compute
        ``δ = w1 / w2`` and apply :meth:`rescaled`.
        """
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        w2 = self.weight_for_latency(observed_latency_ms)
        if w2 <= 0:
            # The observed latency is at/below idle latency even at weight 0:
            # treat as "plenty of headroom" and stretch the curve outward.
            w2 = min(self.w_max if self.w_max > 0 else weight, weight) / 2.0
            if w2 <= 0:
                return self
        delta = weight / w2
        return self.rescaled(delta)


def fit_curve(
    points: Sequence[MeasurementPoint],
    *,
    config: CurveConfig | None = None,
    l0_ms: float | None = None,
    w_max: float | None = None,
) -> WeightLatencyCurve:
    """Fit a weight-latency curve from measurement points.

    Only points without packet drops are used (as in §6.1).  ``l0_ms``
    defaults to the latency of the smallest-weight point; ``w_max`` defaults
    to the largest non-dropped weight.
    """
    config = config or CurveConfig()
    usable = [p for p in points if not p.dropped]
    if len(usable) < config.min_points:
        raise CurveFitError(
            f"need at least {config.min_points} non-dropped points, got {len(usable)}"
        )
    usable.sort(key=lambda p: p.weight)

    weights = np.array([p.weight for p in usable], dtype=float)
    latencies = np.array([p.latency_ms for p in usable], dtype=float)

    degree = min(config.degree, len(usable) - 1)
    if config.nonnegative_coefficients:
        # Constrained least squares with non-negative coefficients: latency
        # can only grow with weight, which keeps the fit sane in weight
        # regions the exploration did not sample densely (Algorithm 1 tends
        # to cluster points near capacity).
        design = np.vander(weights, degree + 1, increasing=True)
        solution, _ = nnls(design, latencies)
        coefficients = solution[::-1]
    else:
        coefficients = np.polyfit(weights, latencies, degree)

    inferred_l0 = float(latencies[0]) if l0_ms is None else float(l0_ms)
    inferred_wmax = float(weights[-1]) if w_max is None else float(w_max)

    return WeightLatencyCurve(
        coefficients=tuple(float(c) for c in coefficients),
        l0_ms=max(0.0, inferred_l0),
        w_max=max(0.0, inferred_wmax),
        fit_points=tuple(usable),
        enforce_monotone=config.enforce_monotone,
    )


def fit_error(curve: WeightLatencyCurve, points: Sequence[MeasurementPoint]) -> float:
    """Root-mean-square error of the curve against (non-dropped) points."""
    usable = [p for p in points if not p.dropped]
    if not usable:
        return 0.0
    errors = [curve.predict(p.weight) - p.latency_ms for p in usable]
    return float(np.sqrt(np.mean(np.square(errors))))

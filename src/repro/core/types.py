"""Core value types shared across the KnapsackLB reproduction.

The paper's terminology is kept throughout the code base:

* **DIP** — a backend server instance ("direct IP"); identified by a string id.
* **VIP** — a virtual IP exposed by the load balancer; one VIP fronts a pool
  of DIPs and is load balanced independently of other VIPs.
* **weight** — the fraction of a VIP's traffic directed at a DIP, in [0, 1];
  weights across the DIPs of a VIP sum to 1.
* **weight-latency curve** — for a DIP, the mapping from weight to the mean
  request-response latency observed when that weight is applied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ConfigurationError

DipId = str
VipId = str

#: Tolerance used when checking that weights sum to one.
WEIGHT_SUM_TOLERANCE = 1e-6


def validate_weight(weight: float, *, name: str = "weight") -> float:
    """Validate that ``weight`` lies in [0, 1] and return it as a float."""
    value = float(weight)
    if math.isnan(value) or value < 0.0 or value > 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {weight!r}")
    return value


@dataclass(frozen=True)
class LatencySample:
    """A single averaged latency measurement reported by a KLM.

    Mirrors the ``<DIP, latency, time>`` tuples stored in the latency store
    (§5).  ``latency_ms`` is the average over the KLM's probe batch;
    ``dropped`` records whether probe requests were dropped/failed, which the
    exploration algorithm uses as a capacity signal (Algorithm 1).
    """

    dip: DipId
    latency_ms: float
    timestamp: float
    weight: float = 0.0
    dropped: bool = False

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ConfigurationError(
                f"latency_ms must be non-negative, got {self.latency_ms}"
            )
        validate_weight(self.weight)


@dataclass(frozen=True)
class MeasurementPoint:
    """A (weight, latency) observation used to fit a weight-latency curve."""

    weight: float
    latency_ms: float
    dropped: bool = False

    def __post_init__(self) -> None:
        validate_weight(self.weight)
        if self.latency_ms < 0:
            raise ConfigurationError(
                f"latency_ms must be non-negative, got {self.latency_ms}"
            )


@dataclass(frozen=True)
class WeightAssignment:
    """The weights chosen for every DIP of one VIP.

    Produced by the ILP (§3.3) and programmed into the LB dataplane.
    """

    vip: VipId
    weights: Mapping[DipId, float]
    objective_ms: float | None = None
    solve_time_s: float | None = None

    def __post_init__(self) -> None:
        for dip, weight in self.weights.items():
            validate_weight(weight, name=f"weight for {dip}")

    @property
    def total_weight(self) -> float:
        return float(sum(self.weights.values()))

    def is_normalized(self, *, tolerance: float = 1e-3) -> bool:
        """Whether the weights sum to 1 within ``tolerance``."""
        return abs(self.total_weight - 1.0) <= tolerance

    def weight_for(self, dip: DipId) -> float:
        return float(self.weights.get(dip, 0.0))

    def normalized(self) -> "WeightAssignment":
        """Return a copy whose weights are rescaled to sum to exactly 1."""
        total = self.total_weight
        if total <= 0:
            raise ConfigurationError("cannot normalize an all-zero assignment")
        scaled = {dip: weight / total for dip, weight in self.weights.items()}
        return WeightAssignment(
            vip=self.vip,
            weights=scaled,
            objective_ms=self.objective_ms,
            solve_time_s=self.solve_time_s,
        )

    def imbalance(self) -> float:
        """``ymax - ymin`` across DIPs, the quantity bounded by θ (Fig. 7c)."""
        if not self.weights:
            return 0.0
        values = list(self.weights.values())
        return max(values) - min(values)


@dataclass
class DipRecord:
    """Mutable bookkeeping the controller keeps per DIP."""

    dip: DipId
    vip: VipId
    #: latest weight programmed on the dataplane for this DIP.
    current_weight: float = 0.0
    #: maximum weight observed without packet drop (w_max in Algorithm 1).
    w_max: float = 0.0
    #: whether exploration finished and the DIP is ready for the ILP.
    exploration_done: bool = False
    #: whether the DIP is currently considered failed (§4.5).
    failed: bool = False
    #: measurement points collected so far.
    points: list[MeasurementPoint] = field(default_factory=list)

    def usable_points(self) -> list[MeasurementPoint]:
        """Points without packet drop — the only ones used for regression."""
        return [p for p in self.points if not p.dropped]


def normalize_weights(weights: Mapping[DipId, float]) -> dict[DipId, float]:
    """Rescale ``weights`` so they sum to 1 (raises if the sum is zero)."""
    total = float(sum(weights.values()))
    if total <= 0:
        raise ConfigurationError("cannot normalize weights that sum to zero")
    return {dip: float(w) / total for dip, w in weights.items()}


def equal_weights(dips: Iterable[DipId]) -> dict[DipId, float]:
    """An equal split across ``dips`` (the starting point of exploration)."""
    dip_list = list(dips)
    if not dip_list:
        return {}
    share = 1.0 / len(dip_list)
    return {dip: share for dip in dip_list}

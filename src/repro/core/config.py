"""Configuration objects for KnapsackLB.

Default values follow the paper's prototype (§4, §5):

* probe every DIP every 5 seconds, 100 requests per probe batch;
* exploration stops when the weight step falls below 5 % of the current
  weight (``D`` on line 1 of Algorithm 1);
* latency 5× the idle latency is treated as a packet-drop signal;
* α = 1 controls the pace of the multiplicative increase;
* polynomial regression of degree 2;
* the ILP is fed 10 candidate weights per DIP per step and the multi-step
  refinement uses a ±10 %·w_max window;
* capacity-change detection threshold is ±20 % of the estimated latency;
* at most 5 % of total capacity may be under curve refresh at a time.
"""

from __future__ import annotations

import dataclasses
import types
import typing
from dataclasses import dataclass, field
from typing import Any, Mapping, TypeVar

from repro.exceptions import ConfigurationError

_D = TypeVar("_D")


# ---------------------------------------------------------------------------
# generic frozen-dataclass (de)serialization
#
# Shared by the config objects below and by the declarative experiment specs
# in :mod:`repro.api.spec`: one recursive walk in each direction, with
# ``from`` errors that name the offending field by its dotted path
# (``controller.config.ilp.weights_per_dip``) instead of a bare TypeError.
# ---------------------------------------------------------------------------


def dataclass_to_dict(obj: Any) -> Any:
    """Recursively convert a dataclass tree to plain JSON/TOML-able types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: dataclass_to_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): dataclass_to_dict(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [dataclass_to_dict(v) for v in obj]
    return obj


def _unwrap_optional(annotation: Any) -> tuple[Any, bool]:
    """Return (inner type, optional?) for ``X | None`` annotations."""
    origin = typing.get_origin(annotation)
    if origin in (typing.Union, types.UnionType):
        members = [a for a in typing.get_args(annotation) if a is not type(None)]
        if len(members) == 1:
            return members[0], True
    return annotation, False


def dataclass_from_dict(cls: type[_D], data: Any, *, path: str = "") -> _D:
    """Build dataclass ``cls`` from a plain mapping, validating field names.

    Unknown keys and mistyped sections raise :class:`ConfigurationError`
    naming the bad field by dotted path and listing the valid fields, so a
    typo in a JSON/TOML spec file points straight at the line to fix.
    Nested dataclass fields recurse; ``tuple[...]`` fields accept lists.
    """
    label = path or cls.__name__
    if dataclasses.is_dataclass(data) and isinstance(data, cls):
        return data
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{label} must be a mapping, got {type(data).__name__}"
        )
    field_map = {f.name: f for f in dataclasses.fields(cls) if f.init}
    unknown = sorted(set(data) - set(field_map))
    if unknown:
        valid = ", ".join(sorted(field_map))
        where = f"{path}.{unknown[0]}" if path else unknown[0]
        raise ConfigurationError(
            f"unknown field {where!r} for {cls.__name__}; valid fields: {valid}"
        )
    hints = typing.get_type_hints(cls)
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        sub_path = f"{path}.{name}" if path else name
        annotation, optional = _unwrap_optional(hints.get(name, Any))
        if value is None and optional:
            kwargs[name] = None
        elif dataclasses.is_dataclass(annotation):
            kwargs[name] = dataclass_from_dict(annotation, value, path=sub_path)
        elif typing.get_origin(annotation) is tuple and isinstance(value, list):
            args = typing.get_args(annotation)
            element = args[0] if args else Any
            if dataclasses.is_dataclass(element):
                # Homogeneous dataclass tuples (e.g. timeline events): each
                # element validates under its indexed path, so a bad key in
                # the third event reads "timeline.events[2].kindz".
                kwargs[name] = tuple(
                    dataclass_from_dict(
                        element, item, path=f"{sub_path}[{index}]"
                    )
                    for index, item in enumerate(value)
                )
            else:
                kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    try:
        return cls(**kwargs)
    except ConfigurationError as error:
        # __post_init__ errors already name the field; prefix the section so
        # nested specs read e.g. "controller.config.ilp: ...".
        if path:
            raise ConfigurationError(f"{path}: {error}") from None
        raise
    except TypeError as error:
        raise ConfigurationError(f"{label}: {error}") from None


@dataclass(frozen=True)
class ExplorationConfig:
    """Parameters of the adaptive weight-exploration phase (§4.3)."""

    #: stop exploring when ``w_now - w_prev`` <= ``convergence_fraction * w_now``.
    convergence_fraction: float = 0.05
    #: pace of the multiplicative increase (α in Algorithm 1).
    alpha: float = 1.0
    #: latency this many times the idle latency counts as a packet drop.
    drop_latency_multiplier: float = 5.0
    #: upper bound on exploration iterations per DIP (safety net; the paper
    #: observes 8-10 iterations in practice).
    max_iterations: int = 25
    #: smallest weight ever proposed for a measurement.
    min_weight: float = 1e-4

    def __post_init__(self) -> None:
        if not 0 < self.convergence_fraction < 1:
            raise ConfigurationError("convergence_fraction must be in (0, 1)")
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if self.drop_latency_multiplier <= 1:
            raise ConfigurationError("drop_latency_multiplier must exceed 1")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")


@dataclass(frozen=True)
class CurveConfig:
    """Parameters of weight-latency curve fitting (§4.2)."""

    #: polynomial regression degree (the paper uses 2).
    degree: int = 2
    #: minimum number of non-dropped points required to fit.
    min_points: int = 3
    #: enforce a monotonically non-decreasing latency-vs-weight curve.
    enforce_monotone: bool = True
    #: constrain the polynomial coefficients to be non-negative, which keeps
    #: the fitted curve monotone and convex even where exploration sampled
    #: few points (an unconstrained fit can dip far below reality there).
    nonnegative_coefficients: bool = True

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ConfigurationError("degree must be >= 1")
        if self.min_points < 2:
            raise ConfigurationError("min_points must be >= 2")


@dataclass(frozen=True)
class IlpConfig:
    """Parameters of the ILP weight computation (§3.3, §4.4)."""

    #: number of candidate weights per DIP per ILP step.
    weights_per_dip: int = 10
    #: maximum weight imbalance θ (Fig. 7 constraint (c)); ``None`` means ∞.
    theta: float | None = None
    #: refinement window half-width as a fraction of w_max (δ in §4.4).
    refine_window_fraction: float = 0.10
    #: run the multi-step refinement only when the pool has at least this
    #: many DIPs (the paper uses 100).
    multistep_min_dips: int = 100
    #: solver wall-clock limit in seconds (the paper's Fig. 8 uses 20 min).
    time_limit_s: float = 1200.0
    #: solver backend name: "auto", "scipy", "branch_and_bound", "greedy", "dp".
    backend: str = "auto"
    #: ILP objective: "request_weighted" minimises Σ w·l (the mean latency a
    #: request experiences, which is what the evaluation reports) while
    #: "sum_latency" is the paper's Fig. 7 objective Σ l (per-DIP latency
    #: sum).  The paper notes (footnote 2) that the objective is pluggable.
    objective: str = "request_weighted"

    def __post_init__(self) -> None:
        if self.weights_per_dip < 2:
            raise ConfigurationError("weights_per_dip must be >= 2")
        if self.objective not in ("request_weighted", "sum_latency"):
            raise ConfigurationError(
                "objective must be 'request_weighted' or 'sum_latency'"
            )
        if self.theta is not None and self.theta < 0:
            raise ConfigurationError("theta must be non-negative or None")
        if not 0 < self.refine_window_fraction <= 1:
            raise ConfigurationError("refine_window_fraction must be in (0, 1]")
        if self.time_limit_s <= 0:
            raise ConfigurationError("time_limit_s must be positive")


@dataclass(frozen=True)
class DynamicsConfig:
    """Parameters for reacting to traffic/capacity changes and failures (§4.5)."""

    #: capacity change detected when observed latency deviates from the
    #: estimate by more than this fraction (±20 % in the paper).
    capacity_change_threshold: float = 0.20
    #: traffic change detected when at least this fraction of DIPs see a
    #: latency deviation in the same direction for unchanged weights.
    traffic_change_quorum: float = 0.80
    #: consecutive failed probe batches before a DIP is declared failed.
    failure_probe_threshold: int = 3
    #: fraction of total capacity allowed to be under refresh simultaneously.
    max_refresh_fraction: float = 0.05
    #: how often (seconds) the drain time is re-estimated (§4.7).
    drain_recalibration_interval_s: float = 120.0 * 60.0

    def __post_init__(self) -> None:
        if not 0 < self.capacity_change_threshold < 1:
            raise ConfigurationError("capacity_change_threshold must be in (0, 1)")
        if not 0 < self.traffic_change_quorum <= 1:
            raise ConfigurationError("traffic_change_quorum must be in (0, 1]")
        if self.failure_probe_threshold < 1:
            raise ConfigurationError("failure_probe_threshold must be >= 1")
        if not 0 < self.max_refresh_fraction <= 1:
            raise ConfigurationError("max_refresh_fraction must be in (0, 1]")


@dataclass(frozen=True)
class ProbeConfig:
    """Parameters of KLM latency probing (§5)."""

    #: interval between probe batches per DIP, seconds.
    interval_s: float = 5.0
    #: number of requests averaged per probe batch.
    requests_per_probe: int = 100
    #: probe timeout, seconds; a timed-out probe counts as a failure.
    timeout_s: float = 2.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if self.requests_per_probe < 1:
            raise ConfigurationError("requests_per_probe must be >= 1")
        if self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")


@dataclass(frozen=True)
class SchedulerConfig:
    """Parameters of measurement scheduling (§4.6)."""

    #: duration of one scheduling round, seconds (10 s in the paper §6.1).
    round_duration_s: float = 10.0
    #: latency above this multiple of the idle latency marks a DIP as
    #: over-utilized (priority class (a) in §4.6).
    overutilized_latency_multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.round_duration_s <= 0:
            raise ConfigurationError("round_duration_s must be positive")
        if self.overutilized_latency_multiplier <= 1:
            raise ConfigurationError(
                "overutilized_latency_multiplier must exceed 1"
            )


@dataclass(frozen=True)
class KnapsackLBConfig:
    """Top-level configuration bundling all component configs."""

    exploration: ExplorationConfig = field(default_factory=ExplorationConfig)
    curve: CurveConfig = field(default_factory=CurveConfig)
    ilp: IlpConfig = field(default_factory=IlpConfig)
    dynamics: DynamicsConfig = field(default_factory=DynamicsConfig)
    probe: ProbeConfig = field(default_factory=ProbeConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: how often the controller recomputes weights per VIP, seconds.
    control_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.control_interval_s <= 0:
            raise ConfigurationError("control_interval_s must be positive")

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (JSON/TOML-able); inverse of :meth:`from_dict`."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], *, path: str = "config"
    ) -> "KnapsackLBConfig":
        """Build a config from a plain mapping (e.g. a parsed spec file).

        Partial mappings are fine — omitted sections/fields keep their
        defaults; unknown fields raise :class:`ConfigurationError` naming
        the dotted path of the offender.
        """
        return dataclass_from_dict(cls, data, path=path)


DEFAULT_CONFIG = KnapsackLBConfig()

"""Multi-step ILP computation (§4.4).

Feeding a fine-grained weight grid to the ILP in one shot is prohibitively
slow (Fig. 8).  Instead, KnapsackLB solves the ILP in two steps with a small
number of candidates each:

1. **Coarse step** — ``weights_per_dip`` candidates uniformly in
   ``[0, w_max]`` per DIP.
2. **Refine step** — for each DIP, ``weights_per_dip`` candidates uniformly
   in ``[w_d − δ, w_d + δ]`` where ``w_d`` is the coarse solution and
   ``δ = 10 % · w_max``.

The refinement runs only when the pool has at least
``multistep_min_dips`` DIPs (100 in the paper); smaller pools use the coarse
step alone.  The LB dataplane is programmed only after the final step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.config import IlpConfig
from repro.core.curve import WeightLatencyCurve
from repro.core.ilp import IlpOutcome, build_assignment_problem, solve_assignment
from repro.core.types import DipId, VipId, WeightAssignment
from repro.exceptions import InfeasibleError
from repro.solver import SolveCache


@dataclass(frozen=True)
class MultiStepOutcome:
    """The result of a (possibly) multi-step ILP computation."""

    assignment: WeightAssignment
    steps: tuple[IlpOutcome, ...]

    @property
    def total_solve_time_s(self) -> float:
        return sum(s.solver_result.solve_time_s for s in self.steps)

    @property
    def num_steps(self) -> int:
        return len(self.steps)


def refine_windows(
    coarse: WeightAssignment,
    curves: Mapping[DipId, WeightLatencyCurve],
    *,
    window_fraction: float,
) -> dict[DipId, tuple[float, float]]:
    """Per-DIP candidate window ``[w_d − δ, w_d + δ]`` for the refine step."""
    windows: dict[DipId, tuple[float, float]] = {}
    for dip, curve in curves.items():
        delta = window_fraction * max(curve.w_max, 1e-6)
        center = coarse.weight_for(dip)
        lower = max(0.0, center - delta)
        upper = min(1.0, center + delta)
        if upper <= lower:
            upper = min(1.0, lower + delta)
        windows[dip] = (lower, upper)
    return windows


def compute_weights_multistep(
    vip: VipId,
    curves: Mapping[DipId, WeightLatencyCurve],
    *,
    config: IlpConfig | None = None,
    total_weight: float = 1.0,
    force_multistep: bool | None = None,
    cache: SolveCache | None = None,
) -> MultiStepOutcome:
    """Run the coarse (and, for large pools, the refine) ILP steps.

    ``force_multistep`` overrides the pool-size heuristic: ``True`` always
    refines, ``False`` never does, ``None`` follows the config threshold.
    ``cache`` memoizes both steps' solves across calls, so a controller
    whose curves did not change between control rounds skips re-solving.
    """
    config = config or IlpConfig()

    coarse_problem = build_assignment_problem(
        curves, config=config, total_weight=total_weight
    )
    coarse = solve_assignment(vip, coarse_problem, config=config, cache=cache)
    steps = [coarse]

    if force_multistep is None:
        do_refine = len(curves) >= config.multistep_min_dips
    else:
        do_refine = force_multistep

    if not do_refine:
        return MultiStepOutcome(assignment=coarse.assignment, steps=tuple(steps))

    windows = refine_windows(
        coarse.assignment, curves, window_fraction=config.refine_window_fraction
    )
    refine_problem = build_assignment_problem(
        curves, config=config, total_weight=total_weight, windows=windows
    )
    try:
        refined = solve_assignment(vip, refine_problem, config=config, cache=cache)
    except InfeasibleError:
        # The refinement window can exclude every combination that sums to
        # the target; the coarse solution is then kept (it is feasible).
        return MultiStepOutcome(assignment=coarse.assignment, steps=tuple(steps))

    steps.append(refined)
    best = refined if _objective(refined) <= _objective(coarse) else coarse
    return MultiStepOutcome(assignment=best.assignment, steps=tuple(steps))


def _objective(outcome: IlpOutcome) -> float:
    value = outcome.assignment.objective_ms
    return float("inf") if value is None else value

"""Old-flow drain-time estimation (§4.7).

After reprogramming weights, only *new* connections follow the new split —
existing connections keep flowing to their old DIPs (connection affinity).
A latency measurement taken too early therefore reflects a blend of the old
and new weights.  KnapsackLB waits for a *drain time* between programming a
weight for measurement and reading the latency.

Because KnapsackLB cannot see the MUXes or DIPs, it estimates the drain time
behaviourally: push a DIP's weight high enough that its latency rises (time
``T1``), set the weight to 0 so no new connections arrive, and measure how
long the latency takes to return to the idle level ``l0`` (time ``T2``);
drain time = ``T2 − T1``.  The estimate is refreshed every two hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.types import DipId
from repro.exceptions import ConfigurationError


class DrainProbeTarget(Protocol):
    """What the estimator needs from the deployment: program and probe."""

    def set_dip_weight(self, dip: DipId, weight: float) -> None: ...

    def advance(self, duration_s: float) -> None: ...

    def probe_latency_ms(self, dip: DipId) -> float: ...


@dataclass
class DrainEstimate:
    """A drain-time estimate for a DIP, with its measurement timestamp."""

    dip: DipId
    drain_time_s: float
    measured_at: float


@dataclass
class DrainTimeEstimator:
    """Runs the §4.7 procedure and caches per-DIP drain-time estimates."""

    #: latency within this factor of l0 counts as "drained".
    settle_factor: float = 1.10
    #: polling interval while waiting for the latency to settle, seconds.
    poll_interval_s: float = 1.0
    #: give up after this long, seconds.
    max_wait_s: float = 120.0
    #: re-measurement period (the paper re-measures every 120 minutes).
    recalibration_interval_s: float = 7200.0
    estimates: dict[DipId, DrainEstimate] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.settle_factor <= 1.0:
            raise ConfigurationError("settle_factor must exceed 1")
        if self.poll_interval_s <= 0:
            raise ConfigurationError("poll_interval_s must be positive")
        if self.max_wait_s <= 0:
            raise ConfigurationError("max_wait_s must be positive")

    def measure(
        self,
        target: DrainProbeTarget,
        dip: DipId,
        *,
        l0_ms: float,
        high_weight: float,
        now: float = 0.0,
        load_duration_s: float = 10.0,
    ) -> DrainEstimate:
        """Run the high-weight / zero-weight procedure against ``target``."""
        if l0_ms <= 0:
            raise ConfigurationError("l0_ms must be positive")
        if not 0 < high_weight <= 1:
            raise ConfigurationError("high_weight must be in (0, 1]")

        # Phase 1: drive latency up with a high weight.
        target.set_dip_weight(dip, high_weight)
        target.advance(load_duration_s)
        t1_elapsed = load_duration_s

        # Phase 2: weight 0 — no new connections — and wait for l0.
        target.set_dip_weight(dip, 0.0)
        waited = 0.0
        while waited < self.max_wait_s:
            target.advance(self.poll_interval_s)
            waited += self.poll_interval_s
            latency = target.probe_latency_ms(dip)
            if latency <= l0_ms * self.settle_factor:
                break

        estimate = DrainEstimate(
            dip=dip, drain_time_s=waited, measured_at=now + t1_elapsed + waited
        )
        self.estimates[dip] = estimate
        return estimate

    def drain_time_s(self, dip: DipId, *, default: float = 10.0) -> float:
        """The cached drain time for ``dip`` (or ``default`` if unmeasured)."""
        estimate = self.estimates.get(dip)
        return estimate.drain_time_s if estimate else default

    def needs_recalibration(self, dip: DipId, *, now: float) -> bool:
        estimate = self.estimates.get(dip)
        if estimate is None:
            return True
        return (now - estimate.measured_at) >= self.recalibration_interval_s


def analytic_drain_time_s(
    capacity_rps: float, *, in_flight: float, safety_factor: float = 2.0
) -> float:
    """A closed-form drain-time estimate used by the fluid simulator.

    Draining ``in_flight`` outstanding requests at ``capacity_rps`` takes
    ``in_flight / capacity_rps`` seconds; the safety factor accounts for the
    tail of long connections.
    """
    if capacity_rps <= 0:
        raise ConfigurationError("capacity_rps must be positive")
    if in_flight < 0:
        raise ConfigurationError("in_flight must be >= 0")
    return safety_factor * in_flight / capacity_rps

"""Adaptive weight exploration — Algorithm 1 (§4.3).

The measurement phase must find, with as few latency measurements as
possible, (a) enough (weight, latency) points to fit a good curve and (b) a
rough estimate of the DIP's capacity expressed as a weight (``w_max``).

The algorithm is inspired by TCP congestion control and alternates between
two modes:

* **run** — no packet drop was observed (and the latency is below the
  drop-equivalent threshold of ``5 × l0``): increase the weight
  multiplicatively, pacing the increase by ``l0 / l_w`` so the steps shrink
  as the DIP approaches capacity;
* **backtrack** — a drop (or drop-equivalent latency) was observed: move
  back to the midpoint of the current and previous weights.

Exploration finishes when the step between consecutive weights falls below
``D = 5 %`` of the current weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ExplorationConfig
from repro.core.types import DipId, MeasurementPoint
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ExplorationStep:
    """The outcome of one iteration of Algorithm 1 for one DIP."""

    dip: DipId
    iteration: int
    next_weight: float
    w_max: float
    is_exploration_done: bool
    mode: str  # "run", "backtrack" or "done"


@dataclass
class ExplorationState:
    """Per-DIP state of the measurement phase.

    The caller drives the loop:

    1. ``propose()`` returns the next weight to measure;
    2. the weight is scheduled/programmed and the latency measured;
    3. ``observe(weight, latency_ms, dropped)`` records the measurement and
       computes the following weight per Algorithm 1.
    """

    dip: DipId
    l0_ms: float
    initial_weight: float
    config: ExplorationConfig = field(default_factory=ExplorationConfig)

    w_prev: float = 0.0
    w_now: float = 0.0
    w_max: float = 0.0
    next_weight: float = 0.0
    iteration: int = 0
    done: bool = False
    points: list[MeasurementPoint] = field(default_factory=list)
    history: list[ExplorationStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.l0_ms <= 0:
            raise ConfigurationError("l0_ms must be positive")
        if self.initial_weight <= 0:
            raise ConfigurationError("initial_weight must be positive")
        self.next_weight = self.initial_weight
        # The idle measurement (weight 0) is part of the curve's points.
        self.points.append(MeasurementPoint(weight=0.0, latency_ms=self.l0_ms))

    # -- the driver-facing API ---------------------------------------------------

    def propose(self) -> float:
        """The weight whose latency should be measured next."""
        return self.next_weight

    def observe(self, weight: float, latency_ms: float, *, dropped: bool = False) -> ExplorationStep:
        """Record a measurement at ``weight`` and advance Algorithm 1."""
        if self.done:
            raise ConfigurationError(f"exploration for {self.dip} already finished")
        if weight <= 0:
            raise ConfigurationError("measured weight must be positive")
        if latency_ms <= 0:
            raise ConfigurationError("latency_ms must be positive")

        self.iteration += 1
        self.w_prev = self.w_now
        self.w_now = float(weight)

        # A latency of 5× l0 (or worse) is treated as a packet drop *for the
        # control decision* (run vs backtrack), per the paper's observation
        # that latencies reach that level when CPU ≈ 100 %.  Only real packet
        # drops exclude a point from the regression (§6.1).
        drop_signal = dropped or (
            latency_ms >= self.config.drop_latency_multiplier * self.l0_ms
        )
        self.points.append(
            MeasurementPoint(weight=weight, latency_ms=latency_ms, dropped=dropped)
        )

        # Line 1-2: convergence check on the step size.
        step = abs(self.w_now - self.w_prev)
        if self.w_prev > 0 and step <= self.config.convergence_fraction * self.w_now:
            self.done = True
            result = ExplorationStep(
                dip=self.dip,
                iteration=self.iteration,
                next_weight=self.w_now,
                w_max=self.w_max,
                is_exploration_done=True,
                mode="done",
            )
            self.history.append(result)
            return result

        if not drop_signal:
            # Run phase (lines 4-6).
            self.w_max = max(self.w_max, self.w_now)
            increase = self.w_now * self.config.alpha * (self.l0_ms / latency_ms)
            proposed = self.w_now + increase
            mode = "run"
        else:
            # Backtrack phase (lines 7-8).
            proposed = (self.w_now + self.w_prev) / 2.0
            mode = "backtrack"

        proposed = min(max(proposed, self.config.min_weight), 1.0)
        self.next_weight = proposed

        if self.iteration >= self.config.max_iterations:
            self.done = True
            mode = "done"

        result = ExplorationStep(
            dip=self.dip,
            iteration=self.iteration,
            next_weight=self.next_weight,
            w_max=self.w_max,
            is_exploration_done=self.done,
            mode=mode,
        )
        self.history.append(result)
        return result

    # -- results -------------------------------------------------------------------

    def usable_points(self) -> list[MeasurementPoint]:
        """Points without drops, i.e. the regression inputs (§6.1)."""
        return [p for p in self.points if not p.dropped]

    @property
    def measurements(self) -> int:
        """Latency measurements taken so far (excluding the idle point)."""
        return len(self.points) - 1

    def effective_w_max(self) -> float:
        """w_max, falling back to the largest non-dropped weight measured."""
        if self.w_max > 0:
            return self.w_max
        usable = self.usable_points()
        return max((p.weight for p in usable), default=0.0)

"""Scheduling latency measurements (§4.6).

During the measurement phase, the weights Algorithm 1 wants to measure next
cannot all be applied at once: the DIP weights of a VIP must sum to 1, and
different DIPs have different urgency.  The scheduler therefore:

1. orders pending measurement requests by priority class — (a) over-utilized
   DIPs, (b) remaining DIPs under exploration, (c) curve refreshes — FIFO
   within a class;
2. greedily admits requests until either the admitted weights reach 1 or the
   requests are exhausted;
3. distributes the remaining weight ``1 − w_s`` over the *other* DIPs: DIPs
   with a finished exploration get weights from the ILP run with a modified
   total-weight constraint, and if that ILP is unsatisfiable (or no curve is
   available) the remainder is split equally.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Collection, Mapping, Sequence

from repro.core.config import IlpConfig, SchedulerConfig
from repro.core.curve import WeightLatencyCurve
from repro.core.ilp import build_assignment_problem, solve_assignment
from repro.core.types import DipId, VipId
from repro.exceptions import InfeasibleError, SchedulingError, SolverTimeoutError


class MeasurementPriority(enum.IntEnum):
    """Priority classes of §4.6 (lower value = served first)."""

    OVERUTILIZED = 0
    NORMAL = 1
    REFRESH = 2


@dataclass(frozen=True)
class MeasurementRequest:
    """A request to measure one DIP's latency at a specific weight."""

    dip: DipId
    weight: float
    priority: MeasurementPriority = MeasurementPriority.NORMAL
    sequence: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.weight <= 1:
            raise SchedulingError(
                f"measurement weight for {self.dip} must be in (0, 1], got {self.weight}"
            )


@dataclass(frozen=True)
class RoundPlan:
    """The weights to program for one scheduling round.

    ``measured`` are the DIPs whose latency will be measured this round at
    the scheduled weight; ``filler`` are the weights assigned to the other
    DIPs so the total reaches 1; ``deferred`` are requests that did not fit
    and must wait for a later round.
    """

    vip: VipId
    measured: dict[DipId, float]
    filler: dict[DipId, float]
    deferred: tuple[MeasurementRequest, ...]
    filler_source: str = "none"  # "ilp", "equal" or "none"

    def weights(self) -> dict[DipId, float]:
        combined = dict(self.filler)
        combined.update(self.measured)
        return combined

    @property
    def total_weight(self) -> float:
        return sum(self.weights().values())


class MeasurementScheduler:
    """Builds round plans from pending measurement requests."""

    def __init__(
        self,
        vip: VipId,
        *,
        config: SchedulerConfig | None = None,
        ilp_config: IlpConfig | None = None,
    ) -> None:
        self.vip = vip
        self.config = config or SchedulerConfig()
        self.ilp_config = ilp_config or IlpConfig()
        self._sequence = itertools.count()
        self._pending: list[MeasurementRequest] = []

    # -- queueing ------------------------------------------------------------------

    def submit(
        self,
        dip: DipId,
        weight: float,
        *,
        priority: MeasurementPriority = MeasurementPriority.NORMAL,
    ) -> MeasurementRequest:
        """Queue a measurement request (replacing any older one for the DIP)."""
        self._pending = [r for r in self._pending if r.dip != dip]
        request = MeasurementRequest(
            dip=dip, weight=weight, priority=priority, sequence=next(self._sequence)
        )
        self._pending.append(request)
        return request

    def cancel(self, dip: DipId) -> None:
        self._pending = [r for r in self._pending if r.dip != dip]

    @property
    def pending(self) -> tuple[MeasurementRequest, ...]:
        return tuple(
            sorted(self._pending, key=lambda r: (r.priority, r.sequence))
        )

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    # -- building a round ---------------------------------------------------------

    def plan_round(
        self,
        all_dips: Sequence[DipId],
        curves: Mapping[DipId, WeightLatencyCurve] | None = None,
        *,
        exclude: Collection[DipId] = (),
    ) -> RoundPlan:
        """Greedily admit requests and fill the remaining weight.

        ``all_dips`` is the full healthy DIP set of the VIP; ``curves`` maps
        DIPs whose exploration is finished to their fitted curves (these are
        the DIPs eligible to receive ILP-computed filler weights).

        ``exclude`` lists DIPs that must not be *measured* this round — in a
        multi-VIP fleet a DIP already being measured by another VIP's round
        cannot serve a second measurement weight at the same time.  Excluded
        requests are deferred (they stay queued), and the excluded DIPs may
        still receive filler weight (their share of ordinary traffic).
        """
        curves = curves or {}
        exclude = set(exclude)
        ordered = self.pending
        admitted: dict[DipId, float] = {}
        deferred: list[MeasurementRequest] = []
        budget = 1.0

        for request in ordered:
            if request.dip not in all_dips:
                continue  # DIP left the pool; drop the request silently.
            if request.dip in exclude:
                deferred.append(request)
            elif request.weight <= budget + 1e-9 and request.dip not in admitted:
                admitted[request.dip] = min(request.weight, budget)
                budget -= admitted[request.dip]
            else:
                deferred.append(request)

        # Requests admitted this round are consumed; deferred ones stay queued.
        self._pending = list(deferred)

        remaining_dips = [d for d in all_dips if d not in admitted]
        remaining_weight = max(0.0, 1.0 - sum(admitted.values()))

        filler, source = self._fill_remaining(remaining_dips, remaining_weight, curves)
        return RoundPlan(
            vip=self.vip,
            measured=admitted,
            filler=filler,
            deferred=tuple(deferred),
            filler_source=source,
        )

    def _fill_remaining(
        self,
        remaining_dips: Sequence[DipId],
        remaining_weight: float,
        curves: Mapping[DipId, WeightLatencyCurve],
    ) -> tuple[dict[DipId, float], str]:
        if not remaining_dips:
            return {}, "none"
        if remaining_weight <= 0:
            return {dip: 0.0 for dip in remaining_dips}, "none"

        explored = {d: curves[d] for d in remaining_dips if d in curves}
        if explored:
            try:
                problem = build_assignment_problem(
                    explored,
                    config=self.ilp_config,
                    total_weight=remaining_weight,
                )
                outcome = solve_assignment(
                    self.vip, problem, config=self.ilp_config, normalize=False
                )
                filler = {d: 0.0 for d in remaining_dips}
                total = sum(outcome.assignment.weights.values())
                if total > 0:
                    scale = remaining_weight / total
                    for dip, weight in outcome.assignment.weights.items():
                        filler[dip] = weight * scale
                    return filler, "ilp"
            except (InfeasibleError, SolverTimeoutError):
                pass

        # Fallback: equal split of the remainder (the paper's last resort).
        share = remaining_weight / len(remaining_dips)
        return {dip: share for dip in remaining_dips}, "equal"

"""The fleet-scale KnapsackLB control plane (§3.2, §5 at Table 8 scale).

One :class:`FleetController` owns every VIP of a shared DIP fleet.  It
multiplexes the per-VIP state machines — measurement (Algorithm 1 + the
§4.6 scheduler), ILP weight computation and §4.5 dynamics — over one
control interval, the way the paper's single stateful controller app
manages thousands of VIPs:

* every VIP gets its own :class:`KnapsackLBController` driven through a
  :class:`~repro.sim.fleet.FleetDeployment` view, so weight programming and
  probing stay VIP-scoped while the underlying DIPs carry the sum of all
  tenants' traffic;
* all KLM samples land in one shared :class:`LatencyStore`, keyed by VIP —
  the in-process equivalent of the paper's single Redis;
* measurement rounds from different VIPs interleave: each fleet round asks
  every measuring VIP's scheduler for a plan, excluding DIPs another VIP is
  already measuring this round, then advances the shared clock exactly once;
* VIPs can be onboarded while the rest of the fleet is live (staggered
  onboarding), and steady-state VIPs keep reacting to failures, capacity
  and traffic changes every control tick.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.config import KnapsackLBConfig
from repro.core.controller import (
    ControlStepReport,
    ExplorationReport,
    KnapsackLBController,
)
from repro.core.multistep import MultiStepOutcome
from repro.core.types import DipId, VipId, WeightAssignment
from repro.exceptions import ConfigurationError
from repro.probing.latency_store import LatencyStore
from repro.sim.fleet import Fleet
from repro.solver import SolveCache


class VipPhase(enum.Enum):
    """Lifecycle of a VIP inside the fleet control plane."""

    ONBOARDED = "onboarded"  # registered, measurement not started
    MEASURING = "measuring"  # running interleaved exploration rounds
    STEADY = "steady"  # converged; §4.5 dynamics every control tick


@dataclass(frozen=True)
class FleetRound:
    """One interleaved measurement round across the fleet (observability)."""

    index: int
    time: float
    #: DIPs measured this round, per VIP, at their scheduled weights.
    measured: Mapping[VipId, Mapping[DipId, float]]

    def measured_dips(self) -> tuple[DipId, ...]:
        return tuple(d for per_vip in self.measured.values() for d in per_vip)


@dataclass
class FleetMeasurementReport:
    """Summary of an interleaved fleet-wide measurement phase."""

    rounds: int
    elapsed_s: float
    #: rounds in which at least two VIPs measured concurrently.
    interleaved_rounds: int
    reports: dict[VipId, ExplorationReport]
    round_log: list[FleetRound] = field(default_factory=list)


class FleetController:
    """Multi-VIP weight computation over a shared DIP fleet."""

    def __init__(
        self,
        fleet: Fleet,
        *,
        config: KnapsackLBConfig | None = None,
        store: LatencyStore | None = None,
        solve_cache: SolveCache | None = None,
    ) -> None:
        self.fleet = fleet
        self.config = config or KnapsackLBConfig()
        self.store = store or LatencyStore()
        #: one warm-start memo shared by every VIP's ILP (the in-process
        #: analogue of the shared LatencyStore): consecutive control rounds
        #: re-solve only the VIPs whose measured curves actually moved —
        #: an unchanged VIP's candidate grid hits the cache and its
        #: previous assignment is reused for free.
        self.solve_cache = solve_cache or SolveCache()
        self.controllers: dict[VipId, KnapsackLBController] = {}
        self.phases: dict[VipId, VipPhase] = {}
        self.round_log: list[FleetRound] = []
        self._round_index = 0

    # ------------------------------------------------------------- onboarding

    def onboard_vip(
        self,
        vip_id: VipId,
        *,
        config: KnapsackLBConfig | None = None,
        start_measurement: bool = True,
    ) -> KnapsackLBController:
        """Attach a controller to a fleet VIP (which may join a live fleet).

        Bootstraps the VIP's idle latencies and, unless
        ``start_measurement=False``, opens its measurement phase so the next
        :meth:`run_measurement_phase` picks it up.  Other VIPs' traffic keeps
        flowing throughout — their DIPs simply see the onboarding VIP's
        measurement weights as additional load.
        """
        if vip_id in self.controllers:
            raise ConfigurationError(f"VIP {vip_id!r} already onboarded")
        if vip_id not in self.fleet.vips:
            raise ConfigurationError(f"VIP {vip_id!r} not in fleet")
        controller = KnapsackLBController(
            vip_id,
            self.fleet.view(vip_id),
            store=self.store,
            config=config or self.config,
            solve_cache=self.solve_cache,
        )
        controller.time = self.fleet.time
        self.controllers[vip_id] = controller
        self.phases[vip_id] = VipPhase.ONBOARDED
        if start_measurement:
            self.start_measurement(vip_id)
        return controller

    def start_measurement(self, vip_id: VipId) -> None:
        """Bootstrap ``l0`` and open the VIP's measurement phase."""
        controller = self._controller(vip_id)
        controller.begin_exploration()
        self.phases[vip_id] = VipPhase.MEASURING
        self._sync_clocks()

    def offboard_vip(self, vip_id: VipId) -> None:
        """Retire a VIP: drop its controller and remove it from the fleet.

        The inverse of staggered onboarding — the tenant's traffic leaves
        the shared DIPs (the joint evaluation re-runs immediately), and the
        remaining VIPs' §4.5 detectors see the contention drop on their next
        control tick.  Its KLM samples stay in the shared store for
        post-hoc analysis.
        """
        self._controller(vip_id)  # raises if never onboarded
        del self.controllers[vip_id]
        del self.phases[vip_id]
        self.fleet.remove_vip(vip_id)

    def measuring_vips(self) -> tuple[VipId, ...]:
        return tuple(
            v for v, phase in self.phases.items() if phase is VipPhase.MEASURING
        )

    def steady_vips(self) -> tuple[VipId, ...]:
        return tuple(
            v for v, phase in self.phases.items() if phase is VipPhase.STEADY
        )

    # ------------------------------------------------- interleaved measurement

    def run_measurement_phase(
        self,
        *,
        max_rounds: int = 100_000,
        steady_control: bool = False,
    ) -> FleetMeasurementReport:
        """Drive every measuring VIP to convergence, one shared round at a time.

        Each fleet round walks the measuring VIPs (rotating the starting VIP
        for fairness), lets each pack one scheduler round — excluding DIPs
        already claimed by an earlier VIP this round, so no DIP serves two
        measurement weights at once — and then advances the shared clock by
        one round duration.  With ``steady_control=True`` the already-steady
        VIPs run their §4.5 control tick after each round, so dynamics and
        measurement genuinely coexist (staggered onboarding).
        """
        round_duration = self.config.scheduler.round_duration_s
        reports: dict[VipId, ExplorationReport] = {}
        rounds = 0
        interleaved = 0

        while self.measuring_vips() and rounds < max_rounds:
            measuring = list(self.measuring_vips())
            offset = rounds % len(measuring)
            ordered = measuring[offset:] + measuring[:offset]

            claimed: set[DipId] = set()
            measured_by_vip: dict[VipId, dict[DipId, float]] = {}
            for vip_id in ordered:
                controller = self.controllers[vip_id]
                outcome = controller.exploration_round(
                    advance=False, exclude=claimed
                )
                if outcome.measured:
                    claimed.update(outcome.measured)
                    measured_by_vip[vip_id] = dict(outcome.measured)
                if outcome.done:
                    reports[vip_id] = controller.finish_exploration()
                    self.phases[vip_id] = VipPhase.STEADY

            self.fleet.advance(round_duration)
            self._sync_clocks()
            rounds += 1
            if len(measured_by_vip) > 1:
                interleaved += 1
            self.round_log.append(
                FleetRound(
                    index=self._round_index,
                    time=self.fleet.time,
                    measured=measured_by_vip,
                )
            )
            self._round_index += 1

            if steady_control:
                for vip_id in self.steady_vips():
                    self.controllers[vip_id].control_step(advance=False)

        return FleetMeasurementReport(
            rounds=rounds,
            elapsed_s=rounds * round_duration,
            interleaved_rounds=interleaved,
            reports=reports,
            round_log=self.round_log[-rounds:] if rounds else [],
        )

    # --------------------------------------------------------- weights & steady state

    def compute_all_weights(self) -> dict[VipId, MultiStepOutcome]:
        """Run each converged VIP's (multi-step) ILP and program the result."""
        outcomes: dict[VipId, MultiStepOutcome] = {}
        for vip_id in self.steady_vips():
            controller = self.controllers[vip_id]
            outcome = controller.compute_weights()
            controller.program_assignment(outcome.assignment)
            outcomes[vip_id] = outcome
        return outcomes

    def control_step(
        self, *, duration_s: float | None = None
    ) -> dict[VipId, ControlStepReport]:
        """One fleet-wide control tick: advance once, then every steady VIP.

        Mirrors the paper's 5-second loop with the fleet clock advanced a
        single time — each VIP then probes its own DIPs (whose load includes
        every other tenant) and reacts independently.  ``duration_s``
        overrides the configured control interval; the timeline layer uses
        it to align control ticks with telemetry windows.
        """
        self.fleet.advance(
            self.config.control_interval_s if duration_s is None else duration_s
        )
        self._sync_clocks()
        return {
            vip_id: self.controllers[vip_id].control_step(advance=False)
            for vip_id in self.steady_vips()
        }

    def converge_all(
        self, *, settle_steps: int = 3
    ) -> dict[VipId, WeightAssignment]:
        """Measure, solve and program every onboarded VIP; settle the fleet."""
        for vip_id, phase in self.phases.items():
            if phase is VipPhase.ONBOARDED:
                self.start_measurement(vip_id)
        self.run_measurement_phase()
        self.compute_all_weights()
        for _ in range(max(0, settle_steps)):
            reports = self.control_step()
            if not any(report.events for report in reports.values()):
                break
        return {
            vip_id: controller.last_assignment
            for vip_id, controller in self.controllers.items()
            if controller.last_assignment is not None
        }

    # ------------------------------------------------------------------ reporting

    def status(self) -> dict[VipId, dict[str, object]]:
        """Per-VIP phase and controller summary (observability)."""
        state = self.fleet.state()
        return {
            vip_id: {
                "phase": self.phases[vip_id].value,
                "dips": len(self.fleet.vips[vip_id].dips),
                "mean_latency_ms": state.vip_mean_latency_ms(vip_id),
                "has_assignment": controller.last_assignment is not None,
                "failed_dips": tuple(controller.failed_dips),
            }
            for vip_id, controller in self.controllers.items()
        }

    def _controller(self, vip_id: VipId) -> KnapsackLBController:
        try:
            return self.controllers[vip_id]
        except KeyError:
            raise ConfigurationError(f"VIP {vip_id!r} not onboarded") from None

    def _sync_clocks(self) -> None:
        for controller in self.controllers.values():
            controller.time = self.fleet.time

"""KnapsackLB core: the paper's primary contribution.

Curve fitting (§4.2), adaptive weight exploration (§4.3), the Fig. 7 ILP
(§3.3) with multi-step refinement (§4.4), measurement scheduling (§4.6),
dynamics handling (§4.5), drain-time estimation (§4.7) and the controller
that ties them together (§3.2, §5).
"""

from repro.core.config import (
    DEFAULT_CONFIG,
    CurveConfig,
    DynamicsConfig,
    ExplorationConfig,
    IlpConfig,
    KnapsackLBConfig,
    ProbeConfig,
    SchedulerConfig,
    dataclass_from_dict,
    dataclass_to_dict,
)
from repro.core.controller import (
    ControlStepReport,
    Deployment,
    ExplorationReport,
    ExplorationRoundOutcome,
    KnapsackLBController,
)
from repro.core.fleet_controller import (
    FleetController,
    FleetMeasurementReport,
    FleetRound,
    VipPhase,
)
from repro.core.curve import WeightLatencyCurve, fit_curve, fit_error
from repro.core.drain import DrainEstimate, DrainTimeEstimator, analytic_drain_time_s
from repro.core.dynamics import (
    DynamicsDetector,
    DynamicsEvent,
    DynamicsEventKind,
    Observation,
    RefreshBudget,
    rescale_all_curves,
    rescale_curve_for_observation,
)
from repro.core.exploration import ExplorationState, ExplorationStep
from repro.core.ilp import (
    IlpOutcome,
    build_assignment_problem,
    candidate_grid,
    compute_weights,
    solve_assignment,
)
from repro.core.multistep import MultiStepOutcome, compute_weights_multistep
from repro.core.scheduler import (
    MeasurementPriority,
    MeasurementRequest,
    MeasurementScheduler,
    RoundPlan,
)
from repro.core.types import (
    DipId,
    DipRecord,
    LatencySample,
    MeasurementPoint,
    VipId,
    WeightAssignment,
    equal_weights,
    normalize_weights,
    validate_weight,
)

__all__ = [
    "DEFAULT_CONFIG",
    "CurveConfig",
    "DynamicsConfig",
    "ExplorationConfig",
    "IlpConfig",
    "KnapsackLBConfig",
    "ProbeConfig",
    "SchedulerConfig",
    "dataclass_from_dict",
    "dataclass_to_dict",
    "ControlStepReport",
    "Deployment",
    "ExplorationReport",
    "ExplorationRoundOutcome",
    "KnapsackLBController",
    "FleetController",
    "FleetMeasurementReport",
    "FleetRound",
    "VipPhase",
    "WeightLatencyCurve",
    "fit_curve",
    "fit_error",
    "DrainEstimate",
    "DrainTimeEstimator",
    "analytic_drain_time_s",
    "DynamicsDetector",
    "DynamicsEvent",
    "DynamicsEventKind",
    "Observation",
    "RefreshBudget",
    "rescale_all_curves",
    "rescale_curve_for_observation",
    "ExplorationState",
    "ExplorationStep",
    "IlpOutcome",
    "build_assignment_problem",
    "candidate_grid",
    "compute_weights",
    "solve_assignment",
    "MultiStepOutcome",
    "compute_weights_multistep",
    "MeasurementPriority",
    "MeasurementRequest",
    "MeasurementScheduler",
    "RoundPlan",
    "DipId",
    "DipRecord",
    "LatencySample",
    "MeasurementPoint",
    "VipId",
    "WeightAssignment",
    "equal_weights",
    "normalize_weights",
    "validate_weight",
]

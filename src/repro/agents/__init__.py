"""Agent-based baselines the paper compares against (§6.4)."""

from repro.agents.cpu_agent import AgentIteration, CpuAgentBalancer

__all__ = ["AgentIteration", "CpuAgentBalancer"]

"""Agent-based CPU-utilization baseline (§6.4).

The baseline the paper compares against runs an agent on every DIP that
reports CPU utilization; a controller then iteratively adjusts weights until
utilization is uniform (the algorithm of Cheetah/"[18] §4.1").  The paper's
point is twofold: (a) this needs agents (a privacy non-goal for KnapsackLB)
and (b) it converges over several iterations, whereas KnapsackLB's ILP gets
there in one shot once the curves are known.

The iterative rule implemented here multiplies each DIP's weight by the
ratio of the target (mean) utilization to its observed utilization and
renormalises — a standard proportional-feedback weight update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.types import DipId, normalize_weights
from repro.exceptions import ConfigurationError
from repro.sim.fluid import FluidCluster


@dataclass(frozen=True)
class AgentIteration:
    """One round of the agent-based feedback loop."""

    index: int
    weights: dict[DipId, float]
    utilization: dict[DipId, float]
    spread: float  # max - min utilization across DIPs


@dataclass
class CpuAgentBalancer:
    """Iterative CPU-equalising weight computation using per-DIP agents."""

    cluster: FluidCluster
    #: stop when the max-min utilization spread falls below this value.
    tolerance: float = 0.02
    #: damping of the multiplicative update (1.0 = undamped).
    gain: float = 1.0
    max_iterations: int = 50
    history: list[AgentIteration] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        if not 0 < self.gain <= 1:
            raise ConfigurationError("gain must be in (0, 1]")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")

    def _observe_utilization(self) -> dict[DipId, float]:
        """Read the agents' CPU reports (direct DIP access — the non-goal)."""
        return {d: s.cpu_utilization for d, s in self.cluster.dips.items() if not s.failed}

    def run(
        self, initial_weights: Mapping[DipId, float] | None = None
    ) -> list[AgentIteration]:
        """Iterate until utilization is uniform (or the iteration limit)."""
        healthy = self.cluster.healthy_dip_ids()
        if initial_weights is None:
            weights = {d: 1.0 / len(healthy) for d in healthy}
        else:
            weights = normalize_weights({d: initial_weights.get(d, 0.0) for d in healthy})

        self.history.clear()
        for index in range(1, self.max_iterations + 1):
            self.cluster.set_weights(weights)
            utilization = self._observe_utilization()
            values = [utilization[d] for d in healthy]
            spread = max(values) - min(values)
            self.history.append(
                AgentIteration(
                    index=index,
                    weights=dict(weights),
                    utilization=dict(utilization),
                    spread=spread,
                )
            )
            if spread <= self.tolerance:
                break

            mean_util = sum(values) / len(values)
            updated: dict[DipId, float] = {}
            for dip in healthy:
                util = max(utilization[dip], 1e-6)
                factor = (mean_util / util) ** self.gain
                updated[dip] = weights[dip] * factor
            weights = normalize_weights(updated)
        return list(self.history)

    @property
    def iterations_to_converge(self) -> int:
        """Iterations executed by the last :meth:`run` call."""
        return len(self.history)

    @property
    def converged(self) -> bool:
        return bool(self.history) and self.history[-1].spread <= self.tolerance

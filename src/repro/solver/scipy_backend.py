"""MILP backend built on :func:`scipy.optimize.milp` (HiGHS).

This plays the role of COIN-OR CBC + PuLP in the paper's prototype: an
off-the-shelf exact solver for the Fig. 7 ILP.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro.solver.assignment import AssignmentProblem
from repro.solver.result import SolveResult, SolveStatus

_BACKEND_NAME = "scipy"


def solve_scipy(
    problem: AssignmentProblem,
    *,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 1e-6,
) -> SolveResult:
    """Solve the weight-assignment ILP with HiGHS.

    Variables are the booleans ``X_{d,w}`` flattened in DIP order.  The
    constraints mirror Fig. 7:

    (a) one candidate per DIP,
    (b) total weight within the tolerance band around the target,
    (c)/(d) optional imbalance bound via auxiliary ``ymax``/``ymin``
        continuous variables.
    """
    start = time.perf_counter()

    num_x = problem.num_variables
    has_theta = problem.theta is not None
    # Variable layout: [X_{d,w} ...] (+ [ymax, ymin] when theta is bounded).
    num_vars = num_x + (2 if has_theta else 0)

    costs = np.zeros(num_vars)
    integrality = np.zeros(num_vars)
    lower = np.zeros(num_vars)
    upper = np.ones(num_vars)

    offsets: list[int] = []
    pos = 0
    for cand in problem.dips:
        offsets.append(pos)
        for j in range(cand.count):
            costs[pos + j] = cand.latencies_ms[j]
            integrality[pos + j] = 1
        pos += cand.count

    if has_theta:
        ymax_idx, ymin_idx = num_x, num_x + 1
        upper[ymax_idx] = 1.0
        upper[ymin_idx] = 1.0

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lbs: list[float] = []
    ubs: list[float] = []
    row = 0

    # (a) exactly one candidate per DIP.
    for d, cand in enumerate(problem.dips):
        for j in range(cand.count):
            rows.append(row)
            cols.append(offsets[d] + j)
            vals.append(1.0)
        lbs.append(1.0)
        ubs.append(1.0)
        row += 1

    # (b) total chosen weight within the tolerance band.
    for d, cand in enumerate(problem.dips):
        for j in range(cand.count):
            rows.append(row)
            cols.append(offsets[d] + j)
            vals.append(cand.weights[j])
    lbs.append(problem.total_weight - problem.total_weight_tolerance)
    ubs.append(problem.total_weight + problem.total_weight_tolerance)
    row += 1

    if has_theta:
        # (d) ymax >= chosen weight of every DIP, ymin <= chosen weight.
        for d, cand in enumerate(problem.dips):
            for j in range(cand.count):
                rows.append(row)
                cols.append(offsets[d] + j)
                vals.append(cand.weights[j])
            rows.append(row)
            cols.append(ymax_idx)
            vals.append(-1.0)
            lbs.append(-np.inf)
            ubs.append(0.0)
            row += 1

            for j in range(cand.count):
                rows.append(row)
                cols.append(offsets[d] + j)
                vals.append(cand.weights[j])
            rows.append(row)
            cols.append(ymin_idx)
            vals.append(-1.0)
            lbs.append(0.0)
            ubs.append(np.inf)
            row += 1

        # (c) ymax - ymin <= theta.
        rows.extend([row, row])
        cols.extend([ymax_idx, ymin_idx])
        vals.extend([1.0, -1.0])
        lbs.append(-np.inf)
        ubs.append(float(problem.theta))
        row += 1

    matrix = csr_matrix((vals, (rows, cols)), shape=(row, num_vars))
    constraints = LinearConstraint(matrix, np.array(lbs), np.array(ubs))
    bounds = Bounds(lower, upper)

    options: dict[str, float] = {"mip_rel_gap": mip_rel_gap}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)

    result = milp(
        c=costs,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    elapsed = time.perf_counter() - start

    if result.x is None:
        status = (
            SolveStatus.TIMEOUT
            if time_limit_s is not None and elapsed >= time_limit_s * 0.95
            else SolveStatus.INFEASIBLE
        )
        return SolveResult(status=status, solve_time_s=elapsed, backend=_BACKEND_NAME)

    selection: dict[str, int] = {}
    for d, cand in enumerate(problem.dips):
        values = result.x[offsets[d] : offsets[d] + cand.count]
        selection[cand.dip] = int(np.argmax(values))

    weights = problem.weights_of(selection)
    objective = problem.objective_of(selection)
    status = SolveStatus.OPTIMAL if result.status == 0 else SolveStatus.FEASIBLE
    return SolveResult(
        status=status,
        objective_ms=objective,
        weights=weights,
        selection=selection,
        solve_time_s=elapsed,
        backend=_BACKEND_NAME,
        overloaded_dips=problem.overloaded_dips(weights),
    )

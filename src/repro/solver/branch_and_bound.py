"""Pure-Python branch-and-bound solver for the weight-assignment ILP.

This backend exists for two reasons:

* it makes the core reproduction self-contained (no dependency on HiGHS for
  the headline result), and
* its node counter lets the Fig. 8 / Table 6 benches report work done by an
  exact solver in a way that scales the same way the paper's CBC runs do
  (roughly exponential in the number of DIPs × candidates for coarse grids).

The algorithm is a depth-first branch-and-bound over DIPs.  At each node the
lower bound is the cost of the partial assignment plus, for every remaining
DIP, the cheapest candidate that could still participate in a feasible total
weight (using interval reachability of the remaining weight mass).  The
imbalance constraint θ is enforced exactly by tracking the min/max chosen
weight and pruning candidates outside ``[max_chosen - θ, min_chosen + θ]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.types import DipId
from repro.solver.assignment import AssignmentProblem, DipCandidates
from repro.solver.result import SolveResult, SolveStatus

_BACKEND_NAME = "branch_and_bound"


@dataclass
class _SearchState:
    """Mutable best-so-far state shared across the recursion."""

    best_cost: float
    best_selection: dict[DipId, int]
    nodes: int
    deadline: float | None
    timed_out: bool


def _suffix_weight_ranges(dips: list[DipCandidates]) -> list[tuple[float, float]]:
    """``ranges[i]`` = (min, max) total weight achievable by dips[i:]."""
    n = len(dips)
    ranges = [(0.0, 0.0)] * (n + 1)
    lo = hi = 0.0
    for i in range(n - 1, -1, -1):
        lo += dips[i].min_weight()
        hi += dips[i].max_weight()
        ranges[i] = (lo, hi)
    return ranges


def _suffix_min_costs(dips: list[DipCandidates]) -> list[float]:
    """``costs[i]`` = sum of per-DIP minimum latency over dips[i:]."""
    n = len(dips)
    costs = [0.0] * (n + 1)
    acc = 0.0
    for i in range(n - 1, -1, -1):
        acc += min(dips[i].latencies_ms)
        costs[i] = acc
    return costs


def solve_branch_and_bound(
    problem: AssignmentProblem,
    *,
    time_limit_s: float | None = None,
) -> SolveResult:
    """Solve the assignment problem exactly (subject to the time limit)."""
    start = time.perf_counter()
    deadline = start + time_limit_s if time_limit_s is not None else None

    # Sort DIPs so the ones with the fewest candidates are branched first;
    # sort candidates by latency so the greedy dive finds good incumbents.
    dips = [cand.sorted_by_weight() for cand in problem.dips]
    dips.sort(key=lambda c: c.count)

    tol = problem.total_weight_tolerance
    target = problem.total_weight
    theta = problem.theta

    ranges = _suffix_weight_ranges(dips)
    min_costs = _suffix_min_costs(dips)

    state = _SearchState(
        best_cost=float("inf"),
        best_selection={},
        nodes=0,
        deadline=deadline,
        timed_out=False,
    )

    selection: dict[DipId, int] = {}

    def recurse(i: int, weight_so_far: float, cost_so_far: float,
                w_min: float, w_max: float) -> None:
        if state.timed_out:
            return
        state.nodes += 1
        if state.deadline is not None and (state.nodes & 0x3FF) == 0:
            if time.perf_counter() > state.deadline:
                state.timed_out = True
                return

        if i == len(dips):
            if abs(weight_so_far - target) <= tol and cost_so_far < state.best_cost:
                state.best_cost = cost_so_far
                state.best_selection = dict(selection)
            return

        # Bound: even the cheapest completion cannot beat the incumbent.
        if cost_so_far + min_costs[i] >= state.best_cost:
            return

        # Bound: the remaining weight cannot reach the target band.
        lo, hi = ranges[i]
        if weight_so_far + hi < target - tol or weight_so_far + lo > target + tol:
            return

        cand = dips[i]
        # Candidate order: cheapest latency first, to find incumbents early.
        order = sorted(range(cand.count), key=lambda j: cand.latencies_ms[j])
        for j in order:
            w = cand.weights[j]
            if theta is not None:
                new_min = min(w_min, w)
                new_max = max(w_max, w)
                if new_max - new_min > theta + 1e-12:
                    continue
            else:
                new_min, new_max = min(w_min, w), max(w_max, w)
            selection[cand.dip] = j
            recurse(
                i + 1,
                weight_so_far + w,
                cost_so_far + cand.latencies_ms[j],
                new_min,
                new_max,
            )
            del selection[cand.dip]
            if state.timed_out:
                return

    recurse(0, 0.0, 0.0, float("inf"), float("-inf"))
    elapsed = time.perf_counter() - start

    if not state.best_selection:
        status = SolveStatus.TIMEOUT if state.timed_out else SolveStatus.INFEASIBLE
        return SolveResult(
            status=status,
            solve_time_s=elapsed,
            backend=_BACKEND_NAME,
            nodes_explored=state.nodes,
        )

    weights = problem.weights_of(state.best_selection)
    status = SolveStatus.FEASIBLE if state.timed_out else SolveStatus.OPTIMAL
    return SolveResult(
        status=status,
        objective_ms=state.best_cost,
        weights=weights,
        selection=state.best_selection,
        solve_time_s=elapsed,
        backend=_BACKEND_NAME,
        overloaded_dips=problem.overloaded_dips(weights),
        nodes_explored=state.nodes,
    )

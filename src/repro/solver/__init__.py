"""MILP solver substrate for KnapsackLB.

The paper's prototype uses COIN-OR CBC through PuLP; this package provides
the same capability through interchangeable backends:

* ``scipy`` — :func:`scipy.optimize.milp` (HiGHS), the default exact solver;
* ``branch_and_bound`` — a pure-Python exact solver (no SciPy needed for the
  core result, and its node counter is useful for scaling studies);
* ``greedy`` — a fast marginal-cost heuristic with local search;
* ``dp`` — a pseudo-polynomial dynamic program over a weight grid.

Use :func:`solve` to dispatch by backend name (``"auto"`` picks scipy and
falls back to branch-and-bound if SciPy's MILP is unavailable).
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConfigurationError
from repro.solver.assignment import (
    AssignmentProblem,
    DipCandidates,
    build_problem,
    uniform_candidates,
)
from repro.solver.branch_and_bound import solve_branch_and_bound
from repro.solver.dp import SolveCache, solve_dp
from repro.solver.greedy import solve_greedy
from repro.solver.result import SolveResult, SolveStatus

__all__ = [
    "AssignmentProblem",
    "DipCandidates",
    "SolveCache",
    "SolveResult",
    "SolveStatus",
    "available_backends",
    "build_problem",
    "solve",
    "solve_branch_and_bound",
    "solve_dp",
    "solve_greedy",
    "solve_scipy",
    "uniform_candidates",
]


def _load_scipy_backend() -> Callable[..., SolveResult] | None:
    try:
        from repro.solver.scipy_backend import solve_scipy as _solve
    except ImportError:  # pragma: no cover - SciPy is an install dependency
        return None
    return _solve


_scipy_solver = _load_scipy_backend()


def solve_scipy(problem: AssignmentProblem, **kwargs) -> SolveResult:
    """Solve with the SciPy/HiGHS backend (raises if SciPy is unavailable)."""
    if _scipy_solver is None:  # pragma: no cover
        raise ConfigurationError("SciPy MILP backend is not available")
    return _scipy_solver(problem, **kwargs)


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`solve`, in preference order for ``auto``."""
    names = ["branch_and_bound", "greedy", "dp"]
    if _scipy_solver is not None:
        names.insert(0, "scipy")
    return tuple(names)


def solve(
    problem: AssignmentProblem,
    *,
    backend: str = "auto",
    time_limit_s: float | None = None,
    cache: SolveCache | None = None,
    **kwargs,
) -> SolveResult:
    """Solve ``problem`` with the requested backend.

    ``backend="auto"`` uses SciPy/HiGHS when present and otherwise falls
    back to the pure-Python branch-and-bound.

    ``cache`` memoizes solved problems across calls (see
    :class:`~repro.solver.dp.SolveCache`): every backend is deterministic
    given the problem's candidate grid, so an unchanged problem — e.g. a
    fleet VIP whose measured curves did not move between control rounds —
    returns its previous assignment without re-solving.  The DP backend
    additionally scopes entries by its grid resolution.
    """
    if backend == "auto":
        backend = "scipy" if _scipy_solver is not None else "branch_and_bound"

    if backend == "dp":
        return solve_dp(problem, time_limit_s=time_limit_s, cache=cache, **kwargs)
    # The token carries the time limit and every backend-specific parameter
    # so differently configured solves of the same problem never alias.
    token = (backend, time_limit_s, tuple(sorted(kwargs.items())))
    if cache is not None:
        cached = cache.get(problem, token)
        if cached is not None:
            return cached
    if backend == "scipy":
        result = solve_scipy(problem, time_limit_s=time_limit_s, **kwargs)
    elif backend == "branch_and_bound":
        result = solve_branch_and_bound(problem, time_limit_s=time_limit_s, **kwargs)
    elif backend == "greedy":
        result = solve_greedy(problem, time_limit_s=time_limit_s, **kwargs)
    else:
        raise ConfigurationError(
            f"unknown solver backend {backend!r}; expected one of "
            f"{('auto',) + available_backends()}"
        )
    if cache is not None and result.status in (
        SolveStatus.OPTIMAL,
        SolveStatus.INFEASIBLE,
    ):
        # FEASIBLE from these backends can mean a wall-clock-truncated
        # incumbent (b&b/HiGHS) or a deadline-bounded local search
        # (greedy); caching it would freeze a suboptimal assignment.
        cache.put(problem, token, result)
    return result

"""The weight-assignment problem solved by KnapsackLB's ILP (Fig. 7).

The problem is a multiple-choice knapsack variant: for every DIP ``d`` we
must pick exactly one candidate weight from a discrete set ``W_d``; picking
weight ``w`` for DIP ``d`` costs ``l_{d,w}`` (the estimated mean latency at
that weight).  The chosen weights must sum to a target (1.0 for a full VIP,
or ``1 - w_s`` for the scheduler's residual problem, §4.6), and the spread
between the largest and smallest chosen weight may be bounded by θ.

All solver backends consume this representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.types import DipId
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DipCandidates:
    """The candidate weights and their estimated latencies for one DIP."""

    dip: DipId
    weights: tuple[float, ...]
    latencies_ms: tuple[float, ...]
    #: maximum weight known to be safe for this DIP (w_max); used only for
    #: post-hoc overload detection, not as a hard constraint.
    w_max: float | None = None

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.latencies_ms):
            raise ConfigurationError(
                f"DIP {self.dip}: weights and latencies length mismatch"
            )
        if not self.weights:
            raise ConfigurationError(f"DIP {self.dip}: empty candidate set")
        for w in self.weights:
            if w < 0 or w > 1:
                raise ConfigurationError(
                    f"DIP {self.dip}: candidate weight {w} outside [0, 1]"
                )
        for lat in self.latencies_ms:
            if lat < 0:
                raise ConfigurationError(
                    f"DIP {self.dip}: negative latency {lat}"
                )

    @property
    def count(self) -> int:
        return len(self.weights)

    def min_weight(self) -> float:
        return min(self.weights)

    def max_weight(self) -> float:
        return max(self.weights)

    def sorted_by_weight(self) -> "DipCandidates":
        """Return a copy whose candidates are sorted by ascending weight."""
        order = sorted(range(self.count), key=lambda i: self.weights[i])
        return DipCandidates(
            dip=self.dip,
            weights=tuple(self.weights[i] for i in order),
            latencies_ms=tuple(self.latencies_ms[i] for i in order),
            w_max=self.w_max,
        )


@dataclass(frozen=True)
class AssignmentProblem:
    """One instance of the Fig. 7 ILP.

    Parameters
    ----------
    dips:
        Candidate weights/latencies per DIP.
    total_weight:
        Target for the sum of chosen weights (constraint (b)); 1.0 for a
        full VIP.
    total_weight_tolerance:
        Allowed absolute deviation of the sum from ``total_weight``.  The
        paper's CBC model uses an exact equality over a uniform grid; with
        per-DIP grids an exact sum may not exist, so we allow a small band
        and normalize the resulting weights afterwards.
    theta:
        Maximum allowed spread ``ymax - ymin`` between chosen weights
        (constraint (c)); ``None`` disables the constraint (θ = ∞, as used
        in the paper's evaluation).
    """

    dips: tuple[DipCandidates, ...]
    total_weight: float = 1.0
    total_weight_tolerance: float = 0.01
    theta: float | None = None

    def __post_init__(self) -> None:
        if not self.dips:
            raise ConfigurationError("AssignmentProblem needs at least one DIP")
        seen: set[DipId] = set()
        for cand in self.dips:
            if cand.dip in seen:
                raise ConfigurationError(f"duplicate DIP id {cand.dip!r}")
            seen.add(cand.dip)
        if self.total_weight <= 0:
            raise ConfigurationError("total_weight must be positive")
        if self.total_weight_tolerance < 0:
            raise ConfigurationError("total_weight_tolerance must be >= 0")
        if self.theta is not None and self.theta < 0:
            raise ConfigurationError("theta must be >= 0 or None")

    @property
    def num_dips(self) -> int:
        return len(self.dips)

    @property
    def num_variables(self) -> int:
        return sum(c.count for c in self.dips)

    def dip_ids(self) -> tuple[DipId, ...]:
        return tuple(c.dip for c in self.dips)

    def candidates_for(self, dip: DipId) -> DipCandidates:
        for cand in self.dips:
            if cand.dip == dip:
                return cand
        raise KeyError(dip)

    def weight_bounds(self) -> tuple[float, float]:
        """Smallest and largest achievable total weight."""
        low = sum(c.min_weight() for c in self.dips)
        high = sum(c.max_weight() for c in self.dips)
        return low, high

    def is_sum_feasible(self) -> bool:
        """Whether the target sum lies within the achievable range."""
        low, high = self.weight_bounds()
        return (
            low - self.total_weight_tolerance
            <= self.total_weight
            <= high + self.total_weight_tolerance
        )

    def objective_of(self, selection: Mapping[DipId, int]) -> float:
        """Total latency of a selection (candidate index per DIP)."""
        total = 0.0
        for cand in self.dips:
            idx = selection[cand.dip]
            total += cand.latencies_ms[idx]
        return total

    def weights_of(self, selection: Mapping[DipId, int]) -> dict[DipId, float]:
        return {
            cand.dip: cand.weights[selection[cand.dip]] for cand in self.dips
        }

    def overloaded_dips(self, weights: Mapping[DipId, float]) -> tuple[DipId, ...]:
        """DIPs whose assigned weight exceeds their known safe maximum."""
        overloaded: list[DipId] = []
        for cand in self.dips:
            if cand.w_max is None:
                continue
            if weights.get(cand.dip, 0.0) > cand.w_max + 1e-12:
                overloaded.append(cand.dip)
        return tuple(overloaded)


def build_problem(
    latency_table: Mapping[DipId, Mapping[float, float]],
    *,
    total_weight: float = 1.0,
    total_weight_tolerance: float = 0.01,
    theta: float | None = None,
    w_max: Mapping[DipId, float] | None = None,
) -> AssignmentProblem:
    """Convenience constructor from ``{dip: {weight: latency_ms}}``."""
    w_max = w_max or {}
    dips = []
    for dip, table in latency_table.items():
        weights = tuple(sorted(table))
        latencies = tuple(float(table[w]) for w in weights)
        dips.append(
            DipCandidates(
                dip=dip,
                weights=weights,
                latencies_ms=latencies,
                w_max=w_max.get(dip),
            )
        )
    return AssignmentProblem(
        dips=tuple(dips),
        total_weight=total_weight,
        total_weight_tolerance=total_weight_tolerance,
        theta=theta,
    )


def uniform_candidates(
    dip: DipId,
    latency_fn,
    *,
    count: int,
    upper: float,
    lower: float = 0.0,
    w_max: float | None = None,
) -> DipCandidates:
    """Candidate weights spaced uniformly in ``[lower, upper]``.

    ``latency_fn`` maps a weight to the estimated latency (typically the
    fitted weight-latency curve's ``predict``).
    """
    if count < 2:
        raise ConfigurationError("count must be >= 2")
    if upper < lower:
        raise ConfigurationError("upper must be >= lower")
    if upper == lower:
        weights: Sequence[float] = [lower] * count
    else:
        step = (upper - lower) / (count - 1)
        weights = [lower + i * step for i in range(count)]
    clipped = [min(max(w, 0.0), 1.0) for w in weights]
    latencies = [max(0.0, float(latency_fn(w))) for w in clipped]
    return DipCandidates(
        dip=dip,
        weights=tuple(clipped),
        latencies_ms=tuple(latencies),
        w_max=w_max,
    )

"""Dynamic-programming solver for the weight-assignment problem.

The multiple-choice knapsack structure admits a pseudo-polynomial DP once
weights are discretized onto a fixed grid: state = (DIP index, total weight
in grid units), value = minimum latency.  This backend is exact *up to the
grid resolution* and is useful for moderate pool sizes where the exact
branch-and-bound would be slow and HiGHS is unavailable.

The imbalance constraint θ is not representable in this DP (it would require
tracking the running min/max weight); when θ is finite the caller should use
another backend.  ``solve_dp`` raises ``ConfigurationError`` in that case.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.solver.assignment import AssignmentProblem
from repro.solver.result import SolveResult, SolveStatus

_BACKEND_NAME = "dp"


def solve_dp(
    problem: AssignmentProblem,
    *,
    resolution: float = 1e-3,
    time_limit_s: float | None = None,
) -> SolveResult:
    """Solve via DP over a weight grid of step ``resolution``.

    The chosen-weight sum is required to land within the problem's tolerance
    band of the target, with quantization error bounded by
    ``num_dips * resolution / 2``; keep ``resolution`` well below
    ``total_weight_tolerance / num_dips`` for faithful results.
    """
    if problem.theta is not None:
        raise ConfigurationError("the DP backend does not support a finite theta")
    if resolution <= 0:
        raise ConfigurationError("resolution must be positive")

    start = time.perf_counter()
    deadline = start + time_limit_s if time_limit_s is not None else None

    dips = [cand.sorted_by_weight() for cand in problem.dips]
    n = len(dips)

    def to_units(w: float) -> int:
        return int(round(w / resolution))

    target_units = to_units(problem.total_weight)
    tol_units = max(1, to_units(problem.total_weight_tolerance))
    max_units = target_units + tol_units

    inf = float("inf")
    # cost[u] = min latency to reach exactly u units with the DIPs seen so far.
    cost = np.full(max_units + 1, inf)
    cost[0] = 0.0
    # choice[i][u] = candidate index picked for dips[i] to reach u optimally.
    choice: list[np.ndarray] = []

    for i, cand in enumerate(dips):
        if deadline is not None and time.perf_counter() > deadline:
            return SolveResult(
                status=SolveStatus.TIMEOUT,
                solve_time_s=time.perf_counter() - start,
                backend=_BACKEND_NAME,
            )
        new_cost = np.full(max_units + 1, inf)
        new_choice = np.full(max_units + 1, -1, dtype=np.int32)
        for j in range(cand.count):
            units = to_units(cand.weights[j])
            lat = cand.latencies_ms[j]
            if units > max_units:
                continue
            # Shift the reachable prefix by `units` and add this latency.
            if units == 0:
                shifted = cost + lat
            else:
                shifted = np.full(max_units + 1, inf)
                shifted[units:] = cost[: max_units + 1 - units] + lat
            better = shifted < new_cost
            new_cost = np.where(better, shifted, new_cost)
            new_choice = np.where(better, j, new_choice)
        cost = new_cost
        choice.append(new_choice)

    lo = max(0, target_units - tol_units)
    hi = max_units
    window = cost[lo : hi + 1]
    if not np.isfinite(window).any():
        return SolveResult(
            status=SolveStatus.INFEASIBLE,
            solve_time_s=time.perf_counter() - start,
            backend=_BACKEND_NAME,
        )
    best_offset = int(np.argmin(window))
    best_units = lo + best_offset

    # Backtrack the choices.
    selection: dict[DipId, int] = {}
    units = best_units
    for i in range(n - 1, -1, -1):
        j = int(choice[i][units])
        if j < 0:
            return SolveResult(
                status=SolveStatus.ERROR,
                solve_time_s=time.perf_counter() - start,
                backend=_BACKEND_NAME,
            )
        cand = dips[i]
        selection[cand.dip] = j
        units -= to_units(cand.weights[j])

    weights = problem.weights_of(selection)
    elapsed = time.perf_counter() - start
    return SolveResult(
        status=SolveStatus.FEASIBLE,
        objective_ms=problem.objective_of(selection),
        weights=weights,
        selection=selection,
        solve_time_s=elapsed,
        backend=_BACKEND_NAME,
        overloaded_dips=problem.overloaded_dips(weights),
    )

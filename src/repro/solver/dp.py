"""Dynamic-programming solver for the weight-assignment problem.

The multiple-choice knapsack structure admits a pseudo-polynomial DP once
weights are discretized onto a fixed grid: state = (DIP index, total weight
in grid units), value = minimum latency.  This backend is exact *up to the
grid resolution* and is useful for moderate pool sizes where the exact
branch-and-bound would be slow and HiGHS is unavailable.

The imbalance constraint θ is not representable in this DP (it would require
tracking the running min/max weight); when θ is finite the caller should use
another backend.  ``solve_dp`` raises ``ConfigurationError`` in that case.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import replace
from typing import Hashable

import numpy as np

from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.solver.assignment import AssignmentProblem
from repro.solver.result import SolveResult, SolveStatus

_BACKEND_NAME = "dp"


class SolveCache:
    """Warm-start memo for solver calls, keyed by the exact problem grid.

    An :class:`AssignmentProblem` is a frozen tree of tuples — candidate
    weights, their latencies, the target sum and tolerance — so it is
    hashable, and it *fully determines* the solution: two control rounds
    that produced the same candidate grid (the DP's "(weights, capacity
    units)" table inputs) must produce the same assignment.  Callers that
    re-solve per control tick (the fleet control plane, one ILP per VIP per
    round) share one cache so VIPs whose measured curves did not move skip
    the solve entirely.

    Only deterministic terminal outcomes may be cached; what counts as
    terminal is backend-specific (the *caller* decides): the DP's FEASIBLE
    is exact up to its grid, while branch-and-bound and HiGHS return
    FEASIBLE for a wall-clock-truncated incumbent — caching those would
    freeze a suboptimal assignment, so the generic :func:`repro.solver.solve`
    layer stores only OPTIMAL/INFEASIBLE.  TIMEOUT is refused here as a
    backstop.  Bounded LRU.
    """

    __slots__ = ("_store", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ConfigurationError("maxsize must be >= 1")
        self._store: "OrderedDict[Hashable, SolveResult]" = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(
        self, problem: AssignmentProblem, token: Hashable
    ) -> SolveResult | None:
        """The memoized result for ``(problem, token)``, re-stamped as free.

        ``token`` scopes the entry to the backend and its grid parameters
        (e.g. the DP resolution) so differently-quantized solves of the
        same problem never alias.
        """
        key = (problem, token)
        cached = self._store.get(key)
        if cached is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return replace(cached, solve_time_s=0.0)

    def put(
        self, problem: AssignmentProblem, token: Hashable, result: SolveResult
    ) -> None:
        if result.status is SolveStatus.TIMEOUT:
            return
        self._store[(problem, token)] = result
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)


def solve_dp(
    problem: AssignmentProblem,
    *,
    resolution: float = 1e-3,
    time_limit_s: float | None = None,
    cache: SolveCache | None = None,
) -> SolveResult:
    """Solve via DP over a weight grid of step ``resolution``.

    The chosen-weight sum is required to land within the problem's tolerance
    band of the target, with quantization error bounded by
    ``num_dips * resolution / 2``; keep ``resolution`` well below
    ``total_weight_tolerance / num_dips`` for faithful results.

    ``cache`` warm-starts repeat solves: an unchanged problem (same
    candidate weights and latencies, same target band) returns the
    memoized table's answer without rebuilding the DP.
    """
    if problem.theta is not None:
        raise ConfigurationError("the DP backend does not support a finite theta")
    if resolution <= 0:
        raise ConfigurationError("resolution must be positive")
    token = (_BACKEND_NAME, resolution)
    if cache is not None:
        cached = cache.get(problem, token)
        if cached is not None:
            return cached

    start = time.perf_counter()
    deadline = start + time_limit_s if time_limit_s is not None else None

    dips = [cand.sorted_by_weight() for cand in problem.dips]
    n = len(dips)

    def to_units(w: float) -> int:
        return int(round(w / resolution))

    target_units = to_units(problem.total_weight)
    tol_units = max(1, to_units(problem.total_weight_tolerance))
    max_units = target_units + tol_units

    inf = float("inf")
    # cost[u] = min latency to reach exactly u units with the DIPs seen so far.
    cost = np.full(max_units + 1, inf)
    cost[0] = 0.0
    # choice[i][u] = candidate index picked for dips[i] to reach u optimally.
    choice: list[np.ndarray] = []

    for i, cand in enumerate(dips):
        if deadline is not None and time.perf_counter() > deadline:
            return SolveResult(
                status=SolveStatus.TIMEOUT,
                solve_time_s=time.perf_counter() - start,
                backend=_BACKEND_NAME,
            )
        new_cost = np.full(max_units + 1, inf)
        new_choice = np.full(max_units + 1, -1, dtype=np.int32)
        for j in range(cand.count):
            units = to_units(cand.weights[j])
            lat = cand.latencies_ms[j]
            if units > max_units:
                continue
            # Shift the reachable prefix by `units` and add this latency.
            if units == 0:
                shifted = cost + lat
            else:
                shifted = np.full(max_units + 1, inf)
                shifted[units:] = cost[: max_units + 1 - units] + lat
            better = shifted < new_cost
            new_cost = np.where(better, shifted, new_cost)
            new_choice = np.where(better, j, new_choice)
        cost = new_cost
        choice.append(new_choice)

    lo = max(0, target_units - tol_units)
    hi = max_units
    window = cost[lo : hi + 1]
    if not np.isfinite(window).any():
        result = SolveResult(
            status=SolveStatus.INFEASIBLE,
            solve_time_s=time.perf_counter() - start,
            backend=_BACKEND_NAME,
        )
        if cache is not None:
            cache.put(problem, token, result)
        return result
    best_offset = int(np.argmin(window))
    best_units = lo + best_offset

    # Backtrack the choices.
    selection: dict[DipId, int] = {}
    units = best_units
    for i in range(n - 1, -1, -1):
        j = int(choice[i][units])
        if j < 0:
            return SolveResult(
                status=SolveStatus.ERROR,
                solve_time_s=time.perf_counter() - start,
                backend=_BACKEND_NAME,
            )
        cand = dips[i]
        selection[cand.dip] = j
        units -= to_units(cand.weights[j])

    weights = problem.weights_of(selection)
    elapsed = time.perf_counter() - start
    result = SolveResult(
        status=SolveStatus.FEASIBLE,
        objective_ms=problem.objective_of(selection),
        weights=weights,
        selection=selection,
        solve_time_s=elapsed,
        backend=_BACKEND_NAME,
        overloaded_dips=problem.overloaded_dips(weights),
    )
    if cache is not None:
        cache.put(problem, token, result)
    return result

"""Greedy marginal-cost heuristic for the weight-assignment problem.

Used both as (a) a fast fallback when the exact backends time out and (b) a
baseline for the solver ablation bench.  The heuristic starts from every
DIP's smallest candidate weight and repeatedly upgrades the DIP whose next
candidate adds the least latency per unit of weight gained, until the total
weight reaches the target band.  A final local-search pass swaps single-DIP
choices if that lowers the objective while staying feasible.
"""

from __future__ import annotations

import time

from repro.core.types import DipId
from repro.solver.assignment import AssignmentProblem
from repro.solver.result import SolveResult, SolveStatus

_BACKEND_NAME = "greedy"


def solve_greedy(
    problem: AssignmentProblem,
    *,
    time_limit_s: float | None = None,
    local_search_passes: int = 2,
) -> SolveResult:
    """Solve heuristically; the result is feasible but not necessarily optimal."""
    start = time.perf_counter()
    deadline = start + time_limit_s if time_limit_s is not None else None

    dips = [cand.sorted_by_weight() for cand in problem.dips]
    tol = problem.total_weight_tolerance
    target = problem.total_weight
    theta = problem.theta

    # Start at the smallest candidate weight of every DIP.
    selection: dict[DipId, int] = {cand.dip: 0 for cand in dips}
    index_of = {cand.dip: i for i, cand in enumerate(dips)}
    total = sum(cand.weights[0] for cand in dips)

    def imbalance_ok(sel: dict[DipId, int]) -> bool:
        if theta is None:
            return True
        chosen = [dips[index_of[d]].weights[j] for d, j in sel.items()]
        return (max(chosen) - min(chosen)) <= theta + 1e-12

    # Greedy upgrades until the target band is reached (or no move remains).
    while total < target - tol:
        if deadline is not None and time.perf_counter() > deadline:
            break
        best_dip: DipId | None = None
        best_rate = float("inf")
        for cand in dips:
            j = selection[cand.dip]
            if j + 1 >= cand.count:
                continue
            dw = cand.weights[j + 1] - cand.weights[j]
            if dw <= 0:
                continue
            dl = cand.latencies_ms[j + 1] - cand.latencies_ms[j]
            rate = dl / dw
            if rate < best_rate:
                best_rate = rate
                best_dip = cand.dip
        if best_dip is None:
            break
        cand = dips[index_of[best_dip]]
        j = selection[best_dip]
        total += cand.weights[j + 1] - cand.weights[j]
        selection[best_dip] = j + 1

    # If we overshot, walk back the cheapest downgrades.
    while total > target + tol:
        if deadline is not None and time.perf_counter() > deadline:
            break
        best_dip = None
        best_rate = float("-inf")
        for cand in dips:
            j = selection[cand.dip]
            if j == 0:
                continue
            dw = cand.weights[j] - cand.weights[j - 1]
            if dw <= 0:
                continue
            dl = cand.latencies_ms[j] - cand.latencies_ms[j - 1]
            rate = dl / dw
            if rate > best_rate:
                best_rate = rate
                best_dip = cand.dip
        if best_dip is None:
            break
        cand = dips[index_of[best_dip]]
        j = selection[best_dip]
        total -= cand.weights[j] - cand.weights[j - 1]
        selection[best_dip] = j - 1

    feasible = abs(total - target) <= tol and imbalance_ok(selection)

    # Local search: try replacing one DIP's candidate with any other that
    # keeps the sum in band and lowers the objective.
    if feasible:
        for _ in range(local_search_passes):
            improved = False
            for cand in dips:
                if deadline is not None and time.perf_counter() > deadline:
                    break
                current_j = selection[cand.dip]
                for j in range(cand.count):
                    if j == current_j:
                        continue
                    new_total = total - cand.weights[current_j] + cand.weights[j]
                    if abs(new_total - target) > tol:
                        continue
                    if cand.latencies_ms[j] >= cand.latencies_ms[current_j]:
                        continue
                    trial = dict(selection)
                    trial[cand.dip] = j
                    if not imbalance_ok(trial):
                        continue
                    selection = trial
                    total = new_total
                    current_j = j
                    improved = True
            if not improved:
                break

    elapsed = time.perf_counter() - start
    if not feasible:
        return SolveResult(
            status=SolveStatus.INFEASIBLE,
            solve_time_s=elapsed,
            backend=_BACKEND_NAME,
        )

    weights = problem.weights_of(selection)
    return SolveResult(
        status=SolveStatus.FEASIBLE,
        objective_ms=problem.objective_of(selection),
        weights=weights,
        selection=selection,
        solve_time_s=elapsed,
        backend=_BACKEND_NAME,
        overloaded_dips=problem.overloaded_dips(weights),
    )

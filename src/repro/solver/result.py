"""Solver result types shared by all MILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.types import DipId


class SolveStatus(enum.Enum):
    """Outcome of one solver invocation."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    TIMEOUT = "timeout"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass(frozen=True)
class SolveResult:
    """The outcome of solving one weight-assignment problem.

    ``selection`` maps each DIP to the index of the chosen candidate weight
    in the problem's candidate list for that DIP; ``weights`` maps each DIP
    to the chosen weight value.
    """

    status: SolveStatus
    objective_ms: float | None = None
    weights: Mapping[DipId, float] = field(default_factory=dict)
    selection: Mapping[DipId, int] = field(default_factory=dict)
    solve_time_s: float = 0.0
    backend: str = ""
    #: DIPs whose chosen weight exceeds their known safe maximum ("DO" in Fig. 8).
    overloaded_dips: tuple[DipId, ...] = ()
    #: number of branch-and-bound nodes / simplex iterations, when available.
    nodes_explored: int = 0

    @property
    def is_overloaded(self) -> bool:
        return bool(self.overloaded_dips)

    @property
    def total_weight(self) -> float:
        return float(sum(self.weights.values()))

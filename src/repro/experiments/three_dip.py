"""Fig. 14: the 3-DIP pool at capacities 1×, 0.8× and 0.6× (§6.2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import KnapsackLBController
from repro.core.types import DipId
from repro.lb import LeastConnection, MuxPool, RoundRobin, WeightedRoundRobin
from repro.sim import FluidCluster, MetricsCollector, RequestCluster, max_latency_gain
from repro.workloads import build_graded_three_dip_pool


@dataclass(frozen=True)
class ThreeDipRun:
    policy: str
    cpu_utilization: dict[DipId, float]
    mean_latency_ms: dict[DipId, float]
    overall_latency_ms: float
    metrics: MetricsCollector = field(repr=False, compare=False)


@dataclass(frozen=True)
class ThreeDipComparison:
    runs: dict[str, ThreeDipRun]
    klb_weights: dict[DipId, float]

    def max_gain_percent(self, baseline: str) -> float:
        return max_latency_gain(self.runs[baseline].metrics, self.runs["klb"].metrics) * 100.0


def run_three_dip_comparison(
    *,
    ratios: tuple[float, float, float] = (1.0, 0.8, 0.6),
    load_fraction: float = 0.75,
    requests: int = 6000,
    num_muxes: int = 8,
    seed: int = 33,
) -> ThreeDipComparison:
    """Fig. 14: (weighted) RR and LC vs KnapsackLB on the graded pool.

    RR and LC use weights proportional to core counts (all 1-core → equal),
    as in the paper; KnapsackLB learns its weights from probing.
    """
    pool = build_graded_three_dip_pool(ratios, seed=seed)
    rate = sum(d.capacity_rps for d in pool.values()) * load_fraction

    fluid = FluidCluster(
        dips=build_graded_three_dip_pool(ratios, seed=seed),
        total_rate_rps=rate,
        policy_name="wrr",
    )
    controller = KnapsackLBController("vip-fig14", fluid)
    klb_weights = dict(controller.converge().weights)

    def evaluate(name: str, factory) -> ThreeDipRun:
        dips = build_graded_three_dip_pool(ratios, seed=seed)
        cluster = RequestCluster(dips, factory(dips), rate_rps=rate, seed=seed)
        metrics = cluster.run(num_requests=requests, warmup_s=2.0).metrics
        return ThreeDipRun(
            policy=name,
            cpu_utilization=metrics.utilization(),
            mean_latency_ms={d: metrics.mean_latency_ms(dips=[d]) for d in dips},
            overall_latency_ms=metrics.mean_latency_ms(),
            metrics=metrics,
        )

    runs = {
        "rr": evaluate("rr", lambda dips: RoundRobin(list(dips))),
        "lc": evaluate(
            "lc",
            lambda dips: MuxPool(lambda: LeastConnection(list(dips)), num_muxes=num_muxes),
        ),
        "klb": evaluate(
            "klb", lambda dips: WeightedRoundRobin(list(dips), weights=klb_weights)
        ),
    }
    return ThreeDipComparison(runs=runs, klb_weights=klb_weights)

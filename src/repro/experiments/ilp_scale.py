"""ILP scalability experiments: Fig. 8, Table 6 and Table 7.

All three use synthetic pools of identical DIPs whose weight-latency curve is
the F-series curve (as in §6.6), with the traffic set to 80 % of capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import IlpConfig
from repro.core.curve import WeightLatencyCurve
from repro.core.ilp import build_assignment_problem, solve_assignment
from repro.core.multistep import compute_weights_multistep
from repro.exceptions import InfeasibleError, SolverTimeoutError


def f_series_like_curve(num_dips: int, *, load_fraction: float = 0.8) -> WeightLatencyCurve:
    """A synthetic F-series weight-latency curve for a pool of ``num_dips``.

    The capacity-equivalent weight of one DIP in a pool of identical DIPs at
    ``load_fraction`` of total capacity is ``1 / (num_dips · load_fraction)``;
    the quadratic is shaped so latency roughly quadruples at that weight.
    """
    w_cap = 1.0 / (num_dips * load_fraction)
    l0 = 2.6
    quad = 3.0 * l0 / (w_cap**2)
    return WeightLatencyCurve(coefficients=(quad, 0.0, l0), l0_ms=l0, w_max=w_cap)


@dataclass(frozen=True)
class IlpGridCell:
    """One cell of Fig. 8: #DIPs × #weights-per-DIP."""

    num_dips: int
    weights_per_dip: int
    outcome: str  # a time string, "DO" (DIP overload) or "TO" (timeout)
    solve_time_s: float | None


def run_ilp_grid(
    *,
    dip_counts: tuple[int, ...] = (10, 50, 100, 500),
    weight_counts: tuple[int, ...] = (10, 50, 100, 500),
    time_limit_s: float = 30.0,
    backend: str = "auto",
) -> list[IlpGridCell]:
    """Fig. 8: single-shot ILP over naive [0, 1] weight grids.

    As in the paper, candidate weights are spread uniformly over [0, 1]
    (not [0, w_max]); with many DIPs the grid cannot express small weights,
    so the solver either overloads DIPs ("DO") or times out ("TO").
    """
    cells: list[IlpGridCell] = []
    for num_dips in dip_counts:
        curve = f_series_like_curve(num_dips)
        for num_weights in weight_counts:
            config = IlpConfig(
                weights_per_dip=num_weights,
                time_limit_s=time_limit_s,
                backend=backend,
            )
            curves = {f"d{i}": curve for i in range(num_dips)}
            # Naive grid over [0, 1]: pass explicit windows to disable the
            # [0, w_max] restriction KnapsackLB normally applies.
            windows = {dip: (0.0, 1.0) for dip in curves}
            problem = build_assignment_problem(
                curves, config=config, windows=windows
            )
            try:
                outcome = solve_assignment("fig8", problem, config=config)
            except SolverTimeoutError:
                cells.append(IlpGridCell(num_dips, num_weights, "TO", None))
                continue
            except InfeasibleError:
                cells.append(IlpGridCell(num_dips, num_weights, "DO", None))
                continue
            result = outcome.solver_result
            if result.is_overloaded:
                cells.append(
                    IlpGridCell(num_dips, num_weights, "DO", result.solve_time_s)
                )
            else:
                cells.append(
                    IlpGridCell(
                        num_dips,
                        num_weights,
                        f"{result.solve_time_s * 1000:.0f}ms",
                        result.solve_time_s,
                    )
                )
    return cells


@dataclass(frozen=True)
class IlpScalePoint:
    """One column of Table 6: ILP running time vs #DIPs."""

    num_dips: int
    solve_time_s: float
    objective_ms: float


def run_ilp_scaling(
    *,
    dip_counts: tuple[int, ...] = (10, 50, 100, 500, 1000),
    weights_per_dip: int = 10,
    backend: str = "auto",
) -> list[IlpScalePoint]:
    """Table 6: ILP running time with 10 candidate weights in [0, w_max]."""
    points: list[IlpScalePoint] = []
    for num_dips in dip_counts:
        curve = f_series_like_curve(num_dips)
        curves = {f"d{i}": curve for i in range(num_dips)}
        config = IlpConfig(weights_per_dip=weights_per_dip, backend=backend)
        problem = build_assignment_problem(curves, config=config)
        outcome = solve_assignment("table6", problem, config=config)
        points.append(
            IlpScalePoint(
                num_dips=num_dips,
                solve_time_s=outcome.solver_result.solve_time_s,
                objective_ms=outcome.solver_result.objective_ms or 0.0,
            )
        )
    return points


@dataclass(frozen=True)
class MultiStepComparison:
    """Table 7: one fine-grained shot vs two coarse steps."""

    fine_points: int
    fine_time_s: float
    fine_objective: float
    multistep_points: int
    multistep_time_s: float
    multistep_objective: float

    @property
    def speedup(self) -> float:
        if self.multistep_time_s <= 0:
            return float("inf")
        return self.fine_time_s / self.multistep_time_s

    @property
    def accuracy_percent(self) -> float:
        """Objective accuracy of the multi-step result vs the fine result."""
        if self.multistep_objective <= 0:
            return 100.0
        return min(1.0, self.fine_objective / self.multistep_objective) * 100.0


def run_multistep_accuracy(
    *,
    num_dips: int = 100,
    fine_points: int = 100,
    coarse_points: int = 10,
    backend: str = "auto",
) -> MultiStepComparison:
    """Table 7: accuracy and running time of the multi-step ILP (§4.4)."""
    curve = f_series_like_curve(num_dips)
    curves = {f"d{i}": curve for i in range(num_dips)}

    fine_config = IlpConfig(weights_per_dip=fine_points, backend=backend)
    fine = compute_weights_multistep(
        "table7-fine", curves, config=fine_config, force_multistep=False
    )

    coarse_config = IlpConfig(weights_per_dip=coarse_points, backend=backend)
    multi = compute_weights_multistep(
        "table7-multi", curves, config=coarse_config, force_multistep=True
    )

    return MultiStepComparison(
        fine_points=fine_points,
        fine_time_s=fine.total_solve_time_s,
        fine_objective=fine.assignment.objective_ms or 0.0,
        multistep_points=coarse_points,
        multistep_time_s=multi.total_solve_time_s,
        multistep_objective=multi.assignment.objective_ms or 0.0,
    )

"""A registry of runnable scenarios over the fleet control plane.

The paper's evaluation is a fixed set of figures; the reproduction's north
star is *opening new scenarios*.  This module gives every workload shape a
name: a scenario is a parameterised runner registered under a slug, so
experiments, benchmarks and tests all launch the same configurations via
:func:`run_scenario` instead of hand-wiring fleets.

Built-in scenarios cover the single-VIP paths (as one-VIP fleets) plus the
multi-VIP shapes the :class:`~repro.core.fleet_controller.FleetController`
enables: shared-DIP contention, staggered VIP onboarding and heterogeneous
per-VIP traffic mixes.

The time-varying scenarios (shared-DIP antagonist squeeze, staggered
onboarding, DIP outage/recovery, diurnal surges) are *pure timelines*: each
one builds a declarative :class:`~repro.api.spec.ExperimentSpec` whose
:class:`~repro.api.spec.TimelineSpec` declares the mid-run events, executes
it through :func:`repro.api.execute`, and derives its headline metrics from
the result's windowed time-series — no hand-driven perturbation loops.
"""

from __future__ import annotations

import contextlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.api.result import RunWindow
from repro.api.runners import execute
from repro.api.spec import (
    ArrivalSpec,
    ChaosSpec,
    ControllerSpec,
    EventSpec,
    ExperimentSpec,
    FleetSpec,
    HealthCheckSpec,
    PoolSpec,
    RetryPolicy,
    ServiceSpec,
    TimelineSpec,
    WorkloadSpec,
)
from repro.analysis.reporting import format_table
from repro.backends import custom_vm_type
from repro.core import FleetController, KnapsackLBController
from repro.exceptions import ConfigurationError
from repro.lb import make_policy, policy_registry, policy_seed_kwargs
from repro.sim import FluidCluster, RequestCluster
from repro.sim.fleet import Fleet
from repro.workloads import (
    build_pool,
    build_shared_dip_fleet,
    build_testbed_cluster,
    build_uniform_pool,
    fleet_from_pool,
)

ScenarioRunner = Callable[..., "ScenarioResult"]

#: observers the surrounding ScenarioRunner asked to stream this run to.
_ACTIVE_OBSERVERS: tuple = ()


@contextlib.contextmanager
def observing(observers: tuple = ()) -> Iterator[None]:
    """Route the inner ``execute`` of timeline scenarios to ``observers``.

    The scenario registry predates the observer protocol, so scenario
    runners keep their plain ``(**params)`` signatures; the bridging
    :class:`repro.api.runners.ScenarioRunner` wraps ``scenario.run`` in this
    context instead, and timeline scenarios execute their inner specs via
    :func:`_execute` — which is how ``python -m repro run <scenario>
    --watch`` streams telemetry from the spec the scenario builds.
    """
    global _ACTIVE_OBSERVERS
    previous = _ACTIVE_OBSERVERS
    _ACTIVE_OBSERVERS = tuple(observers)
    try:
        yield
    finally:
        _ACTIVE_OBSERVERS = previous


def _execute(spec: ExperimentSpec):
    """Run an inner spec, forwarding any observers of the outer scenario run."""
    return execute(spec, observers=_ACTIVE_OBSERVERS)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: headline metrics plus raw detail."""

    name: str
    params: dict[str, Any]
    metrics: dict[str, float]
    #: windowed time-series when the scenario ran a timeline.
    windows: tuple[RunWindow, ...] = ()
    detail: Any = None


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: its runner and default parameters."""

    name: str
    summary: str
    runner: ScenarioRunner
    defaults: Mapping[str, Any] = field(default_factory=dict)

    @property
    def parameters(self) -> tuple[str, ...]:
        """The override keys this scenario accepts (its defaults' keys)."""
        return tuple(sorted(self.defaults))

    def run(self, **overrides: Any) -> ScenarioResult:
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown:
            valid = ", ".join(self.parameters) or "(none)"
            raise ConfigurationError(
                f"unknown parameter {unknown[0]!r} for scenario {self.name!r}; "
                f"valid parameters: {valid}"
            )
        params = {**self.defaults, **overrides}
        return self.runner(**params)


_REGISTRY: dict[str, ScenarioSpec] = {}


def scenario(
    name: str, summary: str, **defaults: Any
) -> Callable[[ScenarioRunner], ScenarioRunner]:
    """Register ``runner`` under ``name`` with ``defaults`` as parameters."""

    def register(runner: ScenarioRunner) -> ScenarioRunner:
        if name in _REGISTRY:
            raise ConfigurationError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioSpec(
            name=name, summary=summary, runner=runner, defaults=defaults
        )
        return runner

    return register


def list_scenarios() -> tuple[ScenarioSpec, ...]:
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def run_scenario(name: str, **overrides: Any) -> ScenarioResult:
    """Run a registered scenario with its defaults overridden by kwargs."""
    return get_scenario(name).run(**overrides)


# ---------------------------------------------------------------------------
# single-VIP scenarios (one-VIP fleets — the paper's original shape)
# ---------------------------------------------------------------------------


@scenario(
    "single_vip_testbed",
    "The Table 3 testbed as a one-VIP fleet driven to convergence",
    load_fraction=0.70,
    seed=7,
)
def run_single_vip_testbed(*, load_fraction: float, seed: int) -> ScenarioResult:
    cluster = build_testbed_cluster(load_fraction=load_fraction, seed=seed)
    controller = KnapsackLBController("vip-1", cluster)
    assignment = controller.converge()
    klb_latency = cluster.state().overall_mean_latency_ms()
    cluster.set_weights({d: 1 / len(cluster.dips) for d in cluster.dips})
    equal_latency = cluster.state().overall_mean_latency_ms()
    cluster.set_weights(dict(assignment.weights))
    return ScenarioResult(
        name="single_vip_testbed",
        params={"load_fraction": load_fraction, "seed": seed},
        metrics={
            "mean_latency_ms": klb_latency,
            "equal_split_latency_ms": equal_latency,
            "latency_gain": equal_latency / klb_latency,
            "max_utilization": max(cluster.state().utilization.values()),
        },
        detail=assignment,
    )


# ---------------------------------------------------------------------------
# multi-VIP scenarios (the fleet control plane)
# ---------------------------------------------------------------------------


def _shared_dip_for(
    *, num_vips: int, num_dips: int, load_fraction: float, seed: int
) -> str:
    """A DIP served by more than one VIP under the deterministic windowing."""
    probe = fleet_from_pool(
        build_pool("mixed_core", num_dips=num_dips, seed=seed),
        num_vips=num_vips,
        load_fraction=load_fraction,
    )
    shared = probe.shared_dip_ids()
    return shared[0] if shared else next(iter(probe.dips))


@scenario(
    "multi_vip_shared_dips",
    "N VIPs contending for a shared DIP fleet, squeezed by a timeline event",
    num_vips=8,
    num_dips=32,
    load_fraction=0.55,
    capacity_squeeze=0.6,
    settle_steps=6,
    control_steps=4,
    seed=21,
)
def run_multi_vip_shared_dips(
    *,
    num_vips: int,
    num_dips: int,
    load_fraction: float,
    capacity_squeeze: float,
    settle_steps: int,
    control_steps: int,
    seed: int,
) -> ScenarioResult:
    """Shared-DIP contention end to end: measurement → ILP → dynamics.

    A pure timeline over the declarative API: the fleet converges, then a
    ``capacity_ratio`` event squeezes one *shared* DIP mid-run to exercise
    the §4.5 detection path under contention — every VIP sharing that DIP
    sees the latency rise and reacts independently, window by window, for
    ``control_steps`` windows after the squeeze.
    """
    window_s = 5.0  # one control tick per window (the paper's 5 s loop)
    squeeze_at = 2 * window_s
    squeezed = _shared_dip_for(
        num_vips=num_vips,
        num_dips=num_dips,
        load_fraction=load_fraction,
        seed=seed,
    )
    spec = ExperimentSpec(
        name="multi_vip_shared_dips",
        runner="fleet",
        pool=PoolSpec(kind="mixed_core", num_dips=num_dips),
        workload=WorkloadSpec(load_fraction=load_fraction),
        controller=ControllerSpec(enabled=True, settle_steps=settle_steps),
        fleet=FleetSpec(num_vips=num_vips),
        timeline=TimelineSpec(
            events=(
                EventSpec(
                    time_s=squeeze_at,
                    kind="capacity_ratio",
                    dip=squeezed,
                    value=capacity_squeeze,
                ),
            ),
            window_s=window_s,
            horizon_s=squeeze_at + max(1, control_steps) * window_s,
        ),
        seed=seed,
    )
    result = _execute(spec)
    plane = result.detail["plane"]
    shared_now = plane.fleet.shared_dip_ids()
    if shared_now and squeezed not in shared_now:
        # The probe build in _shared_dip_for must stay bit-identical to the
        # FleetRunner's; fail loudly if the two ever diverge instead of
        # silently squeezing a non-shared DIP.
        raise ConfigurationError(
            f"squeezed DIP {squeezed!r} is not shared in the runner-built "
            "fleet; _shared_dip_for diverged from FleetRunner"
        )
    pre = [w for w in result.windows if w.end_s <= squeeze_at]
    post = [w for w in result.windows if w.start_s >= squeeze_at]
    return ScenarioResult(
        name="multi_vip_shared_dips",
        params={
            "num_vips": num_vips,
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "capacity_squeeze": capacity_squeeze,
            "control_steps": control_steps,
            "seed": seed,
        },
        metrics={
            "measurement_rounds": result.metrics["measurement_rounds"],
            "interleaved_rounds": float(
                sum(1 for r in plane.round_log if len(r.measured) > 1)
            ),
            "vips_with_assignment": result.metrics["vips_with_assignment"],
            "shared_dips": result.metrics["shared_dips"],
            "converged_latency_ms": pre[-1].metrics["mean_latency_ms"],
            "converged_max_utilization": pre[-1].metrics["max_utilization"],
            "post_squeeze_events": sum(
                w.metrics.get("controller_events", 0.0) for w in post
            ),
            "post_squeeze_reprograms": sum(
                w.metrics.get("reprogrammed", 0.0) for w in post
            ),
            "final_max_utilization": result.windows[-1].metrics[
                "max_utilization"
            ],
            "converge_wall_s": result.provenance.wall_clock_s,
        },
        windows=result.windows,
        detail={
            "result": result,
            "plane": plane,
            "squeezed_dip": squeezed,
        },
    )


@scenario(
    "staggered_vip_onboarding",
    "VIPs join a live fleet one at a time while the rest stay in control",
    num_vips=6,
    num_dips=24,
    initial_vips=3,
    load_fraction=0.5,
    seed=33,
)
def run_staggered_vip_onboarding(
    *,
    num_vips: int,
    num_dips: int,
    initial_vips: int,
    load_fraction: float,
    seed: int,
) -> ScenarioResult:
    """Onboard VIPs in waves; steady VIPs keep their control loop running.

    The second wave's measurement traffic lands on DIPs the first wave
    already uses, so the steady VIPs' §4.5 detectors see real contention
    changes while the newcomers explore.
    """
    if not 1 <= initial_vips <= num_vips:
        raise ConfigurationError("initial_vips must be in [1, num_vips]")
    # A pure timeline: the first wave converges inside the fleet runner,
    # each later VIP arrives as a `vip_onboard` event (one per window pair),
    # and three tail windows settle the fleet afterwards.
    window_s = 10.0
    events = tuple(
        EventSpec(
            time_s=(wave + 1) * 2 * window_s,
            kind="vip_onboard",
            vip=f"VIP-{initial_vips + wave + 1}",
        )
        for wave in range(num_vips - initial_vips)
    )
    last_event = events[-1].time_s if events else 0.0
    spec = ExperimentSpec(
        name="staggered_vip_onboarding",
        runner="fleet",
        pool=PoolSpec(kind="mixed_core", num_dips=num_dips),
        workload=WorkloadSpec(load_fraction=load_fraction),
        controller=ControllerSpec(enabled=True, settle_steps=3),
        fleet=FleetSpec(num_vips=num_vips),
        timeline=TimelineSpec(
            events=events,
            window_s=window_s,
            horizon_s=last_event + 3 * window_s,
        ),
        seed=seed,
    )
    result = _execute(spec)
    plane = result.detail["plane"]
    return ScenarioResult(
        name="staggered_vip_onboarding",
        params={
            "num_vips": num_vips,
            "num_dips": num_dips,
            "initial_vips": initial_vips,
            "load_fraction": load_fraction,
            "seed": seed,
        },
        metrics={
            "first_wave_rounds": result.metrics["measurement_rounds"],
            "total_rounds": float(len(plane.round_log)),
            "latency_before_ms": result.windows[0].metrics["mean_latency_ms"],
            "latency_after_ms": result.windows[-1].metrics["mean_latency_ms"],
            "settle_events": sum(
                w.metrics.get("controller_events", 0.0) for w in result.windows
            ),
            "max_utilization": result.windows[-1].metrics["max_utilization"],
            "steady_vips": float(len(plane.steady_vips())),
        },
        windows=result.windows,
        detail={"result": result, "round_log": plane.round_log},
    )


@scenario(
    "per_vip_traffic_mix",
    "Heterogeneous per-VIP rates and policies on one shared fleet",
    num_vips=6,
    num_dips=24,
    load_fraction=0.45,
    background_policy="lc",
    seed=55,
)
def run_per_vip_traffic_mix(
    *,
    num_vips: int,
    num_dips: int,
    load_fraction: float,
    background_policy: str,
    seed: int,
) -> ScenarioResult:
    """Half the VIPs are KnapsackLB-controlled, half are background tenants.

    The background VIPs run a load-dependent policy (least-connection by
    default) with skewed rates, so the controlled VIPs must converge on DIPs
    whose spare capacity both shifts with the fixed point and differs per
    DIP — the multi-tenant reality a per-VIP controller never sees.
    """
    mix = tuple(1.5 if i % 2 == 0 else 0.5 for i in range(num_vips))
    fleet = build_shared_dip_fleet(
        num_vips=num_vips,
        num_dips=num_dips,
        load_fraction=load_fraction,
        rate_mix=mix,
        seed=seed,
    )
    vip_ids = list(fleet.vips)
    controlled = vip_ids[: num_vips // 2]
    background = vip_ids[num_vips // 2 :]
    for vip_id in background:
        fleet.vips[vip_id].policy_name = background_policy
    fleet.apply()

    plane = FleetController(fleet)
    for vip_id in controlled:
        plane.onboard_vip(vip_id)
    measurement = plane.run_measurement_phase()
    plane.compute_all_weights()
    for _ in range(2):
        plane.control_step()

    state = fleet.state()
    controlled_latency = [state.vip_mean_latency_ms(v) for v in controlled]
    background_latency = [state.vip_mean_latency_ms(v) for v in background]
    return ScenarioResult(
        name="per_vip_traffic_mix",
        params={
            "num_vips": num_vips,
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "background_policy": background_policy,
            "seed": seed,
        },
        metrics={
            "measurement_rounds": float(measurement.rounds),
            "controlled_mean_latency_ms": sum(controlled_latency)
            / len(controlled_latency),
            "background_mean_latency_ms": sum(background_latency)
            / len(background_latency),
            "max_utilization": max(state.utilization.values()),
        },
        detail={"state": state},
    )


@scenario(
    "datacenter_scale_fluid",
    "Joint fleet evaluation throughput at Table 8-like scale",
    num_vips=20,
    num_dips=2000,
    load_fraction=0.6,
    evaluations=5,
    seed=77,
)
def run_datacenter_scale_fluid(
    *,
    num_vips: int,
    num_dips: int,
    load_fraction: float,
    evaluations: int,
    seed: int,
) -> ScenarioResult:
    """Time the vectorized joint evaluation of a large shared fleet."""
    fleet = build_shared_dip_fleet(
        num_vips=num_vips,
        num_dips=num_dips,
        load_fraction=load_fraction,
        seed=seed,
    )
    started = time.perf_counter()
    for _ in range(max(1, evaluations)):
        state = fleet.apply()
    elapsed = time.perf_counter() - started
    per_apply_ms = elapsed / max(1, evaluations) * 1000.0
    return ScenarioResult(
        name="datacenter_scale_fluid",
        params={
            "num_vips": num_vips,
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "evaluations": evaluations,
            "seed": seed,
        },
        metrics={
            "apply_ms": per_apply_ms,
            "dip_evaluations_per_s": num_dips / (per_apply_ms / 1000.0),
            "max_utilization": max(state.utilization.values()),
        },
    )


@scenario(
    "request_vs_fluid_crosscheck",
    "Same 32-DIP deployment through both simulators at million-request scale",
    num_dips=32,
    num_requests=1_000_000,
    load_fraction=0.65,
    policy_name="random",
    warmup_s=2.0,
    seed=13,
)
def run_request_vs_fluid_crosscheck(
    *,
    num_dips: int,
    num_requests: int,
    load_fraction: float,
    policy_name: str,
    warmup_s: float,
    seed: int,
) -> ScenarioResult:
    """Cross-check the request-level engine against the fluid model at scale.

    The same deployment (identical DIPs, rate and policy) runs through both
    simulators; the fluid side is analytic (exact means), the request side
    is generative.  Feasible at >= 1M requests only with the streaming
    engine (the seed path pre-scheduled every arrival upfront).  Reported
    deltas: mean latency (both exact), and p99 where the fluid side uses
    the M/M/1-style exponential-tail estimate ``mean * ln(100)`` — an
    approximation, so the p99 delta is a sanity band, not a bound.

    The pool uses M/M/c-consistent VM types (idle latency == servers /
    capacity) so the two simulators agree on means *by construction*;
    catalog SKUs carry measured idle latencies that deliberately deviate.
    The default policy is uniform random: Poisson thinning keeps each
    DIP's arrival process Poisson, which is what the per-DIP Erlang-C
    model assumes (round robin smooths arrivals and genuinely queues
    *less* than M/M/c predicts — an effect, not a bug, measurable by
    overriding ``policy_name="rr"``).
    """

    def pool():
        vm = custom_vm_type("xcheck-8c", vcpus=8, capacity_rps=3200.0)
        return build_uniform_pool(num_dips, vm_type=vm, seed=seed)

    dips = pool()
    total_capacity = sum(d.capacity_rps for d in dips.values())
    rate = load_fraction * total_capacity

    fluid = FluidCluster(
        dips=pool(),
        total_rate_rps=rate,
        policy_name=policy_name,
    )
    fluid_state = fluid.state()
    fluid_mean_ms = fluid_state.overall_mean_latency_ms()
    fluid_p99_est_ms = fluid_mean_ms * math.log(100.0)

    policy_kwargs = (
        {"seed": seed} if policy_name in {"random", "wrandom", "p2"} else {}
    )
    policy = make_policy(policy_name, list(dips), **policy_kwargs)
    cluster = RequestCluster(dips, policy, rate_rps=rate, seed=seed)
    started = time.perf_counter()
    result = cluster.run(num_requests=num_requests, warmup_s=warmup_s)
    wall_s = time.perf_counter() - started

    request_mean_ms = result.metrics.mean_latency_ms()
    request_p99_ms = result.metrics.percentile_latency_ms(99)
    share = result.metrics.request_share()
    max_share_deviation = max(
        abs(float(fraction) - 1.0 / num_dips) for fraction in share.values()
    )
    return ScenarioResult(
        name="request_vs_fluid_crosscheck",
        params={
            "num_dips": num_dips,
            "num_requests": num_requests,
            "load_fraction": load_fraction,
            "policy_name": policy_name,
            "seed": seed,
        },
        metrics={
            "requests_submitted": float(result.requests_submitted),
            "requests_per_s": result.requests_submitted / wall_s,
            "fluid_mean_latency_ms": fluid_mean_ms,
            "request_mean_latency_ms": request_mean_ms,
            "mean_rel_delta": abs(request_mean_ms - fluid_mean_ms)
            / max(fluid_mean_ms, 1e-9),
            "fluid_p99_est_ms": fluid_p99_est_ms,
            "request_p99_latency_ms": request_p99_ms,
            "p99_rel_delta": abs(request_p99_ms - fluid_p99_est_ms)
            / max(fluid_p99_est_ms, 1e-9),
            "max_share_deviation": max_share_deviation,
            "drop_fraction": result.drop_fraction,
            "peak_scheduled_events": float(cluster.scheduler.peak_pending_events),
            "wall_s": wall_s,
        },
        detail={"fluid_state": fluid_state, "run_result": result},
    )


# ---------------------------------------------------------------------------
# timeline scenarios (declarative mid-run events on any substrate)
# ---------------------------------------------------------------------------


@scenario(
    "dip_outage_recovery",
    "A DIP fails mid-run and recovers later; the trajectory shows both",
    num_dips=8,
    load_fraction=0.6,
    fail_at_s=20.0,
    outage_s=40.0,
    substrate="fluid",
    inject_fault=True,
    chaos_seed=None,
    seed=29,
)
def run_dip_outage_recovery(
    *,
    num_dips: int,
    load_fraction: float,
    fail_at_s: float,
    outage_s: float,
    substrate: str,
    inject_fault: bool,
    chaos_seed: int | None,
    seed: int,
) -> ScenarioResult:
    """Failure injection as a pure timeline, on any substrate.

    ``dip_fail`` takes one DIP down at ``fail_at_s``; ``dip_recover``
    brings it back ``outage_s`` later.  On the fluid/fleet substrates the
    KnapsackLB controller detects the failure through probing and
    reprograms; on the request substrate the LB health check stops routing
    to it.  ``inject_fault=False`` runs the identical horizon with no
    events — the no-fault twin a failure run is compared against.

    ``chaos_seed`` arms a seeded random failure schedule on top of (or
    instead of) the scripted outage: extra ``dip_fail``/``dip_recover``
    pairs are drawn over the same horizon, sparing the scripted victim.
    """
    window_s = 5.0
    # At least one full pre-fault window must exist for the baseline.
    if fail_at_s < window_s:
        raise ConfigurationError(
            f"fail_at_s must be >= the {window_s:g}s telemetry window"
        )
    if outage_s <= 0:
        raise ConfigurationError("outage_s must be positive")
    recover_at = fail_at_s + outage_s
    events = (
        (
            EventSpec(time_s=fail_at_s, kind="dip_fail", dip="DIP-1"),
            EventSpec(time_s=recover_at, kind="dip_recover", dip="DIP-1"),
        )
        if inject_fault
        else ()
    )
    spec = ExperimentSpec(
        name="dip_outage_recovery",
        runner=substrate,
        pool=PoolSpec(kind="uniform", num_dips=num_dips),
        workload=WorkloadSpec(load_fraction=load_fraction),
        timeline=TimelineSpec(
            events=events,
            window_s=window_s,
            horizon_s=recover_at + 6 * window_s,
            chaos=ChaosSpec(seed=chaos_seed),
        ),
        seed=seed,
    )
    result = _execute(spec)
    baseline = [w for w in result.windows if w.end_s <= fail_at_s]
    outage = [
        w for w in result.windows if fail_at_s <= w.start_s < recover_at
    ]
    recovered = result.windows[-1]
    baseline_ms = baseline[-1].metrics["mean_latency_ms"]
    outage_peak_ms = max(
        (w.metrics["mean_latency_ms"] for w in outage), default=baseline_ms
    )
    recovered_ms = recovered.metrics["mean_latency_ms"]
    return ScenarioResult(
        name="dip_outage_recovery",
        params={
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "fail_at_s": fail_at_s,
            "outage_s": outage_s,
            "substrate": substrate,
            "inject_fault": inject_fault,
            "chaos_seed": chaos_seed,
            "seed": seed,
        },
        metrics={
            "baseline_latency_ms": baseline_ms,
            "outage_peak_latency_ms": outage_peak_ms,
            "recovered_latency_ms": recovered_ms,
            "outage_degradation": outage_peak_ms / baseline_ms,
            "recovery_ratio": recovered_ms / baseline_ms,
            "controller_events": sum(
                w.metrics.get("controller_events", 0.0) for w in result.windows
            ),
            # Request-substrate windows track drops instead of utilization.
            "final_max_utilization": recovered.metrics.get(
                "max_utilization", float("nan")
            ),
        },
        windows=result.windows,
        detail={"result": result},
    )


@scenario(
    "failure_crosscheck",
    "Probe-detected failure through fluid and request engines; detection must agree",
    num_dips=8,
    load_fraction=0.6,
    fail_at_s=15.0,
    outage_s=25.0,
    probe_interval_s=1.0,
    unhealthy_threshold=3,
    seed=17,
)
def run_failure_crosscheck(
    *,
    num_dips: int,
    load_fraction: float,
    fail_at_s: float,
    outage_s: float,
    probe_interval_s: float,
    unhealthy_threshold: int,
    seed: int,
) -> ScenarioResult:
    """Cross-check probe-based failure detection across substrates.

    The same spec — one DIP failing abruptly at ``fail_at_s`` under an
    enabled :class:`~repro.api.spec.HealthCheckSpec` — runs through the
    fluid model and the request engine.  Both walk the same seeded probe
    grid, so the failed DIP keeps receiving (and losing) its traffic share
    for the same detection delay on both substrates: the per-window drop
    fractions must agree within sampling noise, and the closed-form
    :meth:`~repro.api.spec.HealthCheckSpec.detection_delay_s` predicts
    where the loss lands.  The headline ``max_window_drop_delta`` is the
    largest absolute per-window disagreement — the crosscheck's tolerance
    gauge, in the spirit of ``request_vs_fluid_crosscheck``.
    """
    if fail_at_s <= 0 or outage_s <= 0:
        raise ConfigurationError("fail_at_s and outage_s must be positive")
    window_s = 5.0
    health = HealthCheckSpec(
        enabled=True,
        probe_interval_s=probe_interval_s,
        unhealthy_threshold=unhealthy_threshold,
    )
    recover_at = fail_at_s + outage_s
    timeline = TimelineSpec(
        events=(
            EventSpec(time_s=fail_at_s, kind="dip_fail", dip="DIP-1"),
            EventSpec(time_s=recover_at, kind="dip_recover", dip="DIP-1"),
        ),
        window_s=window_s,
        horizon_s=recover_at + 4 * window_s,
    )
    results = {}
    for substrate in ("fluid", "request"):
        spec = ExperimentSpec(
            name=f"failure_crosscheck/{substrate}",
            runner=substrate,
            pool=PoolSpec(kind="uniform", num_dips=num_dips),
            workload=WorkloadSpec(load_fraction=load_fraction),
            timeline=timeline,
            health=health,
            seed=seed,
        )
        results[substrate] = _execute(spec)
    fluid_drops = [
        w.metrics.get("drop_fraction", 0.0) for w in results["fluid"].windows
    ]
    request_drops = [
        w.metrics.get("drop_fraction", 0.0) for w in results["request"].windows
    ]
    deltas = [
        abs(f - r) for f, r in zip(fluid_drops, request_drops)
    ]
    delay_s = health.detection_delay_s(seed, 0, fail_at_s)
    # The detection window's loss, predicted analytically: the victim's
    # steady-state share (from the fluid run's first window) lost for
    # delay_s seconds of its window.
    victim_share = results["fluid"].windows[0].dip_share.get(
        "DIP-1", 1.0 / num_dips
    )
    predicted_peak = (delay_s / window_s) * victim_share
    return ScenarioResult(
        name="failure_crosscheck",
        params={
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "fail_at_s": fail_at_s,
            "outage_s": outage_s,
            "probe_interval_s": probe_interval_s,
            "unhealthy_threshold": unhealthy_threshold,
            "seed": seed,
        },
        metrics={
            "detection_delay_s": delay_s,
            "max_window_drop_delta": max(deltas, default=0.0),
            "fluid_lost_fraction": max(fluid_drops, default=0.0),
            "request_lost_fraction": max(request_drops, default=0.0),
            "predicted_peak_drop_fraction": predicted_peak,
            "fluid_mean_latency_ms": results["fluid"].metrics[
                "mean_latency_ms"
            ],
            "request_mean_latency_ms": results["request"].metrics[
                "mean_latency_ms"
            ],
        },
        windows=results["request"].windows,
        detail={"results": results, "fluid_drops": fluid_drops,
                "request_drops": request_drops},
    )


@scenario(
    "diurnal_surge",
    "Traffic ramps up to a peak and back down through arrival_scale events",
    num_dips=8,
    load_fraction=0.45,
    peak_scale=1.8,
    ramp_steps=3,
    step_s=15.0,
    substrate="fluid",
    seed=31,
)
def run_diurnal_surge(
    *,
    num_dips: int,
    load_fraction: float,
    peak_scale: float,
    ramp_steps: int,
    step_s: float,
    substrate: str,
    seed: int,
) -> ScenarioResult:
    """A diurnal traffic ramp as a pure timeline, on any substrate.

    ``arrival_scale`` events step the offered rate from the baseline up to
    ``peak_scale`` × and back down (each factor is relative to the *base*
    rate, so the same spec reads as the day curve it models).  On the
    request substrate each step rescales the streaming Poisson arrivals
    mid-run without breaking the sorted-stream invariant.
    """
    if peak_scale <= 1.0:
        raise ConfigurationError("peak_scale must exceed 1")
    if ramp_steps < 1 or step_s <= 0:
        raise ConfigurationError("ramp_steps and step_s must be positive")
    window_s = 5.0
    factors = [
        1.0 + (peak_scale - 1.0) * step / ramp_steps
        for step in range(1, ramp_steps + 1)
    ]
    ramp = factors + factors[-2::-1] + [1.0]  # up, down, back to baseline
    events = tuple(
        EventSpec(
            time_s=(index + 1) * step_s, kind="arrival_scale", value=factor
        )
        for index, factor in enumerate(ramp)
    )
    spec = ExperimentSpec(
        name="diurnal_surge",
        runner=substrate,
        pool=PoolSpec(kind="uniform", num_dips=num_dips),
        workload=WorkloadSpec(load_fraction=load_fraction),
        timeline=TimelineSpec(
            events=events,
            window_s=window_s,
            horizon_s=events[-1].time_s + 3 * window_s,
        ),
        seed=seed,
    )
    result = _execute(spec)
    series = result.window_series("mean_latency_ms")
    peak_index = max(range(len(series)), key=lambda i: series[i])
    return ScenarioResult(
        name="diurnal_surge",
        params={
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "peak_scale": peak_scale,
            "ramp_steps": ramp_steps,
            "step_s": step_s,
            "substrate": substrate,
            "seed": seed,
        },
        metrics={
            "baseline_latency_ms": series[0],
            "peak_latency_ms": series[peak_index],
            "final_latency_ms": series[-1],
            "surge_degradation": series[peak_index] / series[0],
            # Request-substrate windows track drops instead of utilization.
            "peak_utilization": max(
                w.metrics.get("max_utilization", 0.0) for w in result.windows
            ),
            "peak_rate_scale": peak_scale,
        },
        windows=result.windows,
        detail={"result": result},
    )


# ---------------------------------------------------------------------------
# robustness scenarios (bursty / heavy-tailed workloads)
# ---------------------------------------------------------------------------


@scenario(
    "robustness_envelope",
    "Grid every LB policy against bursty arrivals and heavy-tailed service",
    num_dips=8,
    num_requests=6000,
    load_fraction=0.6,
    tail_index=2.2,
    seed=47,
)
def run_robustness_envelope(
    *,
    num_dips: int,
    num_requests: int,
    load_fraction: float,
    tail_index: float,
    seed: int,
) -> ScenarioResult:
    """Sweep the robustness envelope of every registered policy.

    Each policy runs the identical deployment through the request engine
    under a grid of workload shapes — arrivals in {Poisson, MMPP bursts,
    flash crowds} × service in {exponential, Pareto(``tail_index``)} —
    and each cell's tail latency and drop fraction are compared against
    that policy's own Poisson/exponential baseline cell.  The headline
    per-policy number is the *worst* p99 degradation across the grid: how
    much a policy's tail inflates when the workload stops being the
    memoryless one every analytic model assumes.

    The grid runs on M/M/c-consistent uniform pools (as in
    ``request_vs_fluid_crosscheck``) so differences are attributable to
    the workload shape and the policy, not SKU quirks.
    """
    arrivals = {
        "poisson": ArrivalSpec(),
        "mmpp": ArrivalSpec(kind="mmpp"),
        "flash_crowd": ArrivalSpec(kind="flash_crowd"),
    }
    services = {
        "exponential": ServiceSpec(),
        "pareto": ServiceSpec(kind="pareto", tail_index=tail_index),
    }
    vm = custom_vm_type("robust-8c", vcpus=8, capacity_rps=3200.0)
    rows: list[dict[str, Any]] = []
    worst: dict[str, float] = {}
    worst_drop = 0.0
    for policy_name in sorted(policy_registry()):
        baseline_p99 = None
        for arrival_name, arrival in arrivals.items():
            for service_name, service in services.items():
                dips = build_uniform_pool(num_dips, vm_type=vm, seed=seed)
                total_capacity = sum(d.capacity_rps for d in dips.values())
                policy = make_policy(
                    policy_name,
                    list(dips),
                    **policy_seed_kwargs(policy_name, seed=seed),
                )
                cluster = RequestCluster(
                    dips,
                    policy,
                    rate_rps=load_fraction * total_capacity,
                    seed=seed,
                    arrival=arrival,
                    service=service,
                )
                run = cluster.run(num_requests=num_requests, warmup_s=1.0)
                p99 = run.metrics.percentile_latency_ms(99)
                if baseline_p99 is None:
                    # First cell is poisson/exponential by dict order.
                    baseline_p99 = p99
                degradation = p99 / max(baseline_p99, 1e-9)
                worst[policy_name] = max(
                    worst.get(policy_name, 0.0), degradation
                )
                worst_drop = max(worst_drop, run.drop_fraction)
                rows.append(
                    {
                        "policy": policy_name,
                        "arrival": arrival_name,
                        "service": service_name,
                        "p99_ms": p99,
                        "mean_ms": run.metrics.mean_latency_ms(),
                        "drop_fraction": run.drop_fraction,
                        "p99_degradation": degradation,
                    }
                )
    table = format_table(
        ("policy", "arrival", "service", "p99 ms", "drop", "p99 vs M/M/c"),
        [
            (
                r["policy"],
                r["arrival"],
                r["service"],
                f"{r['p99_ms']:.2f}",
                f"{r['drop_fraction']:.4f}",
                f"{r['p99_degradation']:.2f}x",
            )
            for r in rows
        ],
        title="robustness envelope (per-policy p99 vs own Poisson baseline)",
    )
    metrics: dict[str, float] = {
        "grid_cells": float(len(rows)),
        "policies": float(len(worst)),
        "worst_p99_degradation": max(worst.values()),
        "worst_drop_fraction": worst_drop,
    }
    for policy_name, degradation in worst.items():
        metrics[f"worst_p99_degradation_{policy_name}"] = degradation
    return ScenarioResult(
        name="robustness_envelope",
        params={
            "num_dips": num_dips,
            "num_requests": num_requests,
            "load_fraction": load_fraction,
            "tail_index": tail_index,
            "seed": seed,
        },
        metrics=metrics,
        detail={"rows": rows, "table": table},
    )


@scenario(
    "chaos_under_burst",
    "Seeded chaos failures while the workload is bursty and heavy-tailed",
    num_dips=8,
    load_fraction=0.55,
    horizon_s=60.0,
    tail_index=2.2,
    chaos_seed=7,
    seed=37,
)
def run_chaos_under_burst(
    *,
    num_dips: int,
    load_fraction: float,
    horizon_s: float,
    tail_index: float,
    chaos_seed: int,
    seed: int,
) -> ScenarioResult:
    """Compose the failure machinery with the robustness workloads.

    The same chaos schedule (seeded random ``dip_fail``/``dip_recover``
    events), probe-based health checks and the retry/backoff layer run
    twice through the request engine: once under MMPP arrivals with
    Pareto(``tail_index``) service, and once under the calm
    Poisson/exponential twin.  Both runs draw the identical failure
    schedule — chaos expansion depends only on the pool, seed and horizon
    — so every reported ratio isolates the *workload's* contribution to
    outage pain: bursts arriving while capacity is down deepen the p99
    and drop penalties well beyond what either stressor causes alone.
    """
    if horizon_s <= 0:
        raise ConfigurationError("horizon_s must be positive")
    health = HealthCheckSpec(enabled=True)
    retry = RetryPolicy(enabled=True)
    timeline = TimelineSpec(
        window_s=5.0,
        horizon_s=horizon_s,
        chaos=ChaosSpec(seed=chaos_seed),
    )
    workloads = {
        "bursty": WorkloadSpec(
            load_fraction=load_fraction,
            arrival=ArrivalSpec(kind="mmpp"),
            service=ServiceSpec(kind="pareto", tail_index=tail_index),
        ),
        "calm": WorkloadSpec(load_fraction=load_fraction),
    }
    results = {}
    for label, workload in workloads.items():
        spec = ExperimentSpec(
            name=f"chaos_under_burst/{label}",
            runner="request",
            pool=PoolSpec(kind="uniform", num_dips=num_dips),
            workload=workload,
            timeline=timeline,
            health=health,
            retry=retry,
            seed=seed,
        )
        results[label] = _execute(spec)
    bursty, calm = results["bursty"].metrics, results["calm"].metrics
    return ScenarioResult(
        name="chaos_under_burst",
        params={
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "horizon_s": horizon_s,
            "tail_index": tail_index,
            "chaos_seed": chaos_seed,
            "seed": seed,
        },
        metrics={
            "bursty_p99_latency_ms": bursty["p99_latency_ms"],
            "calm_p99_latency_ms": calm["p99_latency_ms"],
            "p99_ratio": bursty["p99_latency_ms"]
            / max(calm["p99_latency_ms"], 1e-9),
            "bursty_drop_fraction": bursty["drop_fraction"],
            "calm_drop_fraction": calm["drop_fraction"],
            "bursty_retried_fraction": bursty.get("retried_fraction", 0.0),
            "calm_retried_fraction": calm.get("retried_fraction", 0.0),
            "chaos_events": bursty.get("timeline_events", 0.0),
        },
        windows=results["bursty"].windows,
        detail={"results": results},
    )


def fleet_for_scenario(name: str, **overrides: Any) -> Fleet:
    """Convenience: build (without running) the fleet a scenario would use."""
    spec = get_scenario(name)
    params = {**spec.defaults, **overrides}
    return build_shared_dip_fleet(
        num_vips=int(params.get("num_vips", 8)),
        num_dips=int(params.get("num_dips", 32)),
        load_fraction=float(params.get("load_fraction", 0.55)),
        seed=params.get("seed"),
    )

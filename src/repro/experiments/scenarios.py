"""A registry of runnable scenarios over the fleet control plane.

The paper's evaluation is a fixed set of figures; the reproduction's north
star is *opening new scenarios*.  This module gives every workload shape a
name: a scenario is a parameterised runner registered under a slug, so
experiments, benchmarks and tests all launch the same configurations via
:func:`run_scenario` instead of hand-wiring fleets.

Built-in scenarios cover the single-VIP paths (as one-VIP fleets) plus the
multi-VIP shapes the :class:`~repro.core.fleet_controller.FleetController`
enables: shared-DIP contention, staggered VIP onboarding and heterogeneous
per-VIP traffic mixes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.backends import custom_vm_type
from repro.core import FleetController, KnapsackLBController
from repro.exceptions import ConfigurationError
from repro.lb import make_policy
from repro.sim import FluidCluster, RequestCluster
from repro.sim.fleet import Fleet
from repro.workloads import (
    build_shared_dip_fleet,
    build_testbed_cluster,
    build_uniform_pool,
)

ScenarioRunner = Callable[..., "ScenarioResult"]


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: headline metrics plus raw detail."""

    name: str
    params: dict[str, Any]
    metrics: dict[str, float]
    detail: Any = None


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: its runner and default parameters."""

    name: str
    summary: str
    runner: ScenarioRunner
    defaults: Mapping[str, Any] = field(default_factory=dict)

    @property
    def parameters(self) -> tuple[str, ...]:
        """The override keys this scenario accepts (its defaults' keys)."""
        return tuple(sorted(self.defaults))

    def run(self, **overrides: Any) -> ScenarioResult:
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown:
            valid = ", ".join(self.parameters) or "(none)"
            raise ConfigurationError(
                f"unknown parameter {unknown[0]!r} for scenario {self.name!r}; "
                f"valid parameters: {valid}"
            )
        params = {**self.defaults, **overrides}
        return self.runner(**params)


_REGISTRY: dict[str, ScenarioSpec] = {}


def scenario(
    name: str, summary: str, **defaults: Any
) -> Callable[[ScenarioRunner], ScenarioRunner]:
    """Register ``runner`` under ``name`` with ``defaults`` as parameters."""

    def register(runner: ScenarioRunner) -> ScenarioRunner:
        if name in _REGISTRY:
            raise ConfigurationError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioSpec(
            name=name, summary=summary, runner=runner, defaults=defaults
        )
        return runner

    return register


def list_scenarios() -> tuple[ScenarioSpec, ...]:
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def run_scenario(name: str, **overrides: Any) -> ScenarioResult:
    """Run a registered scenario with its defaults overridden by kwargs."""
    return get_scenario(name).run(**overrides)


# ---------------------------------------------------------------------------
# single-VIP scenarios (one-VIP fleets — the paper's original shape)
# ---------------------------------------------------------------------------


@scenario(
    "single_vip_testbed",
    "The Table 3 testbed as a one-VIP fleet driven to convergence",
    load_fraction=0.70,
    seed=7,
)
def run_single_vip_testbed(*, load_fraction: float, seed: int) -> ScenarioResult:
    cluster = build_testbed_cluster(load_fraction=load_fraction, seed=seed)
    controller = KnapsackLBController("vip-1", cluster)
    assignment = controller.converge()
    klb_latency = cluster.state().overall_mean_latency_ms()
    cluster.set_weights({d: 1 / len(cluster.dips) for d in cluster.dips})
    equal_latency = cluster.state().overall_mean_latency_ms()
    cluster.set_weights(dict(assignment.weights))
    return ScenarioResult(
        name="single_vip_testbed",
        params={"load_fraction": load_fraction, "seed": seed},
        metrics={
            "mean_latency_ms": klb_latency,
            "equal_split_latency_ms": equal_latency,
            "latency_gain": equal_latency / klb_latency,
            "max_utilization": max(cluster.state().utilization.values()),
        },
        detail=assignment,
    )


# ---------------------------------------------------------------------------
# multi-VIP scenarios (the fleet control plane)
# ---------------------------------------------------------------------------


@scenario(
    "multi_vip_shared_dips",
    "N VIPs contending for a shared DIP fleet, converged and perturbed",
    num_vips=8,
    num_dips=32,
    load_fraction=0.55,
    capacity_squeeze=0.6,
    settle_steps=6,
    control_steps=4,
    seed=21,
)
def run_multi_vip_shared_dips(
    *,
    num_vips: int,
    num_dips: int,
    load_fraction: float,
    capacity_squeeze: float,
    settle_steps: int,
    control_steps: int,
    seed: int,
) -> ScenarioResult:
    """Shared-DIP contention end to end: measurement → ILP → dynamics.

    After convergence, one shared DIP's capacity is squeezed to exercise the
    §4.5 detection path under contention: every VIP sharing that DIP sees
    the latency rise and reacts independently.
    """
    fleet = build_shared_dip_fleet(
        num_vips=num_vips,
        num_dips=num_dips,
        load_fraction=load_fraction,
        seed=seed,
    )
    plane = FleetController(fleet)
    started = time.perf_counter()
    for vip_id in fleet.vips:
        plane.onboard_vip(vip_id)
    measurement = plane.run_measurement_phase()
    outcomes = plane.compute_all_weights()
    # Joint programming changes every shared DIP's contention at once; the
    # §4.5 curve-rescaling feedback needs a few ticks to absorb it, exactly
    # like the single-VIP converge() settle phase.
    for _ in range(max(0, settle_steps)):
        reports = plane.control_step()
        if not any(r.events for r in reports.values()):
            break
    converge_wall_s = time.perf_counter() - started

    state = fleet.state()
    converged_latency = state.overall_mean_latency_ms()
    converged_util = max(state.utilization.values())

    shared = fleet.shared_dip_ids()
    squeezed = shared[0] if shared else next(iter(fleet.dips))
    fleet.set_capacity_ratio(squeezed, capacity_squeeze)
    reprogrammed = 0
    events = 0
    for _ in range(max(1, control_steps)):
        reports = plane.control_step()
        reprogrammed += sum(1 for r in reports.values() if r.reprogrammed)
        events += sum(len(r.events) for r in reports.values())

    final_state = fleet.state()
    return ScenarioResult(
        name="multi_vip_shared_dips",
        params={
            "num_vips": num_vips,
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "capacity_squeeze": capacity_squeeze,
            "control_steps": control_steps,
            "seed": seed,
        },
        metrics={
            "measurement_rounds": float(measurement.rounds),
            "interleaved_rounds": float(measurement.interleaved_rounds),
            "vips_with_assignment": float(len(outcomes)),
            "shared_dips": float(len(shared)),
            "converged_latency_ms": converged_latency,
            "converged_max_utilization": converged_util,
            "post_squeeze_events": float(events),
            "post_squeeze_reprograms": float(reprogrammed),
            "final_max_utilization": max(final_state.utilization.values()),
            "converge_wall_s": converge_wall_s,
        },
        detail={
            "measurement": measurement,
            "outcomes": outcomes,
            "squeezed_dip": squeezed,
            "final_state": final_state,
        },
    )


@scenario(
    "staggered_vip_onboarding",
    "VIPs join a live fleet one at a time while the rest stay in control",
    num_vips=6,
    num_dips=24,
    initial_vips=3,
    load_fraction=0.5,
    seed=33,
)
def run_staggered_vip_onboarding(
    *,
    num_vips: int,
    num_dips: int,
    initial_vips: int,
    load_fraction: float,
    seed: int,
) -> ScenarioResult:
    """Onboard VIPs in waves; steady VIPs keep their control loop running.

    The second wave's measurement traffic lands on DIPs the first wave
    already uses, so the steady VIPs' §4.5 detectors see real contention
    changes while the newcomers explore.
    """
    if not 1 <= initial_vips <= num_vips:
        raise ConfigurationError("initial_vips must be in [1, num_vips]")
    fleet = build_shared_dip_fleet(
        num_vips=num_vips,
        num_dips=num_dips,
        load_fraction=load_fraction,
        seed=seed,
    )
    plane = FleetController(fleet)
    vip_ids = list(fleet.vips)

    for vip_id in vip_ids[:initial_vips]:
        plane.onboard_vip(vip_id)
    first_wave = plane.run_measurement_phase()
    plane.compute_all_weights()
    latency_before = fleet.state().overall_mean_latency_ms()

    steady_events = 0
    for vip_id in vip_ids[initial_vips:]:
        plane.onboard_vip(vip_id)
        plane.run_measurement_phase(steady_control=True)
        plane.compute_all_weights()
    for _ in range(3):
        reports = plane.control_step()
        steady_events += sum(len(r.events) for r in reports.values())

    state = fleet.state()
    return ScenarioResult(
        name="staggered_vip_onboarding",
        params={
            "num_vips": num_vips,
            "num_dips": num_dips,
            "initial_vips": initial_vips,
            "load_fraction": load_fraction,
            "seed": seed,
        },
        metrics={
            "first_wave_rounds": float(first_wave.rounds),
            "total_rounds": float(len(plane.round_log)),
            "latency_before_ms": latency_before,
            "latency_after_ms": state.overall_mean_latency_ms(),
            "settle_events": float(steady_events),
            "max_utilization": max(state.utilization.values()),
            "steady_vips": float(len(plane.steady_vips())),
        },
        detail={"round_log": plane.round_log},
    )


@scenario(
    "per_vip_traffic_mix",
    "Heterogeneous per-VIP rates and policies on one shared fleet",
    num_vips=6,
    num_dips=24,
    load_fraction=0.45,
    background_policy="lc",
    seed=55,
)
def run_per_vip_traffic_mix(
    *,
    num_vips: int,
    num_dips: int,
    load_fraction: float,
    background_policy: str,
    seed: int,
) -> ScenarioResult:
    """Half the VIPs are KnapsackLB-controlled, half are background tenants.

    The background VIPs run a load-dependent policy (least-connection by
    default) with skewed rates, so the controlled VIPs must converge on DIPs
    whose spare capacity both shifts with the fixed point and differs per
    DIP — the multi-tenant reality a per-VIP controller never sees.
    """
    mix = tuple(1.5 if i % 2 == 0 else 0.5 for i in range(num_vips))
    fleet = build_shared_dip_fleet(
        num_vips=num_vips,
        num_dips=num_dips,
        load_fraction=load_fraction,
        rate_mix=mix,
        seed=seed,
    )
    vip_ids = list(fleet.vips)
    controlled = vip_ids[: num_vips // 2]
    background = vip_ids[num_vips // 2 :]
    for vip_id in background:
        fleet.vips[vip_id].policy_name = background_policy
    fleet.apply()

    plane = FleetController(fleet)
    for vip_id in controlled:
        plane.onboard_vip(vip_id)
    measurement = plane.run_measurement_phase()
    plane.compute_all_weights()
    for _ in range(2):
        plane.control_step()

    state = fleet.state()
    controlled_latency = [state.vip_mean_latency_ms(v) for v in controlled]
    background_latency = [state.vip_mean_latency_ms(v) for v in background]
    return ScenarioResult(
        name="per_vip_traffic_mix",
        params={
            "num_vips": num_vips,
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "background_policy": background_policy,
            "seed": seed,
        },
        metrics={
            "measurement_rounds": float(measurement.rounds),
            "controlled_mean_latency_ms": sum(controlled_latency)
            / len(controlled_latency),
            "background_mean_latency_ms": sum(background_latency)
            / len(background_latency),
            "max_utilization": max(state.utilization.values()),
        },
        detail={"state": state},
    )


@scenario(
    "datacenter_scale_fluid",
    "Joint fleet evaluation throughput at Table 8-like scale",
    num_vips=20,
    num_dips=2000,
    load_fraction=0.6,
    evaluations=5,
    seed=77,
)
def run_datacenter_scale_fluid(
    *,
    num_vips: int,
    num_dips: int,
    load_fraction: float,
    evaluations: int,
    seed: int,
) -> ScenarioResult:
    """Time the vectorized joint evaluation of a large shared fleet."""
    fleet = build_shared_dip_fleet(
        num_vips=num_vips,
        num_dips=num_dips,
        load_fraction=load_fraction,
        seed=seed,
    )
    started = time.perf_counter()
    for _ in range(max(1, evaluations)):
        state = fleet.apply()
    elapsed = time.perf_counter() - started
    per_apply_ms = elapsed / max(1, evaluations) * 1000.0
    return ScenarioResult(
        name="datacenter_scale_fluid",
        params={
            "num_vips": num_vips,
            "num_dips": num_dips,
            "load_fraction": load_fraction,
            "evaluations": evaluations,
            "seed": seed,
        },
        metrics={
            "apply_ms": per_apply_ms,
            "dip_evaluations_per_s": num_dips / (per_apply_ms / 1000.0),
            "max_utilization": max(state.utilization.values()),
        },
    )


@scenario(
    "request_vs_fluid_crosscheck",
    "Same 32-DIP deployment through both simulators at million-request scale",
    num_dips=32,
    num_requests=1_000_000,
    load_fraction=0.65,
    policy_name="random",
    warmup_s=2.0,
    seed=13,
)
def run_request_vs_fluid_crosscheck(
    *,
    num_dips: int,
    num_requests: int,
    load_fraction: float,
    policy_name: str,
    warmup_s: float,
    seed: int,
) -> ScenarioResult:
    """Cross-check the request-level engine against the fluid model at scale.

    The same deployment (identical DIPs, rate and policy) runs through both
    simulators; the fluid side is analytic (exact means), the request side
    is generative.  Feasible at >= 1M requests only with the streaming
    engine (the seed path pre-scheduled every arrival upfront).  Reported
    deltas: mean latency (both exact), and p99 where the fluid side uses
    the M/M/1-style exponential-tail estimate ``mean * ln(100)`` — an
    approximation, so the p99 delta is a sanity band, not a bound.

    The pool uses M/M/c-consistent VM types (idle latency == servers /
    capacity) so the two simulators agree on means *by construction*;
    catalog SKUs carry measured idle latencies that deliberately deviate.
    The default policy is uniform random: Poisson thinning keeps each
    DIP's arrival process Poisson, which is what the per-DIP Erlang-C
    model assumes (round robin smooths arrivals and genuinely queues
    *less* than M/M/c predicts — an effect, not a bug, measurable by
    overriding ``policy_name="rr"``).
    """

    def pool():
        vm = custom_vm_type("xcheck-8c", vcpus=8, capacity_rps=3200.0)
        return build_uniform_pool(num_dips, vm_type=vm, seed=seed)

    dips = pool()
    total_capacity = sum(d.capacity_rps for d in dips.values())
    rate = load_fraction * total_capacity

    fluid = FluidCluster(
        dips=pool(),
        total_rate_rps=rate,
        policy_name=policy_name,
    )
    fluid_state = fluid.state()
    fluid_mean_ms = fluid_state.overall_mean_latency_ms()
    fluid_p99_est_ms = fluid_mean_ms * math.log(100.0)

    policy_kwargs = (
        {"seed": seed} if policy_name in {"random", "wrandom", "p2"} else {}
    )
    policy = make_policy(policy_name, list(dips), **policy_kwargs)
    cluster = RequestCluster(dips, policy, rate_rps=rate, seed=seed)
    started = time.perf_counter()
    result = cluster.run(num_requests=num_requests, warmup_s=warmup_s)
    wall_s = time.perf_counter() - started

    request_mean_ms = result.metrics.mean_latency_ms()
    request_p99_ms = result.metrics.percentile_latency_ms(99)
    share = result.metrics.request_share()
    max_share_deviation = max(
        abs(float(fraction) - 1.0 / num_dips) for fraction in share.values()
    )
    return ScenarioResult(
        name="request_vs_fluid_crosscheck",
        params={
            "num_dips": num_dips,
            "num_requests": num_requests,
            "load_fraction": load_fraction,
            "policy_name": policy_name,
            "seed": seed,
        },
        metrics={
            "requests_submitted": float(result.requests_submitted),
            "requests_per_s": result.requests_submitted / wall_s,
            "fluid_mean_latency_ms": fluid_mean_ms,
            "request_mean_latency_ms": request_mean_ms,
            "mean_rel_delta": abs(request_mean_ms - fluid_mean_ms)
            / max(fluid_mean_ms, 1e-9),
            "fluid_p99_est_ms": fluid_p99_est_ms,
            "request_p99_latency_ms": request_p99_ms,
            "p99_rel_delta": abs(request_p99_ms - fluid_p99_est_ms)
            / max(fluid_p99_est_ms, 1e-9),
            "max_share_deviation": max_share_deviation,
            "drop_fraction": result.drop_fraction,
            "peak_scheduled_events": float(cluster.scheduler.peak_pending_events),
            "wall_s": wall_s,
        },
        detail={"fluid_state": fluid_state, "run_result": result},
    )


def fleet_for_scenario(name: str, **overrides: Any) -> Fleet:
    """Convenience: build (without running) the fleet a scenario would use."""
    spec = get_scenario(name)
    params = {**spec.defaults, **overrides}
    return build_shared_dip_fleet(
        num_vips=int(params.get("num_vips", 8)),
        num_dips=int(params.get("num_dips", 32)),
        load_fraction=float(params.get("load_fraction", 0.55)),
        seed=params.get("seed"),
    )

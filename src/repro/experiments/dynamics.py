"""Figs. 15-17: weight changes under failures, capacity change and traffic change (§6.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import KnapsackLBController
from repro.core.types import DipId
from repro.workloads import build_testbed_cluster

#: The DIP indices the paper plots in Figs. 15-17.
PLOTTED_DIPS = tuple(
    f"DIP-{i}" for i in (1, 2, 3, 4, 5, 6, 7, 8, 17, 18, 19, 20, 25, 26, 29)
)


@dataclass(frozen=True)
class DynamicsScenario:
    """Weights before and after one dynamic event, plus bookkeeping."""

    name: str
    weights_before: dict[DipId, float]
    weights_after: dict[DipId, float]
    events: tuple[str, ...]
    detection_time_s: float
    max_utilization_after: float

    def weight_delta(self, dips) -> float:
        return sum(
            self.weights_after.get(d, 0.0) - self.weights_before.get(d, 0.0) for d in dips
        )


@dataclass(frozen=True)
class DynamicsStudy:
    failure: DynamicsScenario
    capacity: DynamicsScenario
    traffic: DynamicsScenario


def _converged_controller(load_fraction: float, seed: int):
    cluster = build_testbed_cluster(load_fraction=load_fraction, seed=seed)
    controller = KnapsackLBController("vip-dyn", cluster)
    controller.converge()
    return cluster, controller


def _run_steps(controller, steps: int) -> tuple[list[str], float]:
    events: list[str] = []
    start = controller.time
    detection_time = float("nan")
    for _ in range(steps):
        report = controller.control_step()
        for event in report.events:
            events.append(event.kind.value)
        if report.reprogrammed and detection_time != detection_time:
            detection_time = controller.time - start
    return events, detection_time


def run_dynamics_study(
    *,
    load_fraction: float = 0.70,
    seed: int = 42,
    settle_steps: int = 3,
    traffic_increase: float = 0.10,
) -> DynamicsStudy:
    """Reproduce the three §6.3 scenarios on the 30-DIP testbed."""

    # --- Fig. 15: fail DIP-25 and DIP-26 -----------------------------------
    cluster, controller = _converged_controller(load_fraction, seed)
    before = dict(controller.last_assignment.weights)
    cluster.fail_dip("DIP-25")
    cluster.fail_dip("DIP-26")
    events, detection = _run_steps(controller, settle_steps)
    failure = DynamicsScenario(
        name="failure",
        weights_before=before,
        weights_after=dict(controller.last_assignment.weights),
        events=tuple(events),
        detection_time_s=detection,
        max_utilization_after=max(cluster.state().utilization.values()),
    )

    # --- Fig. 16: reduce capacity of DIP-25..28 -----------------------------
    cluster, controller = _converged_controller(load_fraction, seed)
    before = dict(controller.last_assignment.weights)
    for dip in ("DIP-25", "DIP-26", "DIP-27", "DIP-28"):
        cluster.set_capacity_ratio(dip, 0.75)
    events, detection = _run_steps(controller, settle_steps)
    capacity = DynamicsScenario(
        name="capacity",
        weights_before=before,
        weights_after=dict(controller.last_assignment.weights),
        events=tuple(events),
        detection_time_s=detection,
        max_utilization_after=max(cluster.state().utilization.values()),
    )

    # --- Fig. 17: +10 % traffic ----------------------------------------------
    cluster, controller = _converged_controller(load_fraction, seed)
    before = dict(controller.last_assignment.weights)
    cluster.scale_traffic(1.0 + traffic_increase)
    events, detection = _run_steps(controller, settle_steps)
    traffic = DynamicsScenario(
        name="traffic",
        weights_before=before,
        weights_after=dict(controller.last_assignment.weights),
        events=tuple(events),
        detection_time_s=detection,
        max_utilization_after=max(cluster.state().utilization.values()),
    )

    return DynamicsStudy(failure=failure, capacity=capacity, traffic=traffic)

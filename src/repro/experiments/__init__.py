"""Experiment drivers: one function per paper table/figure.

Each driver builds its workload from :mod:`repro.workloads`, runs the
relevant substrate (fluid or request-level simulator, solver benchmarks,
controller runs) and returns a structured result object that the benchmark
harness under ``benchmarks/`` renders as the same rows/series the paper
reports.  See DESIGN.md §4 for the experiment ↔ module ↔ bench index.
"""

from repro.experiments.motivation import (
    run_azure_hash_imbalance,
    run_heterogeneous_pair,
    run_policy_capacity_sweep,
)
from repro.experiments.weight_latency import run_weight_sweep
from repro.experiments.ilp_scale import (
    run_ilp_grid,
    run_ilp_scaling,
    run_multistep_accuracy,
)
from repro.experiments.klb_testbed import (
    run_exploration_study,
    run_policy_comparison,
    run_weighted_policy_comparison,
)
from repro.experiments.three_dip import run_three_dip_comparison
from repro.experiments.dynamics import run_dynamics_study
from repro.experiments.other_lbs import run_agent_baseline, run_other_lb_weights
from repro.experiments.overheads import run_overhead_model
from repro.experiments.scenarios import (
    ScenarioResult,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario,
)

__all__ = [
    "run_azure_hash_imbalance",
    "run_heterogeneous_pair",
    "run_policy_capacity_sweep",
    "run_weight_sweep",
    "run_ilp_grid",
    "run_ilp_scaling",
    "run_multistep_accuracy",
    "run_exploration_study",
    "run_policy_comparison",
    "run_weighted_policy_comparison",
    "run_three_dip_comparison",
    "run_dynamics_study",
    "run_agent_baseline",
    "run_other_lb_weights",
    "run_overhead_model",
    "ScenarioResult",
    "ScenarioSpec",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
    "scenario",
]

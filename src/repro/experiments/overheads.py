"""Table 8 + §6.7: KnapsackLB's overhead at datacenter scale.

The overhead model follows the paper's accounting: KLM probe cores, latency
store footprint and controller cores (regression + ILP), normalised against
a 60 K-DIP datacenter whose DIPs run on 8-core VMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends import D8A_V4, DS1_V2
from repro.core.config import IlpConfig
from repro.experiments.ilp_scale import f_series_like_curve
from repro.core.ilp import build_assignment_problem, solve_assignment
from repro.probing.klm import KLM_REQUESTS_PER_SECOND_PER_CORE
from repro.workloads import table8_vip_counts

#: Paper constants (§6.7).
REGRESSION_MS_PER_DIP = 1.0
REDIS_COST_PER_DAY_USD = 6.0
BYTES_PER_LATENCY_POINT = 64
POINTS_PER_DIP = 10


@dataclass(frozen=True)
class OverheadReport:
    """The §6.7 overhead accounting for a Table 8 datacenter."""

    total_dips: int
    total_vips: int
    klm_cores: float
    klm_core_overhead_percent: float
    klm_cost_overhead_percent: float
    store_megabytes: float
    regression_cores: float
    controller_ilp_time_s: float
    controller_vms: float
    controller_core_overhead_percent: float
    measured_ilp_time_per_vip_s: dict[int, float]


def run_overhead_model(
    *,
    probe_interval_s: float = 5.0,
    requests_per_probe: int = 100,
    control_interval_s: float = 5.0,
    controller_cores: int = 8,
    max_measured_vip_size: int = 500,
    backend: str = "auto",
) -> OverheadReport:
    """Compute the overhead numbers, measuring real ILP times per VIP size.

    For VIP sizes up to ``max_measured_vip_size`` the ILP time is measured
    with the actual solver; the largest class (1000 DIPs/VIP) is
    extrapolated quadratically from the measured points to keep the bench
    quick (Table 6 measures it directly).
    """
    vip_mix = table8_vip_counts()
    total_dips = sum(size * count for size, count in vip_mix.items())
    total_vips = sum(vip_mix.values())

    # --- KLM ------------------------------------------------------------------
    probes_per_dip_per_s = requests_per_probe / probe_interval_s
    dips_per_core = KLM_REQUESTS_PER_SECOND_PER_CORE / probes_per_dip_per_s
    klm_cores = 0.0
    for size, count in vip_mix.items():
        # One KLM per VNET/VIP (it cannot be shared across VNETs); each KLM
        # needs at least one core.
        cores_per_vip = max(1.0, size / dips_per_core)
        klm_cores += cores_per_vip * count
    dip_cores = total_dips * D8A_V4.vcpus
    klm_core_overhead = klm_cores / dip_cores * 100.0
    dip_cost = total_dips * D8A_V4.monthly_cost_usd
    klm_cost = klm_cores * DS1_V2.monthly_cost_usd
    klm_cost_overhead = klm_cost / dip_cost * 100.0

    # --- latency store ----------------------------------------------------------
    store_bytes = total_dips * POINTS_PER_DIP * BYTES_PER_LATENCY_POINT
    store_megabytes = store_bytes / (1024 * 1024)

    # --- controller: regression -------------------------------------------------
    regression_cores = (total_dips * REGRESSION_MS_PER_DIP / 1000.0) / control_interval_s

    # --- controller: ILP ---------------------------------------------------------
    config = IlpConfig(backend=backend)
    measured: dict[int, float] = {}
    for size in sorted(vip_mix):
        if size > max_measured_vip_size:
            continue
        curve = f_series_like_curve(size)
        curves = {f"d{i}": curve for i in range(size)}
        problem = build_assignment_problem(curves, config=config)
        outcome = solve_assignment("overhead", problem, config=config)
        measured[size] = outcome.solver_result.solve_time_s

    total_ilp_time = 0.0
    largest_measured = max(measured)
    for size, count in vip_mix.items():
        if size in measured:
            per_vip = measured[size]
        else:
            # Quadratic extrapolation from the largest measured VIP size.
            per_vip = measured[largest_measured] * (size / largest_measured) ** 2
        total_ilp_time += per_vip * count

    controller_vms = max(1.0, total_ilp_time / control_interval_s)
    controller_cores = controller_vms * controller_cores
    controller_core_overhead = (controller_cores + regression_cores) / dip_cores * 100.0

    return OverheadReport(
        total_dips=total_dips,
        total_vips=total_vips,
        klm_cores=klm_cores,
        klm_core_overhead_percent=klm_core_overhead,
        klm_cost_overhead_percent=klm_cost_overhead,
        store_megabytes=store_megabytes,
        regression_cores=regression_cores,
        controller_ilp_time_s=total_ilp_time,
        controller_vms=controller_vms,
        controller_core_overhead_percent=controller_core_overhead,
        measured_ilp_time_per_vip_s=measured,
    )

"""Motivation experiments (§2.1, §2.2): Figs. 3-4, Table 1 and the DS/F pair.

These reproduce the paper's observation that RR, least-connection and 5-tuple
hashing do not adapt when DIP capacities differ or change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import DipId
from repro.lb import FiveTupleHash, LeastConnection, MuxPool, RoundRobin
from repro.sim import RequestCluster
from repro.workloads import build_heterogeneous_pair, build_three_dip_pool

#: Capacity ratios swept in Figs. 3 and 4.
CAPACITY_RATIOS = (1.0, 0.9, 0.75, 0.6)


@dataclass(frozen=True)
class PolicyCapacityPoint:
    """One (policy, capacity-ratio) cell of Fig. 3 / Fig. 4."""

    policy: str
    capacity_ratio: float
    cpu_utilization: dict[DipId, float]
    mean_latency_ms: dict[DipId, float]
    overall_latency_ms: float


def _policy_factory(policy: str, dips, num_muxes: int, seed: int):
    if policy == "rr":
        return RoundRobin(list(dips))
    if policy == "lc":
        if num_muxes > 1:
            return MuxPool(lambda: LeastConnection(list(dips)), num_muxes=num_muxes)
        return LeastConnection(list(dips))
    if policy == "hash":
        return FiveTupleHash(list(dips))
    raise ValueError(f"unsupported motivation policy {policy!r}")


def run_policy_capacity_sweep(
    policy: str,
    *,
    ratios: tuple[float, ...] = CAPACITY_RATIOS,
    load_fraction: float = 0.80,
    requests: int = 5000,
    num_muxes: int = 4,
    seed: int = 17,
) -> list[PolicyCapacityPoint]:
    """Figs. 3 and 4: RR / LCA on the 3-DIP pool as DIP-LC's capacity shrinks.

    The load is held constant at ``load_fraction`` of the pool's *original*
    capacity while DIP-LC's capacity drops, as in the paper (the LB keeps
    splitting traffic the same way).
    """
    results: list[PolicyCapacityPoint] = []
    base_pool = build_three_dip_pool(capacity_ratio=1.0, cores=2, seed=seed)
    base_capacity = sum(d.capacity_rps for d in base_pool.values())
    rate = base_capacity * load_fraction

    for ratio in ratios:
        dips = build_three_dip_pool(capacity_ratio=ratio, cores=2, seed=seed)
        lb = _policy_factory(policy, dips, num_muxes, seed)
        cluster = RequestCluster(dips, lb, rate_rps=rate, seed=seed)
        run = cluster.run(num_requests=requests, warmup_s=2.0)
        metrics = run.metrics
        results.append(
            PolicyCapacityPoint(
                policy=policy,
                capacity_ratio=ratio,
                cpu_utilization=metrics.utilization(),
                mean_latency_ms={
                    dip: metrics.mean_latency_ms(dips=[dip]) for dip in dips
                },
                overall_latency_ms=metrics.mean_latency_ms(),
            )
        )
    return results


@dataclass(frozen=True)
class AzureImbalanceResult:
    """Table 1: CPU utilization and latency under 5-tuple hashing."""

    cpu_utilization: dict[DipId, float]
    mean_latency_ms: dict[DipId, float]
    latency_gap_percent: float


def run_azure_hash_imbalance(
    *,
    capacity_ratio: float = 0.6,
    load_fraction: float = 0.80,
    requests: int = 6000,
    seed: int = 23,
) -> AzureImbalanceResult:
    """Table 1: Azure L4 LB (hash) on the 3-DIP pool with DIP-LC at 60 %."""
    dips = build_three_dip_pool(capacity_ratio=1.0, cores=2, seed=seed)
    rate = sum(d.capacity_rps for d in dips.values()) * load_fraction
    dips["DIP-LC"].set_capacity_ratio(capacity_ratio)

    cluster = RequestCluster(dips, FiveTupleHash(list(dips)), rate_rps=rate, seed=seed)
    metrics = cluster.run(num_requests=requests, warmup_s=2.0).metrics

    lc_latency = metrics.mean_latency_ms(dips=["DIP-LC"])
    hc_latency = metrics.mean_latency_ms(dips=["DIP-HC-1", "DIP-HC-2"])
    gap = (lc_latency - hc_latency) / hc_latency * 100.0
    return AzureImbalanceResult(
        cpu_utilization=metrics.utilization(),
        mean_latency_ms={dip: metrics.mean_latency_ms(dips=[dip]) for dip in dips},
        latency_gap_percent=gap,
    )


@dataclass(frozen=True)
class HeterogeneousPairResult:
    """§2.2: equal split over one DS and one F DIP is not latency-optimal."""

    equal_split_latency_ms: float
    f_biased_latency_ms: float
    improvement_percent: float
    request_share_equal: dict[DipId, float]


def run_heterogeneous_pair(
    *,
    load_fraction: float = 0.75,
    requests: int = 6000,
    seed: int = 29,
) -> HeterogeneousPairResult:
    """§2.2: splitting equally between a DS and an F DIP wastes the F DIP."""
    from repro.lb import WeightedRoundRobin

    dips = build_heterogeneous_pair(seed=seed)
    rate = sum(d.capacity_rps for d in dips.values()) * load_fraction

    equal = RequestCluster(
        dips, RoundRobin(list(dips)), rate_rps=rate, seed=seed
    ).run(num_requests=requests, warmup_s=2.0)

    # Bias towards the F-series DIP in proportion to capacity.
    fresh = build_heterogeneous_pair(seed=seed)
    total = sum(d.capacity_rps for d in fresh.values())
    weights = {dip: server.capacity_rps / total for dip, server in fresh.items()}
    biased = RequestCluster(
        fresh, WeightedRoundRobin(list(fresh), weights=weights), rate_rps=rate, seed=seed
    ).run(num_requests=requests, warmup_s=2.0)

    equal_latency = equal.metrics.mean_latency_ms()
    biased_latency = biased.metrics.mean_latency_ms()
    return HeterogeneousPairResult(
        equal_split_latency_ms=equal_latency,
        f_biased_latency_ms=biased_latency,
        improvement_percent=(equal_latency - biased_latency) / equal_latency * 100.0,
        request_share_equal=equal.metrics.request_share(),
    )

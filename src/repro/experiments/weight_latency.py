"""Fig. 5: latency and CPU utilization as the weight (traffic) grows.

Application latency rises with the weight while ICMP/TCP ping latency stays
flat — the observation that justifies using application-level probes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends import DipServer, custom_vm_type


@dataclass(frozen=True)
class WeightSweepPoint:
    """One x-position of Fig. 5 (traffic multiplier 1×..8×)."""

    multiplier: int
    cpu_utilization: float
    app_latency_ms: float
    ping_latency_ms: float
    tcp_latency_ms: float


def run_weight_sweep(
    *,
    steps: int = 8,
    base_rate_fraction: float = 0.12,
    capacity_rps: float = 800.0,
    cores: int = 2,
    seed: int = 3,
) -> list[WeightSweepPoint]:
    """Sweep the offered traffic from 1× to ``steps``× of a base rate.

    The base rate is ``base_rate_fraction`` of the DIP's capacity, so 8×
    lands just below saturation as in the paper's figure.
    """
    vm = custom_vm_type("fig5-vm", vcpus=cores, capacity_rps=capacity_rps)
    dip = DipServer("fig5-dip", vm, seed=seed, jitter_fraction=0.0)
    base_rate = capacity_rps * base_rate_fraction

    points: list[WeightSweepPoint] = []
    for multiplier in range(1, steps + 1):
        rate = base_rate * multiplier
        dip.set_offered_rate(rate)
        points.append(
            WeightSweepPoint(
                multiplier=multiplier,
                cpu_utilization=dip.cpu_utilization * 100.0,
                app_latency_ms=dip.mean_latency_ms,
                ping_latency_ms=dip.latency_model.ping_latency_ms(rate),
                tcp_latency_ms=dip.latency_model.ping_latency_ms(rate) * 1.1,
            )
        )
    return points

"""The 30-DIP testbed experiments: Figs. 9-13 and Table 4 (§6.1, §6.2).

The KnapsackLB weights are computed by running the controller against a
fluid twin of the testbed (this is the role the real controller plays), and
then each policy — KLB's weighted round robin, RR, LC, random, power-of-two
and the Azure-style 5-tuple hash — is evaluated on the request-level
simulator with the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import KnapsackLBController
from repro.core.types import DipId
from repro.lb import (
    FiveTupleHash,
    LeastConnection,
    MuxPool,
    PowerOfTwo,
    RandomSelect,
    RoundRobin,
    WeightedLeastConnection,
    WeightedRoundRobin,
)
from repro.sim import FluidCluster, MetricsCollector, RequestCluster, max_latency_gain, fraction_of_requests_improved
from repro.workloads import build_testbed_dips

CORE_GROUPS = {"1-core": 1, "2-core": 2, "4-core": 4, "8-core": 8}


@dataclass(frozen=True)
class ExplorationStudy:
    """Fig. 9 + Fig. 10 + Fig. 11 data from one controller run."""

    iterations: int
    rounds: int
    elapsed_s: float
    weight_history: dict[DipId, list[float]]
    w_max: dict[DipId, float]
    fit_points: dict[DipId, list[tuple[float, float]]]
    curve_samples: dict[DipId, list[tuple[float, float]]]
    ilp_weights: dict[DipId, float]
    weight_ratio_by_cores: dict[str, float]


def compute_testbed_weights(
    *, load_fraction: float = 0.70, seed: int = 42
) -> tuple[dict[DipId, float], float, KnapsackLBController, FluidCluster]:
    """Run the controller on the fluid testbed; returns (weights, rate, ...)."""
    layout = build_testbed_dips(seed=seed)
    rate = layout.total_capacity_rps * load_fraction
    cluster = FluidCluster(dips=dict(layout.dips), total_rate_rps=rate, policy_name="wrr")
    controller = KnapsackLBController("vip-testbed", cluster)
    assignment = controller.converge()
    return dict(assignment.weights), rate, controller, cluster


def run_exploration_study(
    *, load_fraction: float = 0.70, seed: int = 42, sample_dips: tuple[str, ...] = ("DIP-1", "DIP-17", "DIP-25", "DIP-29")
) -> ExplorationStudy:
    """Figs. 9-11: exploration weights, fitted curves and ILP weights."""
    weights, _, controller, cluster = compute_testbed_weights(
        load_fraction=load_fraction, seed=seed
    )

    fit_points = {}
    curve_samples = {}
    for dip in sample_dips:
        state = controller.explorations[dip]
        usable = state.usable_points()
        fit_points[dip] = [(p.weight, p.latency_ms) for p in usable]
        curve = controller.curves[dip]
        upper = max(curve.w_max * 1.2, 1e-3)
        grid = [upper * i / 20 for i in range(21)]
        curve_samples[dip] = [(w, curve.predict(w)) for w in grid]

    groups = {
        name: [d for d, s in cluster.dips.items() if s.vm_type.vcpus == cores]
        for name, cores in CORE_GROUPS.items()
    }
    mean_weight = {
        name: sum(weights.get(d, 0.0) for d in dips) / len(dips)
        for name, dips in groups.items()
    }
    smallest = min(v for v in mean_weight.values() if v > 0)
    ratios = {name: value / smallest for name, value in mean_weight.items()}

    # Use the latest exploration report from the controller run.
    history = {d: controller.explorations[d].history for d in sample_dips}
    iterations = max(len(h) for h in history.values())
    return ExplorationStudy(
        iterations=iterations,
        rounds=sum(len(h) for h in history.values()),
        elapsed_s=controller.time,
        weight_history={
            d: [step.next_weight for step in controller.explorations[d].history]
            for d in sample_dips
        },
        w_max={d: controller.explorations[d].effective_w_max() for d in sample_dips},
        fit_points=fit_points,
        curve_samples=curve_samples,
        ilp_weights=weights,
        weight_ratio_by_cores=ratios,
    )


@dataclass(frozen=True)
class PolicyRun:
    """One policy's outcome on the testbed workload (feeds Figs. 12-13, Table 4)."""

    policy: str
    overall_latency_ms: float
    latency_by_group_ms: dict[str, float]
    utilization_by_group: dict[str, float]
    metrics: MetricsCollector = field(repr=False, hash=False, compare=False)


@dataclass(frozen=True)
class PolicyComparison:
    """Figs. 12-13 + Table 4: all policies side by side."""

    runs: dict[str, PolicyRun]

    def max_gain_percent(self, baseline: str, improved: str = "klb") -> float:
        """Table 4: max latency gain of ``improved`` over ``baseline``."""
        gain = max_latency_gain(
            self.runs[baseline].metrics, self.runs[improved].metrics
        )
        return gain * 100.0

    def improved_fraction_percent(self, baseline: str, improved: str = "klb") -> float:
        return (
            fraction_of_requests_improved(
                self.runs[baseline].metrics, self.runs[improved].metrics
            )
            * 100.0
        )


def _group_metrics(metrics: MetricsCollector, dips) -> tuple[dict[str, float], dict[str, float]]:
    latency = {}
    utilization = {}
    utils = metrics.utilization()
    for name, cores in CORE_GROUPS.items():
        members = [d for d, s in dips.items() if s.vm_type.vcpus == cores]
        latency[name] = metrics.mean_latency_ms(dips=members)
        utilization[name] = sum(utils.get(d, 0.0) for d in members) / len(members)
    return latency, utilization


def _evaluate_policy(
    name: str,
    policy_factory,
    rate: float,
    *,
    requests: int,
    seed: int,
) -> PolicyRun:
    dips = dict(build_testbed_dips(seed=seed).dips)
    policy = policy_factory(dips)
    cluster = RequestCluster(dips, policy, rate_rps=rate, seed=seed, queue_capacity=256)
    run = cluster.run(num_requests=requests, warmup_s=1.0)
    latency_by_group, util_by_group = _group_metrics(run.metrics, dips)
    return PolicyRun(
        policy=name,
        overall_latency_ms=run.metrics.mean_latency_ms(),
        latency_by_group_ms=latency_by_group,
        utilization_by_group=util_by_group,
        metrics=run.metrics,
    )


def run_policy_comparison(
    *,
    load_fraction: float = 0.70,
    requests: int = 8000,
    seed: int = 42,
    num_muxes: int = 8,
    policies: tuple[str, ...] = ("rr", "lc", "random", "p2", "hash", "klb"),
) -> PolicyComparison:
    """Fig. 12 + Table 4 (unweighted): RR/LC/RD/P2/Azure-hash vs KnapsackLB.

    Adaptive unweighted policies (LC, P2) run through a ``num_muxes``-wide
    MUX pool, reflecting the scaled-out dataplane of Fig. 1.
    """
    weights, rate, _, _ = compute_testbed_weights(load_fraction=load_fraction, seed=seed)

    factories = {
        "rr": lambda dips: RoundRobin(list(dips)),
        "lc": lambda dips: MuxPool(lambda: LeastConnection(list(dips)), num_muxes=num_muxes),
        "random": lambda dips: RandomSelect(list(dips), seed=seed),
        "p2": lambda dips: MuxPool(lambda: PowerOfTwo(list(dips), seed=seed), num_muxes=num_muxes),
        "hash": lambda dips: FiveTupleHash(list(dips)),
        "klb": lambda dips: WeightedRoundRobin(list(dips), weights=weights),
    }
    runs = {
        name: _evaluate_policy(name, factories[name], rate, requests=requests, seed=seed)
        for name in policies
    }
    return PolicyComparison(runs=runs)


def run_weighted_policy_comparison(
    *,
    load_fraction: float = 0.70,
    requests: int = 8000,
    seed: int = 42,
    num_muxes: int = 8,
) -> PolicyComparison:
    """Fig. 13 + Table 4 (weighted): WRR / WLC with core-count weights vs KLB.

    The operator-set weights are proportional to the DIP's core count — the
    natural static choice that ignores the sub-linear scaling of the bigger
    DS VMs and the F-series speedup, which is exactly what the paper
    criticises.
    """
    klb_weights, rate, _, _ = compute_testbed_weights(load_fraction=load_fraction, seed=seed)

    layout = build_testbed_dips(seed=seed)
    total_cores = sum(s.vm_type.vcpus for s in layout.dips.values())
    core_weights = {
        d: s.vm_type.vcpus / total_cores for d, s in layout.dips.items()
    }

    factories = {
        "wrr": lambda dips: WeightedRoundRobin(list(dips), weights=core_weights),
        "wlc": lambda dips: MuxPool(
            lambda: WeightedLeastConnection(list(dips), weights=core_weights),
            num_muxes=num_muxes,
        ),
        "klb": lambda dips: WeightedRoundRobin(list(dips), weights=klb_weights),
    }
    runs = {
        name: _evaluate_policy(name, factory, rate, requests=requests, seed=seed)
        for name, factory in factories.items()
    }
    return PolicyComparison(runs=runs)

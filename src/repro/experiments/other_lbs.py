"""Table 5 (Nginx / Azure Traffic Manager) and the §6.4 agent baseline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents import CpuAgentBalancer
from repro.backends import DipServer, custom_vm_type
from repro.core import KnapsackLBController
from repro.core.types import DipId
from repro.lb import AzureTrafficManagerSim, NginxSim
from repro.sim import FluidCluster, RequestCluster

TABLE5_WEIGHTS = {"DIP-1": 0.2, "DIP-2": 0.3, "DIP-3": 0.5}


@dataclass(frozen=True)
class OtherLbResult:
    """Table 5: request share per DIP when weights 0.2/0.3/0.5 are programmed."""

    nginx_share: dict[DipId, float]
    traffic_manager_share: dict[DipId, float]


def run_other_lb_weights(
    *,
    requests: int = 10_000,
    rate_rps: float = 600.0,
    dns_cache_ttl_s: float = 10.0,
    num_clients: int = 200,
    seed: int = 37,
) -> OtherLbResult:
    """Program 0.2/0.3/0.5 through Nginx and DNS and measure the split.

    DNS-based balancing only approximates the weights when there are enough
    distinct clients (each client caches one resolution for the TTL), so the
    client pool here is larger than the 8-VM default.
    """
    from repro.sim import ClientPool

    vm = custom_vm_type("t5", vcpus=2, capacity_rps=800.0)
    clients = ClientPool(num_clients=num_clients)

    def pool():
        return {
            dip: DipServer(dip, vm, seed=seed + index, jitter_fraction=0.0)
            for index, dip in enumerate(TABLE5_WEIGHTS)
        }

    nginx = NginxSim(list(TABLE5_WEIGHTS), algorithm="weighted-roundrobin")
    nginx.set_weights(TABLE5_WEIGHTS)
    nginx_cluster = RequestCluster(
        pool(), nginx.policy, rate_rps=rate_rps, seed=seed, clients=clients
    )
    nginx_cluster.run(num_requests=requests)

    tm = AzureTrafficManagerSim(list(TABLE5_WEIGHTS), cache_ttl_s=dns_cache_ttl_s, seed=seed)
    tm.set_weights(TABLE5_WEIGHTS)
    tm_cluster = RequestCluster(
        pool(), tm.policy, rate_rps=rate_rps, seed=seed, clients=clients
    )
    tm_cluster.run(num_requests=requests)

    return OtherLbResult(
        nginx_share=nginx_cluster.request_share(),
        traffic_manager_share=tm_cluster.request_share(),
    )


@dataclass(frozen=True)
class AgentBaselineResult:
    """§6.4: iterations needed by the CPU-agent baseline vs KnapsackLB."""

    agent_iterations: int
    agent_final_spread: float
    klb_ilp_runs: int
    klb_utilization_spread: float


def run_agent_baseline(
    *,
    capacity_ratio: float = 0.75,
    load_fraction: float = 0.7,
    seed: int = 41,
) -> AgentBaselineResult:
    """Compare the agent-based CPU equaliser against KnapsackLB on 4 DIPs.

    One of the four same-type DIPs runs at 75 % capacity (§6.4).
    """
    def pool():
        vm = custom_vm_type("agent-vm", vcpus=2, capacity_rps=800.0)
        dips = {
            f"DIP-{i}": DipServer(f"DIP-{i}", vm, seed=seed + i, jitter_fraction=0.0)
            for i in range(1, 5)
        }
        dips["DIP-4"].set_capacity_ratio(capacity_ratio)
        return dips

    rate = sum(d.capacity_rps for d in pool().values()) * load_fraction

    agent_cluster = FluidCluster(dips=pool(), total_rate_rps=rate, policy_name="wrr")
    balancer = CpuAgentBalancer(agent_cluster, tolerance=0.02)
    balancer.run()

    klb_cluster = FluidCluster(dips=pool(), total_rate_rps=rate, policy_name="wrr")
    controller = KnapsackLBController("vip-agent", klb_cluster)
    controller.converge()
    utils = klb_cluster.state().utilization
    return AgentBaselineResult(
        agent_iterations=balancer.iterations_to_converge,
        agent_final_spread=balancer.history[-1].spread,
        klb_ilp_runs=len(controller.ilp_history),
        klb_utilization_spread=max(utils.values()) - min(utils.values()),
    )

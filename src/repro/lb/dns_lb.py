"""DNS-based weighted load balancing (Azure Traffic Manager, §6.5).

When an LB offers no interface to program weights (e.g. the Azure public L4
LB), KnapsackLB falls back to DNS: a weighted resolver returns DIP addresses
with probability proportional to their weights, and clients cache the
resolution for a TTL.  The cache is what makes DNS-based balancing slower to
adhere to new weights — a behaviour the paper explicitly calls out and that
Table 5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb.base import FlowKey, Policy, register_policy


@dataclass
class _CacheEntry:
    dip: DipId
    expires_at: float


class WeightedDnsResolver:
    """A DNS resolver that answers with DIPs proportionally to their weights."""

    def __init__(
        self,
        dips: Iterable[DipId],
        *,
        weights: Mapping[DipId, float] | None = None,
        seed: int | None = None,
    ) -> None:
        dip_list = list(dips)
        if not dip_list:
            raise ConfigurationError("resolver needs at least one DIP")
        self._weights: dict[DipId, float] = {dip: 1.0 for dip in dip_list}
        self._healthy: dict[DipId, bool] = {dip: True for dip in dip_list}
        self._rng = np.random.default_rng(seed)
        if weights:
            self.set_weights(weights)

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        for dip, weight in weights.items():
            if dip not in self._weights:
                raise ConfigurationError(f"unknown DIP {dip!r}")
            if weight < 0:
                raise ConfigurationError(f"negative weight for {dip!r}")
            self._weights[dip] = float(weight)

    def weights(self) -> dict[DipId, float]:
        return dict(self._weights)

    def set_healthy(self, dip: DipId, healthy: bool) -> None:
        self._healthy[dip] = healthy

    def resolve(self) -> DipId:
        """Answer one DNS query with a weighted-random healthy DIP."""
        dips = [d for d, ok in self._healthy.items() if ok]
        if not dips:
            raise ConfigurationError("no healthy DIPs to resolve to")
        weights = np.array([max(0.0, self._weights[d]) for d in dips])
        total = weights.sum()
        if total <= 0:
            weights = np.ones(len(dips))
            total = float(len(dips))
        index = int(self._rng.choice(len(dips), p=weights / total))
        return dips[index]


class DnsWeightedPolicy(Policy):
    """Client-side view of DNS load balancing with per-client caching.

    Each distinct client (source IP) resolves the VIP's name at most once
    per ``cache_ttl_s`` of simulated time; in between, all its connections
    go to the cached DIP.  ``advance_time`` must be called by the simulator
    so cache entries can expire.
    """

    name = "dns"
    supports_weights = True
    uses_connection_counts = False

    def __init__(
        self,
        dips: Iterable[DipId],
        *,
        cache_ttl_s: float = 30.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(dips)
        if cache_ttl_s < 0:
            raise ConfigurationError("cache_ttl_s must be >= 0")
        self._resolver = WeightedDnsResolver(self.dips, seed=seed)
        self._cache: dict[str, _CacheEntry] = {}
        self._cache_ttl_s = cache_ttl_s
        self._now = 0.0

    @property
    def resolver(self) -> WeightedDnsResolver:
        return self._resolver

    def advance_time(self, now: float) -> None:
        self._now = max(self._now, float(now))

    def _on_weights_changed(self) -> None:
        self._resolver.set_weights(self.weights())

    def set_healthy(self, dip: DipId, healthy: bool) -> None:
        super().set_healthy(dip, healthy)
        self._resolver.set_healthy(dip, healthy)

    def select(self, flow: FlowKey) -> DipId:
        client = flow.src_ip
        entry = self._cache.get(client)
        if entry is not None and entry.expires_at > self._now:
            if self.view(entry.dip).healthy:
                return entry.dip
        dip = self._resolver.resolve()
        self._cache[client] = _CacheEntry(
            dip=dip, expires_at=self._now + self._cache_ttl_s
        )
        return dip


register_policy("dns", DnsWeightedPolicy, weighted=True, summary="DNS weighted resolution with client caching")

"""Base classes for layer-4 load-balancing policies.

A :class:`Policy` decides which DIP receives a new connection.  Policies are
deliberately minimal — exactly the per-connection decision a MUX makes in
the paper's Fig. 1 — and are driven either by the request-level simulator
(`repro.sim`) or directly by tests.

Weighted policies additionally expose ``set_weights``; this is the interface
KnapsackLB programs (§3.2 "Using weights to control traffic").
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.types import DipId
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FlowKey:
    """The TCP/IP 5-tuple identifying a connection (used by hash policies)."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: str = "tcp"

    def as_tuple(self) -> tuple[str, int, str, int, str]:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol)


@dataclass
class DipView:
    """What a MUX can observe about a DIP when making a decision.

    ``active_connections`` is maintained by the MUX itself (least-connection
    policies); ``cpu_utilization`` is only available to policies that the
    paper describes as using it (power-of-two in §6.2 compares CPU of two
    sampled DIPs).
    """

    dip: DipId
    weight: float = 1.0
    active_connections: int = 0
    cpu_utilization: float = 0.0
    healthy: bool = True


class Policy(abc.ABC):
    """A DIP-selection policy running on a MUX."""

    #: human-readable policy name used in experiment tables.
    name: str = "policy"
    #: whether :meth:`set_weights` has any effect.
    supports_weights: bool = False
    #: whether :meth:`select` inspects the flow 5-tuple.  Policies that
    #: ignore it (round robin, least connection, …) let the request
    #: simulator skip building a FlowKey per request on the hot path.
    uses_flow: bool = True
    #: whether :meth:`select` reads ``active_connections``.  When a policy
    #: never looks at connection counts (round robin, hash, random, DNS),
    #: the simulator skips the per-request open/close bookkeeping.
    uses_connection_counts: bool = True

    def __init__(self, dips: Iterable[DipId]) -> None:
        dip_list = list(dips)
        if not dip_list:
            raise ConfigurationError("a policy needs at least one DIP")
        if len(set(dip_list)) != len(dip_list):
            raise ConfigurationError("duplicate DIP ids")
        self._views: dict[DipId, DipView] = {
            dip: DipView(dip=dip) for dip in dip_list
        }
        # Healthy-set caches: select() runs once per simulated request, so
        # recomputing the healthy tuple per call is O(DIPs) on the hot path.
        # Health only changes through set_healthy/add_dip/remove_dip, which
        # invalidate both caches.
        self._healthy_cache: tuple[DipId, ...] | None = None
        self._candidates_cache: list[DipView] | None = None

    # -- DIP pool management -------------------------------------------------

    def _invalidate_pool_caches(self) -> None:
        self._healthy_cache = None
        self._candidates_cache = None

    @property
    def dips(self) -> tuple[DipId, ...]:
        return tuple(self._views)

    @property
    def healthy_dips(self) -> tuple[DipId, ...]:
        cached = self._healthy_cache
        if cached is None:
            cached = tuple(d for d, v in self._views.items() if v.healthy)
            self._healthy_cache = cached
        return cached

    def view(self, dip: DipId) -> DipView:
        return self._views[dip]

    def add_dip(self, dip: DipId, *, weight: float = 1.0) -> None:
        if dip in self._views:
            raise ConfigurationError(f"DIP {dip!r} already present")
        if weight < 0:
            raise ConfigurationError(f"negative weight for {dip!r}")
        self._views[dip] = DipView(dip=dip, weight=float(weight))
        self._invalidate_pool_caches()

    def remove_dip(self, dip: DipId) -> None:
        self._views.pop(dip, None)
        self._invalidate_pool_caches()

    def set_healthy(self, dip: DipId, healthy: bool) -> None:
        self._views[dip].healthy = healthy
        self._invalidate_pool_caches()

    # -- weights --------------------------------------------------------------

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        """Program per-DIP weights; ignored by unweighted policies."""
        for dip, weight in weights.items():
            if dip not in self._views:
                raise ConfigurationError(f"unknown DIP {dip!r}")
            if weight < 0:
                raise ConfigurationError(f"negative weight for {dip!r}")
            self._views[dip].weight = float(weight)
        self._on_weights_changed()

    def weights(self) -> dict[DipId, float]:
        return {dip: view.weight for dip, view in self._views.items()}

    def _on_weights_changed(self) -> None:
        """Hook for policies that precompute schedules from weights."""

    # -- connection lifecycle --------------------------------------------------

    @abc.abstractmethod
    def select(self, flow: FlowKey) -> DipId:
        """Choose the DIP for a new connection."""

    def on_connection_open(self, dip: DipId) -> None:
        self._views[dip].active_connections += 1

    def on_connection_close(self, dip: DipId) -> None:
        view = self._views[dip]
        view.active_connections = max(0, view.active_connections - 1)

    def observe_utilization(self, utilization: Mapping[DipId, float]) -> None:
        """Update CPU-utilization views (used only by CPU-aware policies)."""
        for dip, util in utilization.items():
            if dip in self._views:
                self._views[dip].cpu_utilization = float(util)

    # -- helpers ---------------------------------------------------------------

    def _candidates(self) -> list[DipView]:
        views = self._candidates_cache
        if views is None:
            views = [v for v in self._views.values() if v.healthy]
            self._candidates_cache = views
        if not views:
            raise ConfigurationError("no healthy DIPs available")
        return views

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(dips={len(self._views)})"


@dataclass
class PolicyDescription:
    """Registry entry describing a policy implementation."""

    name: str
    factory: type
    weighted: bool
    summary: str = ""


_REGISTRY: dict[str, PolicyDescription] = {}


def register_policy(name: str, factory: type, *, weighted: bool, summary: str = "") -> None:
    """Register a policy class under ``name`` for lookup by experiments."""
    _REGISTRY[name] = PolicyDescription(
        name=name, factory=factory, weighted=weighted, summary=summary
    )


def policy_registry() -> dict[str, PolicyDescription]:
    return dict(_REGISTRY)


def make_policy(name: str, dips: Sequence[DipId], **kwargs) -> Policy:
    """Instantiate a registered policy by name."""
    try:
        description = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return description.factory(dips, **kwargs)


def policy_seed_kwargs(name: str, *, seed: int = 0) -> dict[str, int]:
    """``{"seed": seed}`` when ``name``'s constructor accepts one, else ``{}``.

    Derived from the registered factory's signature rather than a
    hard-coded name list, so newly registered stochastic policies seed
    correctly everywhere policies are instantiated from a spec (the
    request runner, the shard planner's throwaway probes).
    """
    try:
        description = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    parameters = inspect.signature(description.factory.__init__).parameters
    if "seed" in parameters:
        return {"seed": int(seed)}
    return {}

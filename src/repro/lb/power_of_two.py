"""Power-of-two-choices policy.

The paper's "P2" baseline (§6.2) samples two DIPs uniformly at random and
sends the connection to the one with the *lower CPU utilization*.  The
simulator feeds utilization observations through ``observe_utilization``;
when no utilization information is available the policy falls back to
comparing active connection counts (the classic power-of-two variant).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.types import DipId
from repro.lb.base import FlowKey, Policy, register_policy


class PowerOfTwo(Policy):
    """Sample two DIPs, pick the less-loaded one."""

    name = "p2"
    supports_weights = False
    uses_flow = False

    def __init__(
        self,
        dips: Iterable[DipId],
        *,
        use_cpu: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__(dips)
        self._use_cpu = use_cpu
        self._rng = np.random.default_rng(seed)

    def _load(self, view) -> float:
        if self._use_cpu and view.cpu_utilization > 0:
            return view.cpu_utilization
        return float(view.active_connections)

    def select(self, flow: FlowKey) -> DipId:
        candidates = self._candidates()
        if len(candidates) == 1:
            return candidates[0].dip
        first, second = self._rng.choice(len(candidates), size=2, replace=False)
        a, b = candidates[int(first)], candidates[int(second)]
        return a.dip if self._load(a) <= self._load(b) else b.dip


register_policy("p2", PowerOfTwo, weighted=False, summary="power of two choices")

"""Random and weighted-random DIP selection."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.core.types import DipId
from repro.lb.base import FlowKey, Policy, register_policy


class RandomSelect(Policy):
    """Select a healthy DIP uniformly at random (the paper's "RD" policy)."""

    name = "random"
    supports_weights = False
    uses_flow = False
    uses_connection_counts = False

    def __init__(self, dips: Iterable[DipId], *, seed: int | None = None) -> None:
        super().__init__(dips)
        self._rng = np.random.default_rng(seed)

    def select(self, flow: FlowKey) -> DipId:
        candidates = self.healthy_dips
        return candidates[int(self._rng.integers(len(candidates)))]


class WeightedRandom(Policy):
    """Select a DIP with probability proportional to its weight."""

    name = "wrandom"
    supports_weights = True
    uses_flow = False
    uses_connection_counts = False

    def __init__(
        self,
        dips: Iterable[DipId],
        *,
        weights: Mapping[DipId, float] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(dips)
        self._rng = np.random.default_rng(seed)
        if weights:
            self.set_weights(weights)

    def select(self, flow: FlowKey) -> DipId:
        candidates = self._candidates()
        weights = np.array([max(0.0, v.weight) for v in candidates], dtype=float)
        total = weights.sum()
        if total <= 0:
            weights = np.ones(len(candidates))
            total = float(len(candidates))
        probabilities = weights / total
        index = int(self._rng.choice(len(candidates), p=probabilities))
        return candidates[index].dip


register_policy("random", RandomSelect, weighted=False, summary="uniform random")
register_policy("wrandom", WeightedRandom, weighted=True, summary="weighted random")

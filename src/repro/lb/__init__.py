"""Layer-4 load balancer substrate.

Per-connection DIP-selection policies (round robin, least connection,
random, power-of-two, 5-tuple hash, weighted DNS), facades that mimic the
management interfaces of HAProxy / Nginx / Azure LB / Azure Traffic Manager,
and a MUX pool for scaled-out dataplanes.
"""

from repro.lb.base import (
    DipView,
    FlowKey,
    Policy,
    PolicyDescription,
    make_policy,
    policy_registry,
    policy_seed_kwargs,
    register_policy,
)
from repro.lb.dns_lb import DnsWeightedPolicy, WeightedDnsResolver
from repro.lb.facades import (
    AzureLBSim,
    AzureTrafficManagerSim,
    HAProxySim,
    NginxSim,
    WeightedLBFacade,
)
from repro.lb.hash_lb import FiveTupleHash, stable_hash
from repro.lb.least_connection import LeastConnection, WeightedLeastConnection
from repro.lb.mux import MuxPool, WeightUpdate
from repro.lb.power_of_two import PowerOfTwo
from repro.lb.random_lb import RandomSelect, WeightedRandom
from repro.lb.round_robin import RoundRobin, WeightedRoundRobin

__all__ = [
    "DipView",
    "FlowKey",
    "Policy",
    "PolicyDescription",
    "make_policy",
    "policy_registry",
    "policy_seed_kwargs",
    "register_policy",
    "DnsWeightedPolicy",
    "WeightedDnsResolver",
    "AzureLBSim",
    "AzureTrafficManagerSim",
    "HAProxySim",
    "NginxSim",
    "WeightedLBFacade",
    "FiveTupleHash",
    "stable_hash",
    "LeastConnection",
    "WeightedLeastConnection",
    "MuxPool",
    "WeightUpdate",
    "PowerOfTwo",
    "RandomSelect",
    "WeightedRandom",
    "RoundRobin",
    "WeightedRoundRobin",
]

"""Least-connection and weighted least-connection policies.

The paper's §2.1 analysis of least connection (LCA) hinges on its real
behaviour: it equalises the number of *concurrent* connections across DIPs,
which overloads low-capacity DIPs that hold on to connections for longer.
Our implementation reproduces exactly that dynamic because the simulator
maintains ``active_connections`` per DIP through the connection lifecycle
callbacks.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.types import DipId
from repro.lb.base import FlowKey, Policy, register_policy


class LeastConnection(Policy):
    """Pick the healthy DIP with the fewest active connections."""

    name = "lc"
    supports_weights = False
    uses_flow = False

    def select(self, flow: FlowKey) -> DipId:
        candidates = self._candidates()
        best = min(candidates, key=lambda v: (v.active_connections, v.dip))
        return best.dip


class WeightedLeastConnection(Policy):
    """Pick the DIP minimising ``active_connections / weight``.

    This is HAProxy's ``leastconn`` with server weights: a DIP with twice
    the weight is allowed twice the concurrent connections before it stops
    being preferred.
    """

    name = "wlc"
    supports_weights = True
    uses_flow = False

    def __init__(
        self,
        dips: Iterable[DipId],
        *,
        weights: Mapping[DipId, float] | None = None,
    ) -> None:
        super().__init__(dips)
        if weights:
            self.set_weights(weights)

    def select(self, flow: FlowKey) -> DipId:
        candidates = self._candidates()

        def score(view) -> tuple[float, str]:
            weight = view.weight if view.weight > 0 else 1e-9
            return (view.active_connections / weight, view.dip)

        return min(candidates, key=score).dip


register_policy("lc", LeastConnection, weighted=False, summary="least connection")
register_policy("wlc", WeightedLeastConnection, weighted=True, summary="weighted least connection")

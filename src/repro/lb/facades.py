"""Facades mimicking the management interfaces of real load balancers.

KnapsackLB is a *meta* LB: it never touches packets, it only programs
per-DIP weights through whatever interface the operator's LB exposes.  These
facades reproduce the three kinds of interfaces the paper exercises:

* :class:`HAProxySim` and :class:`NginxSim` — LBs with a native weight
  interface and a choice of balancing algorithm;
* :class:`AzureLBSim` — an LB with *no* weight interface (5-tuple hash only);
* :class:`AzureTrafficManagerSim` — weighted DNS used as the fallback when
  the LB itself cannot be programmed (§6.5).

Every facade exposes ``policy`` (the per-connection selection logic the
simulator drives) plus the weight-programming calls styled after the real
systems' configuration surfaces.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb.base import Policy, make_policy
from repro.lb.dns_lb import DnsWeightedPolicy
from repro.lb.hash_lb import FiveTupleHash


class WeightedLBFacade:
    """Common behaviour of LBs with a weight-programming interface."""

    #: algorithms the facade accepts, mapped to registered policy names.
    algorithms: dict[str, str] = {}
    default_algorithm: str = ""
    vendor: str = "generic"

    def __init__(
        self,
        dips: Iterable[DipId],
        *,
        algorithm: str | None = None,
        seed: int | None = None,
    ) -> None:
        self._dips = list(dips)
        algorithm = algorithm or self.default_algorithm
        if algorithm not in self.algorithms:
            raise ConfigurationError(
                f"{self.vendor} does not support algorithm {algorithm!r}; "
                f"available: {sorted(self.algorithms)}"
            )
        self.algorithm = algorithm
        policy_name = self.algorithms[algorithm]
        kwargs = {}
        if policy_name in ("random", "wrandom", "p2", "dns"):
            kwargs["seed"] = seed
        self.policy: Policy = make_policy(policy_name, self._dips, **kwargs)

    @property
    def supports_weights(self) -> bool:
        return self.policy.supports_weights

    def set_server_weight(self, dip: DipId, weight: float) -> None:
        """Program a single server weight (e.g. ``set weight backend/dip``)."""
        self.policy.set_weights({dip: weight})

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        """Program all server weights at once (what KnapsackLB calls)."""
        if not self.supports_weights:
            raise ConfigurationError(
                f"{self.vendor} algorithm {self.algorithm!r} ignores weights; "
                "use a weighted algorithm or a DNS traffic manager"
            )
        self.policy.set_weights(weights)

    def weights(self) -> dict[DipId, float]:
        return self.policy.weights()

    def disable_server(self, dip: DipId) -> None:
        """Mark a DIP down (health-check failure)."""
        self.policy.set_healthy(dip, False)

    def enable_server(self, dip: DipId) -> None:
        self.policy.set_healthy(dip, True)


class HAProxySim(WeightedLBFacade):
    """HAProxy with the algorithms the paper evaluates (§2.1, §6.2)."""

    vendor = "haproxy"
    default_algorithm = "roundrobin"
    algorithms = {
        "roundrobin": "rr",
        "static-rr": "rr",
        "leastconn": "lc",
        "weighted-roundrobin": "wrr",
        "weighted-leastconn": "wlc",
        "random": "random",
        "weighted-random": "wrandom",
        "power-of-two": "p2",
    }


class NginxSim(WeightedLBFacade):
    """Nginx stream (L4) load balancing with server weights (§6.5)."""

    vendor = "nginx"
    default_algorithm = "weighted-roundrobin"
    algorithms = {
        "roundrobin": "rr",
        "weighted-roundrobin": "wrr",
        "least_conn": "lc",
        "weighted-least_conn": "wlc",
        "random": "random",
        "random-two": "p2",
    }


class AzureLBSim:
    """Azure public L4 LB: 5-tuple hash only, no weight interface (§2.1)."""

    vendor = "azure-lb"

    def __init__(self, dips: Iterable[DipId]) -> None:
        self.policy: Policy = FiveTupleHash(list(dips))

    @property
    def supports_weights(self) -> bool:
        return False

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        raise ConfigurationError(
            "Azure L4 LB provides no weight interface; use "
            "AzureTrafficManagerSim (DNS) as the programmable layer"
        )

    def disable_server(self, dip: DipId) -> None:
        self.policy.set_healthy(dip, False)

    def enable_server(self, dip: DipId) -> None:
        self.policy.set_healthy(dip, True)


class AzureTrafficManagerSim:
    """Azure Traffic Manager: weighted DNS answers with client-side caching."""

    vendor = "azure-tm"

    def __init__(
        self,
        dips: Iterable[DipId],
        *,
        cache_ttl_s: float = 30.0,
        seed: int | None = None,
    ) -> None:
        self.policy: DnsWeightedPolicy = DnsWeightedPolicy(
            list(dips), cache_ttl_s=cache_ttl_s, seed=seed
        )

    @property
    def supports_weights(self) -> bool:
        return True

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        self.policy.set_weights(weights)

    def weights(self) -> dict[DipId, float]:
        return self.policy.weights()

    def disable_server(self, dip: DipId) -> None:
        self.policy.set_healthy(dip, False)

    def enable_server(self, dip: DipId) -> None:
        self.policy.set_healthy(dip, True)

"""5-tuple hash load balancing (the Azure L4 LB policy, §2.1).

Azure's public L4 LB only offers IP 5-tuple hashing [1]: each connection is
mapped to a DIP by hashing its 5-tuple, which yields an (approximately)
equal split regardless of DIP capacity.  We hash with a stable digest so
results are reproducible across runs and Python processes.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.core.types import DipId
from repro.lb.base import FlowKey, Policy, register_policy


def stable_hash(flow: FlowKey, *, salt: str = "") -> int:
    """A process-independent hash of the flow 5-tuple."""
    payload = ":".join(map(str, flow.as_tuple())) + salt
    digest = hashlib.sha1(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class FiveTupleHash(Policy):
    """Hash the 5-tuple onto the healthy DIP set (equal-capacity assumption)."""

    name = "hash"
    supports_weights = False
    uses_connection_counts = False

    def __init__(self, dips: Iterable[DipId], *, salt: str = "") -> None:
        super().__init__(dips)
        self._salt = salt

    def select(self, flow: FlowKey) -> DipId:
        candidates = self.healthy_dips
        index = stable_hash(flow, salt=self._salt) % len(candidates)
        return candidates[index]


register_policy("hash", FiveTupleHash, weighted=False, summary="IP 5-tuple hash (Azure L4 LB)")

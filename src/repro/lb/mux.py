"""MUX pool: an L4 LB scaled out over multiple dataplane instances (Fig. 1).

Production LBs (Ananta, Maglev, Duet) run the dataplane on many MUXes, each
making independent per-connection decisions; ECMP spreads incoming flows
across MUXes.  KnapsackLB never talks to MUXes directly — it programs
weights through the LB controller, which then pushes them to every MUX.

:class:`MuxPool` reproduces that structure: ``num_muxes`` policy instances
of the same type, a hash-based ECMP spread of flows onto MUXes, and a
``program_weights`` call that propagates weights to all instances (with an
optional per-MUX propagation delay the simulator can honour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb.base import FlowKey, Policy
from repro.lb.hash_lb import stable_hash


@dataclass(frozen=True)
class WeightUpdate:
    """A weight push recorded by the LB controller (for observability)."""

    time: float
    weights: dict[DipId, float]


class MuxPool:
    """A set of identical MUXes fronted by ECMP."""

    #: ECMP hashes the flow onto a MUX, so the pool always needs the 5-tuple.
    uses_flow = True

    def __init__(
        self,
        policy_factory: Callable[[], Policy],
        *,
        num_muxes: int = 1,
    ) -> None:
        if num_muxes < 1:
            raise ConfigurationError("num_muxes must be >= 1")
        self._muxes: list[Policy] = [policy_factory() for _ in range(num_muxes)]
        first = self._muxes[0]
        for mux in self._muxes[1:]:
            if mux.dips != first.dips:
                raise ConfigurationError("all MUXes must front the same DIP set")
        self._updates: list[WeightUpdate] = []

    @property
    def num_muxes(self) -> int:
        return len(self._muxes)

    @property
    def muxes(self) -> Sequence[Policy]:
        return tuple(self._muxes)

    @property
    def dips(self) -> tuple[DipId, ...]:
        return self._muxes[0].dips

    @property
    def supports_weights(self) -> bool:
        return self._muxes[0].supports_weights

    @property
    def uses_connection_counts(self) -> bool:
        return self._muxes[0].uses_connection_counts

    def mux_for(self, flow: FlowKey) -> Policy:
        """ECMP: hash the flow onto one MUX instance."""
        index = stable_hash(flow, salt="ecmp") % len(self._muxes)
        return self._muxes[index]

    def select(self, flow: FlowKey) -> DipId:
        return self.mux_for(flow).select(flow)

    def on_connection_open(self, flow: FlowKey, dip: DipId) -> None:
        self.mux_for(flow).on_connection_open(dip)

    def on_connection_close(self, flow: FlowKey, dip: DipId) -> None:
        self.mux_for(flow).on_connection_close(dip)

    def program_weights(
        self, weights: Mapping[DipId, float], *, at_time: float = 0.0
    ) -> None:
        """Push new weights to every MUX (what the LB controller does)."""
        for mux in self._muxes:
            mux.set_weights(weights)
        self._updates.append(WeightUpdate(time=at_time, weights=dict(weights)))

    def observe_utilization(self, utilization: Mapping[DipId, float]) -> None:
        for mux in self._muxes:
            mux.observe_utilization(utilization)

    def set_healthy(self, dip: DipId, healthy: bool) -> None:
        for mux in self._muxes:
            mux.set_healthy(dip, healthy)

    @property
    def weight_updates(self) -> Sequence[WeightUpdate]:
        return tuple(self._updates)

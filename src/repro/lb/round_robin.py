"""Round-robin and weighted round-robin policies.

``WeightedRoundRobin`` implements the *smooth* WRR algorithm popularised by
Nginx: each selection advances every DIP's current score by its effective
weight and picks the highest score, subtracting the weight total.  This
spreads selections evenly over time rather than emitting bursts, and it
honours fractional weights (KnapsackLB programs weights in [0, 1]).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb.base import FlowKey, Policy, register_policy


class RoundRobin(Policy):
    """Plain round robin: rotate new connections across healthy DIPs."""

    name = "rr"
    supports_weights = False
    uses_flow = False
    uses_connection_counts = False

    def __init__(self, dips: Iterable[DipId]) -> None:
        super().__init__(dips)
        self._cursor = 0

    def select(self, flow: FlowKey) -> DipId:
        candidates = self.healthy_dips
        if not candidates:
            raise ConfigurationError("no healthy DIPs available")
        dip = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return dip


class WeightedRoundRobin(Policy):
    """Smooth weighted round robin (the WRR the paper's MUXes implement)."""

    name = "wrr"
    supports_weights = True
    uses_flow = False
    uses_connection_counts = False

    def __init__(
        self,
        dips: Iterable[DipId],
        *,
        weights: Mapping[DipId, float] | None = None,
    ) -> None:
        super().__init__(dips)
        self._current: dict[DipId, float] = {dip: 0.0 for dip in self.dips}
        if weights:
            self.set_weights(weights)

    def _on_weights_changed(self) -> None:
        # Reset the smooth-WRR accumulators so new weights take effect
        # immediately for new connections (existing connections are not
        # moved, preserving connection affinity as in the paper).
        self._current = {dip: 0.0 for dip in self.dips}

    def select(self, flow: FlowKey) -> DipId:
        candidates = self._candidates()
        weighted = [(v, max(0.0, v.weight)) for v in candidates]
        total = sum(w for _, w in weighted)
        if total <= 0:
            # All-zero weights degrade to plain round robin over the pool.
            weighted = [(v, 1.0) for v in candidates]
            total = float(len(candidates))
        best: DipId | None = None
        best_score = float("-inf")
        for view, weight in weighted:
            score = self._current.setdefault(view.dip, 0.0) + weight
            self._current[view.dip] = score
            if score > best_score:
                best_score = score
                best = view.dip
        assert best is not None
        self._current[best] -= total
        return best


register_policy("rr", RoundRobin, weighted=False, summary="round robin")
register_policy("wrr", WeightedRoundRobin, weighted=True, summary="smooth weighted round robin")

"""Named experiment specs: built-ins plus every registered scenario.

Two sources feed the registry:

* **scenario bridges** — every scenario in
  :mod:`repro.experiments.scenarios` is re-registered as an
  :class:`ExperimentSpec` with ``runner="scenario"`` and the scenario's
  defaults as its parameters, so ``python -m repro run
  multi_vip_shared_dips`` and ``run_scenario("multi_vip_shared_dips")``
  are the same run;
* **built-in pure specs** — small spec-native experiments that demonstrate
  the three substrates (the same pool/workload on fluid, request and
  fleet).

``get_spec`` falls back to loading a spec *file* when the name looks like a
path, so every CLI entry point accepts either.
"""

from __future__ import annotations

from typing import Callable

from repro.api.spec import (
    ControllerSpec,
    ExperimentSpec,
    FleetSpec,
    PolicySpec,
    PoolSpec,
    VmSpec,
    WorkloadSpec,
)
from repro.exceptions import ConfigurationError

_SPECS: dict[str, Callable[[], ExperimentSpec]] = {}
_SUMMARIES: dict[str, str] = {}


def register_spec(
    name: str, factory: Callable[[], ExperimentSpec], *, summary: str = ""
) -> None:
    """Register a named spec factory (late-bound so registration is cheap)."""
    if name in _SPECS:
        raise ConfigurationError(f"spec {name!r} already registered")
    _SPECS[name] = factory
    _SUMMARIES[name] = summary


def list_specs() -> tuple[tuple[str, str], ...]:
    """(name, summary) pairs of every registered spec, sorted by name."""
    _bridge_scenarios()
    return tuple((name, _SUMMARIES[name]) for name in sorted(_SPECS))


def get_spec(name: str) -> ExperimentSpec:
    """Resolve ``name`` to a spec: registry first, then a .json/.toml path."""
    _bridge_scenarios()
    factory = _SPECS.get(name)
    if factory is not None:
        return factory()
    if name.endswith((".json", ".toml")):
        return ExperimentSpec.from_file(name)
    known = ", ".join(sorted(_SPECS))
    raise ConfigurationError(
        f"unknown spec {name!r} (and not a .json/.toml file); "
        f"registered specs: {known}"
    )


# ---------------------------------------------------------------------------
# scenario bridges
# ---------------------------------------------------------------------------

_BRIDGED = False


def _bridge_scenarios() -> None:
    """Re-register every scenario as a ``runner="scenario"`` spec (once)."""
    global _BRIDGED
    if _BRIDGED:
        return
    _BRIDGED = True
    from repro.experiments.scenarios import list_scenarios

    for scenario in list_scenarios():
        if scenario.name in _SPECS:
            continue

        def factory(scenario=scenario) -> ExperimentSpec:
            # The seed lives at spec level only, so ``--set seed=N`` works;
            # the scenario runner folds it back into the call.
            return ExperimentSpec(
                name=scenario.name,
                runner="scenario",
                scenario=scenario.name,
                params={
                    k: v for k, v in scenario.defaults.items() if k != "seed"
                },
                seed=int(scenario.defaults.get("seed", 0)),
            )

        register_spec(scenario.name, factory, summary=scenario.summary)


# ---------------------------------------------------------------------------
# built-in pure specs
# ---------------------------------------------------------------------------


def _trio_base(runner: str) -> Callable[[], ExperimentSpec]:
    def factory() -> ExperimentSpec:
        return ExperimentSpec(
            name=f"{runner}_uniform_pool",
            runner=runner,
            pool=PoolSpec(
                kind="uniform",
                num_dips=8,
                vm=VmSpec(name="trio-2core", vcpus=2, capacity_rps=800.0),
            ),
            workload=WorkloadSpec(load_fraction=0.6, num_requests=20_000),
            policy=PolicySpec(name="wrr"),
            controller=ControllerSpec(enabled=True, settle_steps=2),
            fleet=FleetSpec(num_vips=4),
            seed=17,
        )

    return factory


for _kind in ("fluid", "request", "fleet"):
    register_spec(
        f"{_kind}_uniform_pool",
        _trio_base(_kind),
        summary=f"8 identical DIPs, KnapsackLB-controlled, on the {_kind} substrate",
    )

register_spec(
    "testbed_klb",
    lambda: ExperimentSpec(
        name="testbed_klb",
        runner="fluid",
        pool=PoolSpec(kind="testbed"),
        workload=WorkloadSpec(load_fraction=0.7),
        controller=ControllerSpec(enabled=True),
        seed=7,
    ),
    summary="The Table 3 testbed converged by KnapsackLB on the fluid model",
)

"""Execute an :class:`ExperimentSpec` on one of the simulation substrates.

One :class:`Runner` per substrate, all returning the same
:class:`~repro.api.result.RunResult` shape:

* :class:`FluidRunner` — the analytic fluid model (exact means, instant);
* :class:`RequestRunner` — the request-level discrete-event engine
  (latency distributions, per-request LB decisions);
* :class:`FleetRunner` — the multi-VIP shared fleet driven by the
  :class:`~repro.core.fleet_controller.FleetController`;
* :class:`ScenarioRunner` — delegates to a registered scenario from
  :mod:`repro.experiments.scenarios`.

The same spec executes on fluid, request and fleet unchanged — only the
``runner`` field flips.  Wall-clock timing goes into the result's
provenance, never its metrics, so a re-run from a saved spec reproduces
the metrics dict exactly (fluid is analytic; the request engine is
deterministic per seed).
"""

from __future__ import annotations

import time
from datetime import datetime, timezone
from typing import Any, Mapping, Protocol

from repro.api.result import Provenance, RunResult
from repro.api.spec import ExperimentSpec, PoolSpec
from repro.core import FleetController, KnapsackLBController
from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb import make_policy
from repro.sim import FluidCluster, RequestCluster
from repro.workloads import build_pool, fleet_from_pool

#: Policies whose constructors take a seed (they draw randomness per pick).
_SEEDED_POLICIES = frozenset({"random", "wrandom", "p2", "dns"})


class Runner(Protocol):
    """Anything that can execute a spec into a result artifact."""

    kind: str

    def run(self, spec: ExperimentSpec) -> RunResult:
        """Execute ``spec`` and return its result artifact."""
        ...


def _pool_from_spec(pool: PoolSpec, seed: int) -> dict[DipId, Any]:
    return build_pool(
        pool.kind,
        num_dips=pool.num_dips,
        vm_name=pool.vm.name,
        vcpus=pool.vm.vcpus,
        capacity_rps=pool.vm.capacity_rps,
        idle_latency_ms=pool.vm.idle_latency_ms,
        capacity_ratio=pool.capacity_ratio,
        seed=seed,
    )


def build_cluster(spec: ExperimentSpec) -> FluidCluster:
    """The fluid cluster a spec describes (without running anything).

    Exposed for interactive use — examples and notebooks that want the
    spec-built system but drive perturbations (capacity squeezes, failures)
    by hand.
    """
    dips = _pool_from_spec(spec.pool, spec.seed)
    total_capacity = sum(d.capacity_rps for d in dips.values())
    return FluidCluster(
        dips=dips,
        total_rate_rps=spec.workload.load_fraction * total_capacity,
        policy_name=spec.policy.name,
    )


def _finish(
    spec: ExperimentSpec,
    *,
    metrics: Mapping[str, float],
    dip_summaries: Mapping[str, Mapping[str, float]],
    started_at: str,
    started_clock: float,
    detail: Any = None,
) -> RunResult:
    return RunResult(
        spec=spec,
        runner=spec.runner,
        seed=spec.seed,
        metrics={k: float(v) for k, v in metrics.items()},
        dip_summaries={
            dip: {k: float(v) for k, v in row.items()}
            for dip, row in dip_summaries.items()
        },
        provenance=Provenance(
            started_at=started_at,
            wall_clock_s=time.perf_counter() - started_clock,
        ),
        detail=detail,
    )


def _now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class FluidRunner:
    """Analytic fluid-model execution (optionally KnapsackLB-converged)."""

    kind = "fluid"

    def run(self, spec: ExperimentSpec) -> RunResult:
        started_at, started = _now_iso(), time.perf_counter()
        cluster = build_cluster(spec)
        metrics: dict[str, float] = {}
        detail = None
        if spec.controller.enabled:
            controller = KnapsackLBController(
                f"vip-{spec.name}", cluster, config=spec.controller.config
            )
            assignment = controller.converge(
                settle_steps=spec.controller.settle_steps
            )
            for _ in range(spec.controller.control_steps):
                controller.control_step()
            metrics["objective_ms"] = assignment.objective_ms
            detail = assignment
            # How much the computed weights beat a blind equal split.
            klb_latency = cluster.state().overall_mean_latency_ms()
            cluster.set_weights({d: 1.0 / len(cluster.dips) for d in cluster.dips})
            equal_latency = cluster.state().overall_mean_latency_ms()
            cluster.set_weights(dict(assignment.weights))
            metrics["equal_split_latency_ms"] = equal_latency
            metrics["latency_gain"] = equal_latency / klb_latency
        state = cluster.state()
        metrics["mean_latency_ms"] = state.overall_mean_latency_ms()
        metrics["max_utilization"] = max(state.utilization.values())
        metrics["total_rate_rps"] = cluster.total_rate_rps
        return _finish(
            spec,
            metrics=metrics,
            dip_summaries=state.dip_summaries(),
            started_at=started_at,
            started_clock=started,
            detail=detail,
        )


class RequestRunner:
    """Request-level discrete-event execution of the same spec."""

    kind = "request"

    def run(self, spec: ExperimentSpec) -> RunResult:
        started_at, started = _now_iso(), time.perf_counter()
        dips = _pool_from_spec(spec.pool, spec.seed)
        total_capacity = sum(d.capacity_rps for d in dips.values())
        rate = spec.workload.load_fraction * total_capacity

        weights: dict[DipId, float] | None = None
        if spec.controller.enabled:
            # Compute KnapsackLB weights on an analytic twin of the pool,
            # then replay them through the request engine — the Fig. 12
            # "weights computed once, traffic replayed" methodology.  The
            # spec guarantees the policy is weighted (ExperimentSpec
            # validation), so the weights actually take effect.
            twin = build_cluster(spec)
            controller = KnapsackLBController(
                f"vip-{spec.name}", twin, config=spec.controller.config
            )
            controller.converge(settle_steps=spec.controller.settle_steps)
            for _ in range(spec.controller.control_steps):
                controller.control_step()
            weights = dict(controller.current_weights)

        policy_kwargs = (
            {"seed": spec.seed} if spec.policy.name in _SEEDED_POLICIES else {}
        )
        policy = make_policy(spec.policy.name, list(dips), **policy_kwargs)
        cluster = RequestCluster(dips, policy, rate_rps=rate, seed=spec.seed)
        if weights is not None:
            cluster.set_weights(weights)
        run = cluster.run(
            num_requests=spec.workload.num_requests,
            warmup_s=spec.workload.warmup_s,
        )
        metrics = {
            "mean_latency_ms": run.metrics.mean_latency_ms(),
            "p50_latency_ms": run.metrics.percentile_latency_ms(50),
            "p99_latency_ms": run.metrics.percentile_latency_ms(99),
            "drop_fraction": run.drop_fraction,
            "requests_submitted": float(run.requests_submitted),
            "duration_s": run.duration_s,
        }
        summaries = {
            dip: {
                "requests": float(row.requests),
                "mean_latency_ms": row.mean_latency_ms,
                "p99_latency_ms": row.p99_latency_ms,
                "cpu_utilization": row.cpu_utilization,
                "drop_fraction": row.drop_fraction,
            }
            for dip, row in run.metrics.summaries().items()
        }
        return _finish(
            spec,
            metrics=metrics,
            dip_summaries=summaries,
            started_at=started_at,
            started_clock=started,
            detail=run,
        )


class FleetRunner:
    """Multi-VIP shared-fleet execution under the FleetController."""

    kind = "fleet"

    def run(self, spec: ExperimentSpec) -> RunResult:
        started_at, started = _now_iso(), time.perf_counter()
        # The *same* pool spec the other runners execute, windowed across
        # the VIPs — so a testbed or three_dip spec stays that pool here.
        fleet = fleet_from_pool(
            _pool_from_spec(spec.pool, spec.seed),
            num_vips=spec.fleet.num_vips,
            pool_size=spec.fleet.pool_size,
            load_fraction=spec.workload.load_fraction,
            policy_name=spec.policy.name,
        )
        metrics: dict[str, float] = {}
        detail: Any = None
        if spec.controller.enabled:
            plane = FleetController(fleet, config=spec.controller.config)
            for vip_id in fleet.vips:
                plane.onboard_vip(vip_id)
            assignments = plane.converge_all(
                settle_steps=spec.controller.settle_steps
            )
            for _ in range(spec.controller.control_steps):
                plane.control_step()
            metrics["vips_with_assignment"] = float(len(assignments))
            metrics["measurement_rounds"] = float(len(plane.round_log))
            detail = {"assignments": assignments, "plane": plane}
        state = fleet.state()
        metrics["mean_latency_ms"] = state.overall_mean_latency_ms()
        metrics["max_utilization"] = max(state.utilization.values())
        metrics["num_vips"] = float(len(fleet.vips))
        metrics["shared_dips"] = float(len(fleet.shared_dip_ids()))
        return _finish(
            spec,
            metrics=metrics,
            dip_summaries=state.dip_summaries(),
            started_at=started_at,
            started_clock=started,
            detail=detail,
        )


class ScenarioRunner:
    """Delegate to a registered scenario (the pre-spec experiment registry)."""

    kind = "scenario"

    def run(self, spec: ExperimentSpec) -> RunResult:
        from repro.experiments.scenarios import get_scenario

        started_at, started = _now_iso(), time.perf_counter()
        assert spec.scenario is not None  # enforced by ExperimentSpec
        scenario = get_scenario(spec.scenario)
        params = dict(spec.params)
        if "seed" in scenario.defaults:
            params.setdefault("seed", spec.seed)
        outcome = scenario.run(**params)
        return _finish(
            spec,
            metrics=outcome.metrics,
            dip_summaries={},
            started_at=started_at,
            started_clock=started,
            detail=outcome,
        )


_RUNNERS: dict[str, Runner] = {
    runner.kind: runner()
    for runner in (FluidRunner, RequestRunner, FleetRunner, ScenarioRunner)
}


def runner_for(kind: str) -> Runner:
    try:
        return _RUNNERS[kind]
    except KeyError:
        kinds = ", ".join(sorted(_RUNNERS))
        raise ConfigurationError(
            f"unknown runner {kind!r}; known runners: {kinds}"
        ) from None


def execute(spec: ExperimentSpec) -> RunResult:
    """Run ``spec`` on the substrate its ``runner`` field names."""
    return runner_for(spec.runner).run(spec)

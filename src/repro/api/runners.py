"""Execute an :class:`ExperimentSpec` on one of the simulation substrates.

One :class:`Runner` per substrate, all returning the same
:class:`~repro.api.result.RunResult` shape:

* :class:`FluidRunner` — the analytic fluid model (exact means, instant);
* :class:`RequestRunner` — the request-level discrete-event engine
  (latency distributions, per-request LB decisions);
* :class:`FleetRunner` — the multi-VIP shared fleet driven by the
  :class:`~repro.core.fleet_controller.FleetController`;
* :class:`ScenarioRunner` — delegates to a registered scenario from
  :mod:`repro.experiments.scenarios`.

The same spec executes on fluid, request and fleet unchanged — only the
``runner`` field flips.  Wall-clock timing goes into the result's
provenance, never its metrics, so a re-run from a saved spec reproduces
the metrics dict exactly (fluid is analytic; the request engine is
deterministic per seed).

When the spec carries a non-empty :class:`~repro.api.spec.TimelineSpec`,
every runner executes the timed phase after convergence through the shared
application layer in :mod:`repro.api.timeline`: events fire at their
declared times on each substrate's clock, callers can stream telemetry by
passing :class:`~repro.api.timeline.Observer` hooks to :func:`execute`, and
the built-in windowed recorder fills :attr:`RunResult.windows` with the
run's time-series.
"""

from __future__ import annotations

import time
from dataclasses import replace
from datetime import datetime, timezone
from typing import Any, Iterable, Mapping, Protocol

from repro.api.result import Provenance, RunResult, RunWindow, timeline_metrics
from repro.api.spec import (
    ChaosSpec,
    ExperimentSpec,
    PoolSpec,
    expand_chaos_events,
)
from repro.api.timeline import (
    Observer,
    ObserverSet,
    check_timeline_supported,
    request_windows,
    run_fleet_timeline,
    run_fluid_timeline,
    schedule_request_progress,
    schedule_request_timeline,
)
from repro.core import FleetController, KnapsackLBController
from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb import MuxPool, make_policy, policy_seed_kwargs
from repro.sim import FluidCluster, RequestCluster
from repro.workloads import (
    assess_divergence,
    build_pool,
    fleet_from_pool,
    scv_correction,
)


class Runner(Protocol):
    """Anything that can execute a spec into a result artifact."""

    kind: str

    def run(
        self, spec: ExperimentSpec, *, observers: Iterable[Observer] = ()
    ) -> RunResult:
        """Execute ``spec`` and return its result artifact."""
        ...




def pool_from_spec(pool: PoolSpec, seed: int) -> dict[DipId, Any]:
    return build_pool(
        pool.kind,
        num_dips=pool.num_dips,
        vm_name=pool.vm.name,
        vcpus=pool.vm.vcpus,
        capacity_rps=pool.vm.capacity_rps,
        idle_latency_ms=pool.vm.idle_latency_ms,
        capacity_ratio=pool.capacity_ratio,
        seed=seed,
    )


def expand_spec_chaos(spec: ExperimentSpec) -> ExperimentSpec:
    """Resolve an armed :class:`~repro.api.spec.ChaosSpec` into plain events.

    Expansion happens before planning or execution, so downstream code —
    runners, the shard planner, saved artifacts — sees an ordinary
    hand-written-looking timeline.  Bit-identical per chaos seed; the
    returned spec has ``timeline.chaos`` disarmed (idempotent).  Scenario
    specs pass through: the :class:`ScenarioRunner` hands the chaos seed
    to the scenario, which expands it inside its own inner spec.
    """
    chaos = spec.timeline.chaos
    if not chaos.enabled or spec.runner == "scenario":
        return spec
    dips = pool_from_spec(spec.pool, spec.seed)
    generated = expand_chaos_events(
        chaos,
        dip_ids=tuple(dips),
        horizon_s=spec.timeline.duration_s(),
        manual_events=spec.timeline.events,
    )
    timeline = replace(
        spec.timeline,
        events=tuple(spec.timeline.events) + generated,
        chaos=ChaosSpec(),
    )
    return replace(spec, timeline=timeline)


def build_cluster(spec: ExperimentSpec) -> FluidCluster:
    """The fluid cluster a spec describes (without running anything).

    Exposed for interactive use — examples and notebooks that want the
    spec-built system but drive perturbations (capacity squeezes, failures)
    by hand.
    """
    dips = pool_from_spec(spec.pool, spec.seed)
    total_capacity = sum(d.capacity_rps for d in dips.values())
    rate = spec.workload.load_fraction * total_capacity
    _stamp_scv_correction(dips, spec, rate)
    return FluidCluster(
        dips=dips,
        total_rate_rps=rate,
        policy_name=spec.policy.name,
    )


def _stamp_scv_correction(
    dips: Mapping[DipId, Any], spec: ExperimentSpec, rate_rps: float
) -> None:
    """Stamp the workload's Allen-Cunneen factor onto every analytic DIP.

    1.0 (Poisson arrivals, exponential service) leaves the pool untouched —
    the fluid substrate stays bit-identical to the M/M/c baseline.  The
    factor uses the pool-wide rate; per-DIP splits inherit the aggregate
    burstiness, which is the standard single-class approximation.
    """
    corr = scv_correction(spec.workload, rate_rps)
    if corr != 1.0:
        for dip in dips.values():
            dip.scv_correction = corr


def _finish(
    spec: ExperimentSpec,
    *,
    metrics: Mapping[str, float],
    dip_summaries: Mapping[str, Mapping[str, float]],
    started_at: str,
    started_clock: float,
    windows: tuple[RunWindow, ...] = (),
    detail: Any = None,
    model_divergence: str | None = None,
) -> RunResult:
    return RunResult(
        spec=spec,
        runner=spec.runner,
        seed=spec.seed,
        metrics={k: float(v) for k, v in metrics.items()},
        dip_summaries={
            dip: {k: float(v) for k, v in row.items()}
            for dip, row in dip_summaries.items()
        },
        windows=windows,
        provenance=Provenance(
            started_at=started_at,
            wall_clock_s=time.perf_counter() - started_clock,
            model_divergence=model_divergence,
        ),
        detail=detail,
    )


def now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def prepare_fluid(
    spec: ExperimentSpec,
) -> tuple[FluidCluster, "KnapsackLBController | None", dict[str, float], Any]:
    """Build and converge the fluid substrate a spec describes.

    Returns ``(cluster, controller, setup_metrics, detail)`` — everything
    that happens *before* the timed phase, shared by :class:`FluidRunner`
    and the live ``repro serve`` daemon so a replayed session starts from
    the identical converged state.
    """
    cluster = build_cluster(spec)
    if not spec.timeline.empty:
        check_timeline_supported(spec.timeline, "fluid", dips=cluster.dips)
    metrics: dict[str, float] = {}
    detail = None
    controller: KnapsackLBController | None = None
    if spec.controller.enabled:
        controller = KnapsackLBController(
            f"vip-{spec.name}", cluster, config=spec.controller.config
        )
        assignment = controller.converge(
            settle_steps=spec.controller.settle_steps
        )
        for _ in range(spec.controller.control_steps):
            controller.control_step()
        metrics["objective_ms"] = assignment.objective_ms
        detail = assignment
        # How much the computed weights beat a blind equal split.
        klb_latency = cluster.state().overall_mean_latency_ms()
        cluster.set_weights({d: 1.0 / len(cluster.dips) for d in cluster.dips})
        equal_latency = cluster.state().overall_mean_latency_ms()
        cluster.set_weights(dict(assignment.weights))
        metrics["equal_split_latency_ms"] = equal_latency
        metrics["latency_gain"] = equal_latency / klb_latency
    return cluster, controller, metrics, detail


class FluidRunner:
    """Analytic fluid-model execution (optionally KnapsackLB-converged)."""

    kind = "fluid"

    def run(
        self, spec: ExperimentSpec, *, observers: Iterable[Observer] = ()
    ) -> RunResult:
        started_at, started = now_iso(), time.perf_counter()
        spec = expand_spec_chaos(spec)
        cluster, controller, metrics, detail = prepare_fluid(spec)
        windows: tuple[RunWindow, ...] = ()
        if not spec.timeline.empty:
            # The timed phase starts from the converged steady state; events
            # fire between fixed-point rounds at their declared times.
            windows = run_fluid_timeline(
                cluster,
                spec.timeline,
                ObserverSet(observers),
                controller=controller,
                health=spec.health,
                seed=spec.seed,
            )
            metrics["timeline_events"] = float(len(spec.timeline.events))
        state = cluster.state()
        if windows:
            # Trajectory-derived aggregates (a still-failed DIP's rate-0 /
            # latency-inf pair cannot poison them, and they mean the same
            # thing on every substrate).
            metrics.update(timeline_metrics(windows))
        else:
            metrics["mean_latency_ms"] = state.overall_mean_latency_ms()
        metrics["max_utilization"] = max(state.utilization.values())
        metrics["total_rate_rps"] = cluster.total_rate_rps
        return _finish(
            spec,
            metrics=metrics,
            dip_summaries=state.dip_summaries(),
            started_at=started_at,
            started_clock=started,
            windows=windows,
            detail=detail,
            model_divergence=assess_divergence(
                spec.workload, cluster.total_rate_rps
            ),
        )


def replay_controller_weights(spec: ExperimentSpec) -> dict[DipId, float] | None:
    """KnapsackLB weights for a request-level run, or ``None`` when disabled.

    Computes the weights on an analytic fluid twin of the pool so they can
    be replayed through the request engine — the Fig. 12 "weights computed
    once, traffic replayed" methodology.  The spec guarantees the policy is
    weighted (ExperimentSpec validation), so the weights actually take
    effect; the sharded executor uses the same weights as its per-DIP
    thinning probabilities.
    """
    if not spec.controller.enabled:
        return None
    twin = build_cluster(spec)
    controller = KnapsackLBController(
        f"vip-{spec.name}", twin, config=spec.controller.config
    )
    controller.converge(settle_steps=spec.controller.settle_steps)
    for _ in range(spec.controller.control_steps):
        controller.control_step()
    return dict(controller.current_weights)


class RequestRunner:
    """Request-level discrete-event execution of the same spec."""

    kind = "request"

    def run(
        self, spec: ExperimentSpec, *, observers: Iterable[Observer] = ()
    ) -> RunResult:
        started_at, started = now_iso(), time.perf_counter()
        spec = expand_spec_chaos(spec)
        dips = pool_from_spec(spec.pool, spec.seed)
        if not spec.timeline.empty:
            check_timeline_supported(spec.timeline, self.kind, dips=dips)
        total_capacity = sum(d.capacity_rps for d in dips.values())
        rate = spec.workload.load_fraction * total_capacity

        weights = replay_controller_weights(spec)

        policy_kwargs = policy_seed_kwargs(spec.policy.name, seed=spec.seed)
        if spec.policy.num_muxes > 1:
            dip_list = list(dips)
            policy: Any = MuxPool(
                lambda: make_policy(spec.policy.name, dip_list, **policy_kwargs),
                num_muxes=spec.policy.num_muxes,
            )
        else:
            policy = make_policy(spec.policy.name, list(dips), **policy_kwargs)
        cluster = RequestCluster(
            dips,
            policy,
            rate_rps=rate,
            seed=spec.seed,
            health=spec.health,
            retry=spec.retry,
            arrival=spec.workload.arrival,
            service=spec.workload.service,
        )
        if weights is not None:
            cluster.set_weights(weights)
        windows: tuple[RunWindow, ...] = ()
        if spec.timeline.empty:
            run = cluster.run(
                num_requests=spec.workload.num_requests,
                warmup_s=spec.workload.warmup_s,
            )
        else:
            # A timeline defines the measured phase: the run lasts exactly
            # the timeline's horizon (``workload.num_requests`` does not
            # apply), so the trajectory covers the same windows on every
            # substrate.  Events fire on the engine clock (offset past
            # warm-up) via cancellable handles, and the window time-series
            # folds out of the columnar metrics after the run.
            timeline = spec.timeline
            warmup = spec.workload.warmup_s
            duration = timeline.duration_s()
            observer = ObserverSet(observers)
            handles = schedule_request_timeline(
                cluster, timeline, observer, offset_s=warmup
            )
            if observer.observers:
                schedule_request_progress(
                    cluster,
                    observer,
                    window_s=timeline.window_s,
                    horizon_s=duration,
                    offset_s=warmup,
                )
            run = cluster.run(duration_s=duration, warmup_s=warmup)
            for handle in handles:
                handle.cancel()  # no-op for handles that already fired
            windows = request_windows(
                cluster,
                timeline,
                observer,
                duration_s=duration,
                offset_s=warmup,
            )
        metrics = {
            "mean_latency_ms": run.metrics.mean_latency_ms(),
            "p50_latency_ms": run.metrics.percentile_latency_ms(50),
            "p99_latency_ms": run.metrics.percentile_latency_ms(99),
            "drop_fraction": run.drop_fraction,
            "requests_submitted": float(run.requests_submitted),
            "duration_s": run.duration_s,
        }
        if windows:
            metrics["timeline_events"] = float(len(spec.timeline.events))
            # ``mean_latency_ms`` is already the whole-run completed-request
            # average; surface the end state separately, as the other
            # substrates do.
            metrics["final_latency_ms"] = windows[-1].metrics.get(
                "mean_latency_ms", float("nan")
            )
        retry_summary = run.metrics.retry_summary()
        if retry_summary is not None:
            metrics.update(retry_summary)
        summaries = {
            dip: {
                "requests": float(row.requests),
                "mean_latency_ms": row.mean_latency_ms,
                "p99_latency_ms": row.p99_latency_ms,
                "cpu_utilization": row.cpu_utilization,
                "drop_fraction": row.drop_fraction,
            }
            for dip, row in run.metrics.summaries().items()
        }
        # The request engine generates the workload faithfully; only a run
        # that *replayed analytically-derived weights* (controller enabled)
        # leaned on the fluid twin, so only then is the divergence warning
        # meaningful here.
        divergence = (
            assess_divergence(spec.workload, rate)
            if spec.controller.enabled
            else None
        )
        return _finish(
            spec,
            metrics=metrics,
            dip_summaries=summaries,
            started_at=started_at,
            started_clock=started,
            windows=windows,
            detail=run,
            model_divergence=divergence,
        )


def prepare_fleet(
    spec: ExperimentSpec,
) -> tuple[Any, "FleetController | None", dict[str, float], Any]:
    """Build and converge the multi-VIP fleet a spec describes.

    Returns ``(fleet, plane, setup_metrics, detail)``; shared by
    :class:`FleetRunner` and the live daemon.  VIPs named by a timeline
    ``vip_onboard`` event — or listed in ``fleet.deferred_vips`` — stay out
    of the initial convergence (their traffic still flows at the builder's
    capacity-proportional weights — the staggered-onboarding shape).
    """
    # The *same* pool spec the other runners execute, windowed across
    # the VIPs — so a testbed or three_dip spec stays that pool here.
    fleet = fleet_from_pool(
        pool_from_spec(spec.pool, spec.seed),
        num_vips=spec.fleet.num_vips,
        pool_size=spec.fleet.pool_size,
        load_fraction=spec.workload.load_fraction,
        policy_name=spec.policy.name,
    )
    _stamp_scv_correction(
        fleet.dips,
        spec,
        spec.workload.load_fraction
        * sum(d.capacity_rps for d in fleet.dips.values()),
    )
    if not spec.timeline.empty:
        check_timeline_supported(
            spec.timeline,
            "fleet",
            dips=fleet.dips,
            vips=fleet.vips,
            controller_enabled=spec.controller.enabled,
        )
    deferred = {
        event.vip
        for event in spec.timeline.events
        if event.kind == "vip_onboard"
    }
    unknown = [v for v in spec.fleet.deferred_vips if v not in fleet.vips]
    if unknown:
        known = ", ".join(sorted(fleet.vips))
        raise ConfigurationError(
            f"fleet.deferred_vips names unknown VIP {unknown[0]!r}; "
            f"fleet VIPs: {known}"
        )
    deferred.update(spec.fleet.deferred_vips)
    metrics: dict[str, float] = {}
    detail: Any = None
    plane: FleetController | None = None
    if spec.controller.enabled:
        plane = FleetController(fleet, config=spec.controller.config)
        for vip_id in fleet.vips:
            if vip_id not in deferred:
                plane.onboard_vip(vip_id)
        assignments = plane.converge_all(
            settle_steps=spec.controller.settle_steps
        )
        for _ in range(spec.controller.control_steps):
            plane.control_step()
        metrics["vips_with_assignment"] = float(len(assignments))
        metrics["measurement_rounds"] = float(len(plane.round_log))
        detail = {"assignments": assignments, "plane": plane}
    return fleet, plane, metrics, detail


class FleetRunner:
    """Multi-VIP shared-fleet execution under the FleetController."""

    kind = "fleet"

    def run(
        self, spec: ExperimentSpec, *, observers: Iterable[Observer] = ()
    ) -> RunResult:
        started_at, started = now_iso(), time.perf_counter()
        spec = expand_spec_chaos(spec)
        fleet, plane, metrics, detail = prepare_fleet(spec)
        windows: tuple[RunWindow, ...] = ()
        if not spec.timeline.empty:
            windows = run_fleet_timeline(
                fleet,
                spec.timeline,
                ObserverSet(observers),
                plane=plane,
                health=spec.health,
                seed=spec.seed,
            )
            metrics["timeline_events"] = float(len(spec.timeline.events))
        state = fleet.state()
        if windows:
            metrics.update(timeline_metrics(windows))
        else:
            metrics["mean_latency_ms"] = state.overall_mean_latency_ms()
        metrics["max_utilization"] = max(state.utilization.values())
        metrics["num_vips"] = float(len(fleet.vips))
        metrics["shared_dips"] = float(len(fleet.shared_dip_ids()))
        total_rate = spec.workload.load_fraction * sum(
            d.capacity_rps for d in fleet.dips.values()
        )
        return _finish(
            spec,
            metrics=metrics,
            dip_summaries=state.dip_summaries(),
            started_at=started_at,
            started_clock=started,
            windows=windows,
            detail=detail,
            model_divergence=assess_divergence(spec.workload, total_rate),
        )


class ScenarioRunner:
    """Delegate to a registered scenario (the pre-spec experiment registry)."""

    kind = "scenario"

    def run(
        self, spec: ExperimentSpec, *, observers: Iterable[Observer] = ()
    ) -> RunResult:
        from repro.experiments.scenarios import get_scenario, observing

        started_at, started = now_iso(), time.perf_counter()
        assert spec.scenario is not None  # enforced by ExperimentSpec
        scenario = get_scenario(spec.scenario)
        params = dict(spec.params)
        if "seed" in scenario.defaults:
            params.setdefault("seed", spec.seed)
        if spec.timeline.chaos.enabled:
            if "chaos_seed" not in scenario.defaults:
                raise ConfigurationError(
                    f"scenario {spec.scenario!r} does not take a chaos "
                    "schedule (no 'chaos_seed' parameter)"
                )
            params.setdefault("chaos_seed", spec.timeline.chaos.seed)
        # Timeline scenarios execute an inner spec; route the caller's
        # observers (e.g. ``run <scenario> --watch``) through to it.
        with observing(tuple(observers)):
            outcome = scenario.run(**params)
        return _finish(
            spec,
            metrics=outcome.metrics,
            dip_summaries={},
            started_at=started_at,
            started_clock=started,
            windows=getattr(outcome, "windows", ()) or (),
            detail=outcome,
        )


_RUNNERS: dict[str, Runner] = {
    runner.kind: runner()
    for runner in (FluidRunner, RequestRunner, FleetRunner, ScenarioRunner)
}


def runner_for(kind: str) -> Runner:
    try:
        return _RUNNERS[kind]
    except KeyError:
        kinds = ", ".join(sorted(_RUNNERS))
        raise ConfigurationError(
            f"unknown runner {kind!r}; known runners: {kinds}"
        ) from None


def execute(
    spec: ExperimentSpec,
    *,
    observers: Iterable[Observer] = (),
    shards: int | None = None,
    workers: int | None = None,
    pool: Any = None,
) -> RunResult:
    """Run ``spec`` on the substrate its ``runner`` field names.

    ``observers`` stream the run while it executes (timeline events as they
    apply, per-window progress, completed window rows); the recorded
    time-series always lands in the result's ``windows`` regardless.

    ``shards > 1`` asks for a sharded request-level run.  The planner in
    :mod:`repro.parallel` issues a three-way verdict: stateless workloads
    split into statistically-exact per-DIP sub-streams ("exact" mode);
    stateful policies (``lc``/``wlc``/``p2``/…), Mux pools and
    request-legal timelines run epoch-synchronized ("epoch" mode), where
    shards exchange connection counts every ``spec.sync_interval_s``
    seconds and route against a boundedly-stale global view; everything
    else falls back to the serial path with the reason logged under
    ``repro.parallel`` and recorded in ``provenance.fallback_reason``.
    Shards fan across ``workers`` processes (a
    :class:`~repro.parallel.pool.WorkerPool` via ``pool`` is reused warm
    for exact plans, and borrowed as a width hint for epoch plans).
    """
    spec = expand_spec_chaos(spec)
    if shards is not None and shards > 1:
        from repro.parallel import (
            plan_shards,
            run_request_epoch,
            run_request_sharded,
        )
        from repro.parallel.planner import spec_fallback_reason

        # Screen the pool-independent conditions first (runner, timeline,
        # policy) so a serial fallback never pays for pool construction;
        # a shardable run builds the pool once, shared with the executor.
        dips = None
        if spec_fallback_reason(spec) is None:
            dips = pool_from_spec(spec.pool, spec.seed)
        plan = plan_shards(
            spec, shards=shards, dip_ids=tuple(dips) if dips else None
        )
        if plan.mode == "exact":
            return run_request_sharded(
                spec, plan, workers=workers, pool=pool, dips=dips
            )
        if plan.mode == "epoch":
            return run_request_epoch(
                spec,
                plan,
                workers=workers,
                pool=pool,
                dips=dips,
                observers=observers,
            )
        result = runner_for(spec.runner).run(spec, observers=observers)
        return replace(
            result,
            provenance=replace(
                result.provenance, fallback_reason=plan.fallback_reason
            ),
        )
    return runner_for(spec.runner).run(spec, observers=observers)

"""Parameter sweeps over a base spec, with process-parallel execution.

A :class:`Sweep` holds a base :class:`ExperimentSpec` plus one axis per
swept dotted path (``workload.load_fraction = [0.4, 0.6, 0.8]``).  ``grid``
mode expands the cartesian product, ``zip`` mode pairs the axes
element-wise.  Expansion is pure (specs out, nothing run), so the same
sweep can be inspected, saved, or executed — serially or across a warm
:class:`~repro.parallel.pool.WorkerPool`; either path produces the same
results because every expanded spec carries its own seed.  Parallel runs
serialize the *base* spec once and ship only per-point overrides; a sweep
that expands to one spec runs inline with no pool at all.

``compare`` lines up any set of results (swept or hand-picked) into one
report: a metric-by-run table plus per-metric deltas against the first
result as baseline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.api.result import RunResult
from repro.api.runners import execute
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.pool import WorkerPool

#: Metrics shown first (when present) in comparison reports.
_HEADLINE_METRICS = (
    "mean_latency_ms",
    "p99_latency_ms",
    "max_utilization",
    "latency_gain",
    "drop_fraction",
)


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a dotted spec path and its values."""

    path: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("sweep axis path must be non-empty")
        if not self.values:
            raise ConfigurationError(
                f"sweep axis {self.path!r} needs at least one value"
            )


@dataclass(frozen=True)
class Sweep:
    """A declarative parameter sweep over one base spec."""

    base: ExperimentSpec
    axes: tuple[SweepAxis, ...]
    #: "grid" = cartesian product of the axes, "zip" = element-wise pairing.
    mode: str = "grid"

    def __post_init__(self) -> None:
        if self.mode not in ("grid", "zip"):
            raise ConfigurationError(
                f"sweep mode must be 'grid' or 'zip'; got {self.mode!r}"
            )
        if not self.axes:
            raise ConfigurationError("sweep needs at least one axis")
        seen: set[str] = set()
        for axis in self.axes:
            if axis.path in seen:
                raise ConfigurationError(
                    f"sweep axis {axis.path!r} appears more than once"
                )
            seen.add(axis.path)
        if self.mode == "zip":
            lengths = {len(axis.values) for axis in self.axes}
            if len(lengths) > 1:
                raise ConfigurationError(
                    "zip-mode sweep axes must all have the same length"
                )

    @classmethod
    def from_axes(
        cls,
        base: ExperimentSpec,
        axes: Mapping[str, Iterable[Any]],
        *,
        mode: str = "grid",
    ) -> "Sweep":
        return cls(
            base=base,
            axes=tuple(
                SweepAxis(path=path, values=tuple(values))
                for path, values in axes.items()
            ),
            mode=mode,
        )

    # -- expansion -------------------------------------------------------------

    def expanded_overrides(self) -> tuple[dict[str, Any], ...]:
        """One overrides dict per sweep point (axis values + derived name).

        This is what actually crosses the process boundary on a parallel
        run: workers hold the parsed base spec in a per-process cache and
        apply only these overrides, instead of re-validating a full spec
        payload per point.
        """
        if self.mode == "zip":
            combos: Iterable[tuple[Any, ...]] = zip(
                *(axis.values for axis in self.axes)
            )
        else:
            combos = itertools.product(*(axis.values for axis in self.axes))
        expanded = []
        for combo in combos:
            overrides = {
                axis.path: value for axis, value in zip(self.axes, combo)
            }
            suffix = "/".join(
                f"{axis.path.rpartition('.')[2]}={value}"
                for axis, value in zip(self.axes, combo)
            )
            overrides["name"] = f"{self.base.name}/{suffix}"
            expanded.append(overrides)
        return tuple(expanded)

    def expand(self) -> tuple[ExperimentSpec, ...]:
        """Every spec of the sweep, named ``<base>/<path>=<value>/...``."""
        return tuple(
            self.base.with_overrides(overrides)
            for overrides in self.expanded_overrides()
        )

    # -- execution -------------------------------------------------------------

    def run(
        self,
        *,
        max_workers: int | None = None,
        pool: "WorkerPool | None" = None,
    ) -> tuple[RunResult, ...]:
        """Execute the expansion; ``max_workers > 1`` uses a worker pool.

        Results come back in expansion order regardless of which process
        finished first, so a sweep's output is stable run to run.  A
        caller-provided :class:`~repro.parallel.pool.WorkerPool` is reused
        warm (and left open); otherwise a pool is created for the call.  A
        sweep that expands to a single spec always runs inline — spinning
        up a process to run one spec would pay serialization and fork
        overhead for nothing.

        A point that fails to build or execute does not abort the sweep:
        its row comes back with empty metrics and the failure message under
        :attr:`RunResult.error`, and every row's provenance records the
        sweep's ``failed_runs`` count (plus any worker-pool retries).
        """
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        overrides = self.expanded_overrides()
        workers = min(
            max_workers if max_workers is not None else (pool.max_workers if pool else 1),
            len(overrides),
        )
        if len(overrides) == 1 or (workers <= 1 and pool is None):
            return self._run_inline(overrides)
        from repro.parallel.pool import WorkerPool

        own_pool = pool is None
        pool = pool or WorkerPool(max_workers=workers)
        try:
            return tuple(pool.run_specs(self.base, overrides))
        finally:
            if own_pool:
                pool.close()

    def _run_inline(
        self, overrides: Sequence[Mapping[str, Any]]
    ) -> tuple[RunResult, ...]:
        """The serial path, with the same per-point error capture."""
        from dataclasses import replace

        from repro.parallel.pool import _spec_for_error_row

        results: list[RunResult] = []
        for point in overrides:
            try:
                results.append(execute(self.base.with_overrides(point)))
            except Exception as error:  # noqa: BLE001 - captured into the row
                results.append(
                    RunResult.error_result(
                        _spec_for_error_row(self.base, point),
                        f"{type(error).__name__}: {error}",
                    )
                )
        failed = sum(1 for result in results if result.error is not None)
        if failed:
            results = [
                replace(
                    result,
                    provenance=replace(result.provenance, failed_runs=failed),
                )
                for result in results
            ]
        return tuple(results)


@dataclass(frozen=True)
class ComparisonReport:
    """A metric-by-run alignment of several results."""

    names: tuple[str, ...]
    runners: tuple[str, ...]
    seeds: tuple[int, ...]
    #: metric -> one value per run (NaN where a run lacks the metric).
    metrics: dict[str, tuple[float, ...]] = field(default_factory=dict)

    @property
    def baseline(self) -> str:
        return self.names[0]

    def delta_percent(self, metric: str) -> tuple[float, ...]:
        """Per-run change vs the first run, in percent."""
        values = self.metrics[metric]
        base = values[0]
        if base == 0 or base != base:
            return tuple(float("nan") for _ in values)
        return tuple((v - base) / abs(base) * 100.0 for v in values)

    def to_dict(self) -> dict[str, Any]:
        return {
            "names": list(self.names),
            "runners": list(self.runners),
            "seeds": list(self.seeds),
            "metrics": {k: list(v) for k, v in self.metrics.items()},
        }

    def render(self) -> str:
        """Human-readable table (one row per metric, one column per run)."""
        from repro.analysis import format_run_comparison

        # Disambiguate identical spec names (e.g. the same spec on two
        # substrates) with the runner; missing metrics render as "-".
        labels = [
            f"{name} [{runner}]" if self.names.count(name) > 1 else name
            for name, runner in zip(self.names, self.runners)
        ]
        return format_run_comparison(
            [
                {
                    "name": label,
                    "runner": runner,
                    "seed": seed,
                    "metrics": {
                        metric: values[i]
                        for metric, values in self.metrics.items()
                        if values[i] == values[i]
                    },
                }
                for i, (label, runner, seed) in enumerate(
                    zip(labels, self.runners, self.seeds)
                )
            ]
        )


def window_table(
    results: Sequence[RunResult], *, metric: str = "mean_latency_ms"
) -> str:
    """Align the results' window time-series into one window-by-run table.

    One row per telemetry window: the window bounds (from the first result
    that recorded windows), ``metric``'s value per run (``-`` where a run
    has no such window), and the timeline events applied in that window
    (union across runs, deduplicated in order).  This is what makes two
    timed runs comparable *trajectory against trajectory* — e.g. a
    failure-injection run against its no-fault twin.
    """
    from repro.analysis import format_table

    if not results:
        raise ConfigurationError("window_table needs at least one result")
    depth = max(len(r.windows) for r in results)
    if depth == 0:
        raise ConfigurationError(
            "none of the results carry windows (no timeline ran); "
            "re-run with a spec that has a timeline"
        )
    reference = next(r for r in results if r.windows)
    labels = [
        f"{r.spec.name} [{r.runner}]"
        if [x.spec.name for x in results].count(r.spec.name) > 1
        else r.spec.name
        for r in results
    ]
    rows = []
    for index in range(depth):
        bounds = (
            f"[{reference.windows[index].start_s:g}, "
            f"{reference.windows[index].end_s:g})"
            if index < len(reference.windows)
            else f"#{index}"
        )
        values = []
        for result in results:
            if index < len(result.windows):
                value = result.windows[index].metrics.get(metric, float("nan"))
                values.append(f"{value:.4g}" if value == value else "-")
            else:
                values.append("-")
        seen: list[str] = []
        for result in results:
            if index < len(result.windows):
                for label in result.windows[index].events:
                    if label not in seen:
                        seen.append(label)
        rows.append([bounds, *values, "; ".join(seen)])
    return format_table(
        ["window (s)", *labels, "events"],
        rows,
        title=f"{metric} per window",
    )


def compare(results: Sequence[RunResult]) -> ComparisonReport:
    """Align ``results`` into one comparison (first result = baseline)."""
    if not results:
        raise ConfigurationError("compare needs at least one result")
    ordered: list[str] = [
        m
        for m in _HEADLINE_METRICS
        if any(m in r.metrics for r in results)
    ]
    for result in results:
        for metric in sorted(result.metrics):
            if metric not in ordered:
                ordered.append(metric)
    return ComparisonReport(
        names=tuple(r.spec.name for r in results),
        runners=tuple(r.runner for r in results),
        seeds=tuple(r.seed for r in results),
        metrics={
            metric: tuple(r.metrics.get(metric, float("nan")) for r in results)
            for metric in ordered
        },
    )

"""The declarative experiment spec: one frozen dataclass tree per run.

An :class:`ExperimentSpec` describes *everything* a run needs — the DIP
pool, the workload, the LB policy, whether the KnapsackLB controller runs,
the execution substrate (``runner``) and the seed — so the same spec can be
built in code, loaded from a plain dict, or parsed from a JSON/TOML file,
and then executed on the analytic fluid model, the request-level engine or
the multi-VIP fleet by flipping the single ``runner`` field.

Validation happens eagerly in each dataclass's ``__post_init__`` with
errors that name the bad field (``workload.load_fraction must be in (0,
1.5)``); dict/file loading goes through
:func:`repro.core.config.dataclass_from_dict`, whose unknown-key errors
name the offending dotted path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.config import (
    KnapsackLBConfig,
    dataclass_from_dict,
    dataclass_to_dict,
)
from repro.exceptions import ConfigurationError
from repro.lb import policy_registry
from repro.workloads import ARRIVAL_KINDS, POOL_KINDS, SERVICE_KINDS

#: Substrates a spec can execute on; "scenario" delegates to the registry in
#: :mod:`repro.experiments.scenarios`.
RUNNER_KINDS: tuple[str, ...] = ("fluid", "request", "fleet", "scenario")

#: Timed mid-run perturbations a timeline can declare (see :class:`EventSpec`).
EVENT_KINDS: tuple[str, ...] = (
    "dip_fail",
    "dip_recover",
    "capacity_ratio",
    "arrival_scale",
    "vip_onboard",
    "vip_offboard",
    "antagonist_phase",
)

#: Event kinds that only make sense on the multi-VIP fleet substrate.
FLEET_ONLY_EVENT_KINDS: frozenset[str] = frozenset(
    {"vip_onboard", "vip_offboard"}
)


@dataclass(frozen=True)
class EventSpec:
    """One timed perturbation of a running experiment.

    ``time_s`` is measured from the start of the timeline phase (after the
    controller has converged, and after warm-up on the request substrate),
    so the same event fires at the same point of every substrate's clock.

    Kinds and their fields:

    * ``dip_fail`` / ``dip_recover`` — ``dip`` goes down / comes back;
    * ``capacity_ratio`` — pin ``dip``'s capacity to ``value`` (in (0, 1])
      of its base value (the §2.1 antagonist squeeze);
    * ``antagonist_phase`` — run ``value`` antagonist copies on ``dip``
      (0 clears them; diminishing-returns capacity loss per copy);
    * ``arrival_scale`` — scale offered traffic to ``value`` × the *base*
      rate (surges and diurnal ramps; ``vip`` scopes it to one fleet
      tenant, otherwise every VIP scales);
    * ``vip_onboard`` / ``vip_offboard`` — ``vip`` joins the control plane
      of a live fleet / leaves the fleet (fleet substrate only).

    ``drain_s`` (``dip_fail`` and ``vip_offboard`` only) makes the event
    graceful: the LB stops sending new work at ``time_s`` but the target
    keeps serving what it already accepted for ``drain_s`` more seconds
    before going away (on the request substrate the DIP's server only dies
    at ``time_s + drain_s``, so queued and in-flight requests finish).
    """

    time_s: float
    kind: str
    dip: str | None = None
    vip: str | None = None
    value: float | None = None
    drain_s: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s <= 0:
            raise ConfigurationError(
                "event time_s must be > 0 (events fire strictly inside "
                "the timed phase)"
            )
        if self.kind not in EVENT_KINDS:
            kinds = ", ".join(EVENT_KINDS)
            raise ConfigurationError(
                f"event kind must be one of: {kinds}; got {self.kind!r}"
            )
        needs_dip = self.kind in (
            "dip_fail",
            "dip_recover",
            "capacity_ratio",
            "antagonist_phase",
        )
        if needs_dip and not self.dip:
            raise ConfigurationError(f"event {self.kind!r} needs the dip field")
        if not needs_dip and self.dip is not None:
            raise ConfigurationError(
                f"event {self.kind!r} does not take a dip field"
            )
        if self.kind in FLEET_ONLY_EVENT_KINDS and not self.vip:
            raise ConfigurationError(f"event {self.kind!r} needs the vip field")
        if self.vip is not None and self.kind not in (
            "vip_onboard",
            "vip_offboard",
            "arrival_scale",
        ):
            raise ConfigurationError(
                f"event {self.kind!r} does not take a vip field"
            )
        if self.kind == "capacity_ratio":
            if self.value is None or not 0 < self.value <= 1:
                raise ConfigurationError(
                    "event 'capacity_ratio' needs value in (0, 1]"
                )
        elif self.kind == "arrival_scale":
            if self.value is None or self.value <= 0:
                raise ConfigurationError(
                    "event 'arrival_scale' needs a positive value"
                )
        elif self.kind == "antagonist_phase":
            if self.value is None or self.value < 0 or self.value != int(self.value):
                raise ConfigurationError(
                    "event 'antagonist_phase' needs a non-negative integer "
                    "value (antagonist copies)"
                )
        elif self.value is not None:
            raise ConfigurationError(
                f"event {self.kind!r} does not take a value field"
            )
        if self.drain_s < 0:
            raise ConfigurationError("event drain_s must be >= 0")
        if self.drain_s > 0 and self.kind not in ("dip_fail", "vip_offboard"):
            raise ConfigurationError(
                f"event {self.kind!r} does not take a drain_s field "
                "(only dip_fail and vip_offboard drain)"
            )

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, path: str = "timeline.events"
    ) -> "EventSpec":
        """Build one event from a plain mapping, naming any bad field.

        The single JSON-ingestion path for events: spec files, the
        ``repro validate`` CLI and the live daemon's ``POST /events`` body
        all go through here, so a malformed event produces the *same*
        dotted-path error text everywhere.
        """
        return dataclass_from_dict(cls, data, path=path)

    def label(self) -> str:
        """Compact human-readable form (``t=30s dip_fail DIP-3``)."""
        parts = [f"t={self.time_s:g}s", self.kind]
        if self.dip is not None:
            parts.append(self.dip)
        if self.vip is not None:
            parts.append(self.vip)
        if self.value is not None:
            parts.append(f"{self.value:g}")
        if self.drain_s > 0:
            parts.append(f"drain={self.drain_s:g}s")
        return " ".join(parts)


@dataclass(frozen=True)
class HealthCheckSpec:
    """Probe-based failure detection: the LB *learns* a DIP died.

    When disabled (the default) failure stays an oracle: ``dip_fail``
    flips the policy's health view at the event instant.  When enabled,
    each DIP is probed every ``probe_interval_s`` seconds on its own
    seeded phase; a probe against a dead DIP is only known failed after
    ``probe_timeout_s``, and the LB marks the DIP down (up) after
    ``unhealthy_threshold`` consecutive failed (``healthy_threshold``
    consecutive successful) probes.  Until the down-mark lands, the LB
    keeps routing to the dead DIP and that traffic is lost — the
    detection window the paper's probe-driven monitors pay for.

    The probe phase is derived from ``(seed, dip index)`` alone, so the
    request engine (which simulates the probes as events) and the
    fluid/fleet substrates (which walk the same probe grid analytically)
    detect at exactly the same instants per seed.
    """

    enabled: bool = False
    probe_interval_s: float = 1.0
    probe_timeout_s: float = 0.2
    unhealthy_threshold: int = 3
    healthy_threshold: int = 2

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ConfigurationError("health.probe_interval_s must be positive")
        if not 0 < self.probe_timeout_s <= self.probe_interval_s:
            raise ConfigurationError(
                "health.probe_timeout_s must be in (0, probe_interval_s]"
            )
        if self.unhealthy_threshold < 1:
            raise ConfigurationError("health.unhealthy_threshold must be >= 1")
        if self.healthy_threshold < 1:
            raise ConfigurationError("health.healthy_threshold must be >= 1")

    def probe_phase_s(self, seed: int, dip_index: int) -> float:
        """First probe offset in ``[0, probe_interval_s)`` for one DIP.

        Every substrate calls this with the run seed and the DIP's global
        (pool-order) index, so detection instants agree bit-for-bit.
        """
        rng = np.random.default_rng((int(seed), 0x48C7, int(dip_index)))
        return float(rng.uniform(0.0, self.probe_interval_s))

    def detection_delay_s(
        self, seed: int, dip_index: int, fail_time_s: float
    ) -> float:
        """Closed-form delay from failure to the LB's down-mark.

        The first failing probe is the first grid point at or after the
        failure; the ``unhealthy_threshold``-th consecutive failure lands
        ``(unhealthy_threshold - 1)`` intervals later and is known failed
        one ``probe_timeout_s`` after that.
        """
        interval = self.probe_interval_s
        phase = self.probe_phase_s(seed, dip_index)
        periods = max(0, -(-(fail_time_s - phase) // interval))
        first = phase + periods * interval
        if first < fail_time_s:  # float-rounding guard
            first += interval
        return (
            first
            + (self.unhealthy_threshold - 1) * interval
            + self.probe_timeout_s
            - fail_time_s
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request timeout / retry / backoff on the request substrate.

    When enabled, a request that times out (no completion within
    ``request_timeout_s`` of its attempt), lands on a dead DIP or is
    dropped by a full queue is re-routed: up to ``max_retries`` fresh
    attempts, each delayed by an exponential backoff
    (``backoff_base_s * backoff_multiplier**(attempt-1)``) with seeded
    uniform jitter of ``±jitter_fraction``, subject to a retry *budget*
    (retries issued may not exceed ``retry_budget`` × attempts observed,
    plus a small burst allowance) so retry storms cannot melt the
    cluster.  A logical request records one metrics row: its latency is
    first-arrival→final-completion, plus attempts / timed-out / gave-up
    columns.
    """

    enabled: bool = False
    request_timeout_s: float = 1.0
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.5
    retry_budget: float = 0.2

    def __post_init__(self) -> None:
        if self.request_timeout_s <= 0:
            raise ConfigurationError("retry.request_timeout_s must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("retry.max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ConfigurationError("retry.backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1:
            raise ConfigurationError("retry.backoff_multiplier must be >= 1")
        if not 0 <= self.jitter_fraction <= 1:
            raise ConfigurationError("retry.jitter_fraction must be in [0, 1]")
        if self.retry_budget < 0:
            raise ConfigurationError("retry.retry_budget must be >= 0")


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded random failure schedule, expanded into ordinary events.

    Setting ``seed`` arms chaos: before a run executes, the generator
    draws failure instants (Poisson at ``failure_rate_per_min``), victims
    (uniform over the DIPs the timeline does not already fail by hand,
    whole racks of ``rack_size`` at a time when set), outage lengths
    (exponential with ``mean_outage_s``) and post-recovery flaps
    (geometric with ``flap_probability``) from one
    ``default_rng(seed)`` stream and splices the resulting
    ``dip_fail``/``dip_recover`` :class:`EventSpec` pairs into the
    timeline.  Because the expansion happens *before* planning, a chaos
    run is indistinguishable from a hand-written timeline downstream:
    bit-identical per seed, epoch-shardable, replayable from the saved
    artifact.  Requires an explicit ``timeline.horizon_s``.
    """

    seed: int | None = None
    failure_rate_per_min: float = 2.0
    mean_outage_s: float = 15.0
    flap_probability: float = 0.0
    #: DIPs per correlated failure domain; 0/1 fails DIPs independently.
    rack_size: int = 0
    max_concurrent_failures: int = 1

    @property
    def enabled(self) -> bool:
        return self.seed is not None

    def __post_init__(self) -> None:
        if self.failure_rate_per_min <= 0:
            raise ConfigurationError(
                "timeline.chaos.failure_rate_per_min must be positive"
            )
        if self.mean_outage_s <= 0:
            raise ConfigurationError(
                "timeline.chaos.mean_outage_s must be positive"
            )
        if not 0 <= self.flap_probability < 1:
            raise ConfigurationError(
                "timeline.chaos.flap_probability must be in [0, 1)"
            )
        if self.rack_size < 0:
            raise ConfigurationError("timeline.chaos.rack_size must be >= 0")
        if self.max_concurrent_failures < 1:
            raise ConfigurationError(
                "timeline.chaos.max_concurrent_failures must be >= 1"
            )


#: flaps chained after one chaos outage are capped so schedules stay short.
_CHAOS_MAX_FLAPS = 3


def expand_chaos_events(
    chaos: ChaosSpec,
    *,
    dip_ids: tuple[str, ...],
    horizon_s: float,
    manual_events: tuple[EventSpec, ...] = (),
) -> tuple[EventSpec, ...]:
    """Draw the chaos schedule for one run as plain :class:`EventSpec` s.

    DIPs named by any manual event are left alone so the generated
    fail/recover alternation can never collide with a hand-written one.
    Outages that would outlive the horizon simply never recover.
    """
    if not chaos.enabled:
        return ()
    manual = {event.dip for event in manual_events if event.dip is not None}
    eligible = [dip for dip in dip_ids if dip not in manual]
    if not eligible:
        return ()
    if chaos.rack_size > 1:
        groups = [
            tuple(eligible[i : i + chaos.rack_size])
            for i in range(0, len(eligible), chaos.rack_size)
        ]
    else:
        groups = [(dip,) for dip in eligible]

    rng = np.random.default_rng(chaos.seed)
    rate_per_s = chaos.failure_rate_per_min / 60.0
    down_until: dict[int, float] = {}
    events: list[EventSpec] = []

    def emit_outage(group: tuple[str, ...], start: float) -> float:
        """Fail ``group`` at ``start``; return its final recovery time."""
        end = start + float(rng.exponential(chaos.mean_outage_s))
        for flap in range(_CHAOS_MAX_FLAPS + 1):
            for dip in group:
                events.append(EventSpec(time_s=start, kind="dip_fail", dip=dip))
            if end >= horizon_s:
                return float("inf")  # never recovers inside the run
            for dip in group:
                events.append(EventSpec(time_s=end, kind="dip_recover", dip=dip))
            if flap == _CHAOS_MAX_FLAPS or rng.random() >= chaos.flap_probability:
                return end
            start = end + float(rng.exponential(0.25 * chaos.mean_outage_s))
            if start >= horizon_s:
                return end
            end = start + float(rng.exponential(0.25 * chaos.mean_outage_s))
        return end

    t = float(rng.exponential(1.0 / rate_per_s))
    while t < horizon_s:
        for index, until in list(down_until.items()):
            if until <= t:
                del down_until[index]
        index = int(rng.integers(len(groups)))
        if (
            index not in down_until
            and len(down_until) < chaos.max_concurrent_failures
        ):
            down_until[index] = emit_outage(groups[index], t)
        t += float(rng.exponential(1.0 / rate_per_s))
    return tuple(events)


@dataclass(frozen=True)
class TimelineSpec:
    """The timed phase of an experiment: ordered events plus telemetry shape.

    Events apply in ``(time_s, declaration order)`` order on every substrate:
    the fluid and fleet runners apply due events between fixed-point rounds
    (one round per ``window_s``), the request runner schedules them as
    cancellable engine events on the shared heap.  ``window_s`` is also the
    granularity of the windowed time-series recorded into the result.

    ``horizon_s`` ends the timed phase; when omitted it extends
    ``TAIL_WINDOWS`` windows past the last event so the system's reaction is
    visible in the telemetry.
    """

    #: windows simulated past the last event when horizon_s is omitted.
    TAIL_WINDOWS = 5

    events: tuple[EventSpec, ...] = ()
    window_s: float = 5.0
    horizon_s: float | None = None
    chaos: ChaosSpec = ChaosSpec()

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError("timeline.window_s must be positive")
        events = tuple(
            event
            if isinstance(event, EventSpec)
            else EventSpec.from_dict(event)
            for event in self.events
        )
        object.__setattr__(self, "events", events)
        if self.horizon_s is not None:
            if self.horizon_s <= 0:
                raise ConfigurationError(
                    "timeline.horizon_s must be positive or null"
                )
            late = [e for e in events if e.time_s >= self.horizon_s]
            if late:
                raise ConfigurationError(
                    f"timeline.horizon_s = {self.horizon_s:g} does not cover "
                    f"the event at t={late[0].time_s:g}s"
                )
            slow = [
                e for e in events if e.time_s + e.drain_s >= self.horizon_s
            ]
            if slow:
                raise ConfigurationError(
                    f"timeline.horizon_s = {self.horizon_s:g} does not cover "
                    f"the drain ending at "
                    f"t={slow[0].time_s + slow[0].drain_s:g}s"
                )
        seen: set[tuple[float, str, str | None, str | None]] = set()
        for event in events:
            key = (event.time_s, event.kind, event.dip, event.vip)
            if key in seen:
                raise ConfigurationError(
                    f"timeline.events declares the duplicate event "
                    f"{event.label()!r}"
                )
            seen.add(key)
        failed: set[str] = set()
        for event in sorted(events, key=lambda e: e.time_s):
            if event.kind == "dip_fail":
                if event.dip in failed:
                    raise ConfigurationError(
                        f"timeline.events: {event.label()!r} fails a DIP "
                        "that an earlier event already failed"
                    )
                failed.add(event.dip)  # type: ignore[arg-type]
            elif event.kind == "dip_recover":
                if event.dip not in failed:
                    raise ConfigurationError(
                        f"timeline.events: {event.label()!r} recovers a DIP "
                        "that no earlier event failed"
                    )
                failed.discard(event.dip)  # type: ignore[arg-type]

    @property
    def empty(self) -> bool:
        """No events, no explicit horizon, no chaos: no timed phase."""
        return (
            not self.events
            and self.horizon_s is None
            and not self.chaos.enabled
        )

    def duration_s(self) -> float:
        """The resolved end of the timed phase."""
        if self.horizon_s is not None:
            return self.horizon_s
        last = max((e.time_s for e in self.events), default=0.0)
        return last + self.TAIL_WINDOWS * self.window_s

    def ordered_events(self) -> tuple[EventSpec, ...]:
        """Events in application order: time first, declaration order on ties."""
        # sorted() is stable, so equal-time events keep declaration order.
        return tuple(sorted(self.events, key=lambda e: e.time_s))


@dataclass(frozen=True)
class VmSpec:
    """The VM type used for ``uniform`` pools (and cores for ``three_dip``)."""

    name: str = "api-2core"
    vcpus: int = 2
    capacity_rps: float = 800.0
    #: ``None`` picks the M/M/c-consistent idle latency (vcpus/capacity).
    idle_latency_ms: float | None = None

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ConfigurationError("pool.vm.vcpus must be >= 1")
        if self.capacity_rps <= 0:
            raise ConfigurationError("pool.vm.capacity_rps must be positive")
        if self.idle_latency_ms is not None and self.idle_latency_ms <= 0:
            raise ConfigurationError(
                "pool.vm.idle_latency_ms must be positive or null"
            )


@dataclass(frozen=True)
class PoolSpec:
    """Which DIP pool to build (see :func:`repro.workloads.build_pool`)."""

    kind: str = "uniform"
    num_dips: int = 8
    vm: VmSpec = VmSpec()
    #: capacity squeeze of the low-capacity DIP for ``three_dip`` pools.
    capacity_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in POOL_KINDS:
            known = ", ".join(POOL_KINDS)
            raise ConfigurationError(
                f"pool.kind must be one of: {known}; got {self.kind!r}"
            )
        if self.num_dips < 1:
            raise ConfigurationError("pool.num_dips must be >= 1")
        if not 0 < self.capacity_ratio <= 1:
            raise ConfigurationError("pool.capacity_ratio must be in (0, 1]")


@dataclass(frozen=True)
class ArrivalSpec:
    """The arrival-process shape (see :mod:`repro.workloads.arrivals`).

    Fields apply per ``kind``; setting one for a kind that does not use
    it is rejected eagerly, so typos surface as dotted-path errors at
    validate time rather than silently configuring nothing.  The
    ``mmpp`` and ``flash_crowd`` kinds default-fill their parameters, so
    ``--set workload.arrival.kind=mmpp`` alone yields a sensibly bursty
    workload.
    """

    kind: str = "poisson"
    #: mmpp: relative per-state intensities (normalized so the stationary
    #: mean matches the workload rate).
    state_rates: tuple[float, ...] = ()
    #: mmpp: exit rate of each state (mean sojourn ``1/rate`` seconds).
    switch_rates: tuple[float, ...] = ()
    #: flash_crowd: Poisson rate of burst onsets.
    burst_rate_per_s: float = 0.0
    #: flash_crowd: peak intensity boost per burst (x the base rate).
    burst_height: float = 0.0
    #: flash_crowd: exponential decay constant of each burst (seconds).
    burst_decay_s: float = 0.0
    #: trace: CSV/JSONL file whose ``trace_column`` holds timestamps.
    trace_path: str | None = None
    trace_column: str = "timestamp"
    #: trace: replay the trace's own mean rate instead of scaling to the
    #: spec's ``load_fraction`` rate.
    preserve_rate: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            known = ", ".join(sorted(ARRIVAL_KINDS))
            raise ConfigurationError(
                f"workload.arrival.kind must be one of: {known}; "
                f"got {self.kind!r}"
            )
        object.__setattr__(
            self, "state_rates", tuple(float(r) for r in self.state_rates)
        )
        object.__setattr__(
            self, "switch_rates", tuple(float(r) for r in self.switch_rates)
        )
        if self.kind == "mmpp":
            if not self.state_rates:
                object.__setattr__(self, "state_rates", (0.4, 3.4))
            if not self.switch_rates:
                object.__setattr__(
                    self, "switch_rates", tuple(0.5 for _ in self.state_rates)
                )
            if len(self.state_rates) < 2:
                raise ConfigurationError(
                    "workload.arrival.state_rates needs at least two states "
                    "for kind 'mmpp'"
                )
            if len(self.switch_rates) != len(self.state_rates):
                raise ConfigurationError(
                    "workload.arrival.switch_rates must match state_rates "
                    f"({len(self.switch_rates)} vs {len(self.state_rates)})"
                )
            if any(r < 0 for r in self.state_rates) or max(
                self.state_rates
            ) <= 0:
                raise ConfigurationError(
                    "workload.arrival.state_rates must be >= 0 with a "
                    "positive maximum"
                )
            if any(r <= 0 for r in self.switch_rates):
                raise ConfigurationError(
                    "workload.arrival.switch_rates must be positive"
                )
        elif self.state_rates or self.switch_rates:
            raise ConfigurationError(
                "workload.arrival.state_rates/switch_rates only apply to "
                f"kind 'mmpp'; kind is {self.kind!r}"
            )
        if self.kind == "flash_crowd":
            if self.burst_rate_per_s == 0:
                object.__setattr__(self, "burst_rate_per_s", 0.2)
            if self.burst_height == 0:
                object.__setattr__(self, "burst_height", 5.0)
            if self.burst_decay_s == 0:
                object.__setattr__(self, "burst_decay_s", 2.0)
            if self.burst_rate_per_s <= 0:
                raise ConfigurationError(
                    "workload.arrival.burst_rate_per_s must be positive"
                )
            if self.burst_height <= 0:
                raise ConfigurationError(
                    "workload.arrival.burst_height must be positive"
                )
            if self.burst_decay_s <= 0:
                raise ConfigurationError(
                    "workload.arrival.burst_decay_s must be positive"
                )
        elif self.burst_rate_per_s or self.burst_height or self.burst_decay_s:
            raise ConfigurationError(
                "workload.arrival.burst_* fields only apply to kind "
                f"'flash_crowd'; kind is {self.kind!r}"
            )
        if self.kind == "trace":
            if not self.trace_path:
                raise ConfigurationError(
                    "workload.arrival.trace_path is required for kind 'trace'"
                )
        else:
            if self.trace_path is not None:
                raise ConfigurationError(
                    "workload.arrival.trace_path only applies to kind "
                    f"'trace'; kind is {self.kind!r}"
                )
            if self.trace_column != "timestamp":
                raise ConfigurationError(
                    "workload.arrival.trace_column only applies to kind "
                    f"'trace'; kind is {self.kind!r}"
                )
            if self.preserve_rate:
                raise ConfigurationError(
                    "workload.arrival.preserve_rate only applies to kind "
                    f"'trace'; kind is {self.kind!r}"
                )


@dataclass(frozen=True)
class ServiceSpec:
    """The service-time shape drawn by every DIP station.

    All kinds are unit-mean (scaled by each DIP's mean service time at
    consumption), so ``load_fraction`` keeps its meaning; the kinds
    differ in their squared coefficient of variation — the ``Cs^2`` the
    divergence guard and the fluid substrate's Allen-Cunneen correction
    are built from.
    """

    kind: str = "exponential"
    #: lognormal: squared coefficient of variation of service times.
    scv: float = 1.0
    #: pareto: tail index alpha (> 1 for a finite mean; <= 2 has
    #: infinite variance — the analytic twin is hopeless there).
    tail_index: float = 2.5
    #: elephant: fraction of flows that are elephants.
    elephant_fraction: float = 0.05
    #: elephant: elephant service time as a multiple of a mouse's.
    elephant_factor: float = 20.0

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_KINDS:
            known = ", ".join(sorted(SERVICE_KINDS))
            raise ConfigurationError(
                f"workload.service.kind must be one of: {known}; "
                f"got {self.kind!r}"
            )
        if self.kind == "lognormal":
            if self.scv <= 0:
                raise ConfigurationError(
                    "workload.service.scv must be positive"
                )
        elif self.scv != 1.0:
            raise ConfigurationError(
                "workload.service.scv only applies to kind 'lognormal'; "
                f"kind is {self.kind!r}"
            )
        if self.kind == "pareto":
            if self.tail_index <= 1.0:
                raise ConfigurationError(
                    "workload.service.tail_index must be > 1 (a unit-mean "
                    "Pareto needs a finite mean)"
                )
        elif self.tail_index != 2.5:
            raise ConfigurationError(
                "workload.service.tail_index only applies to kind 'pareto'; "
                f"kind is {self.kind!r}"
            )
        if self.kind == "elephant":
            if not 0 < self.elephant_fraction < 1:
                raise ConfigurationError(
                    "workload.service.elephant_fraction must be in (0, 1)"
                )
            if self.elephant_factor < 1:
                raise ConfigurationError(
                    "workload.service.elephant_factor must be >= 1"
                )
        elif self.elephant_fraction != 0.05 or self.elephant_factor != 20.0:
            raise ConfigurationError(
                "workload.service.elephant_* fields only apply to kind "
                f"'elephant'; kind is {self.kind!r}"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """The offered traffic, sized relative to the pool's total capacity."""

    load_fraction: float = 0.6
    #: request budget for the request-level engine.
    num_requests: int = 20_000
    #: simulated warm-up before measurement starts (request engine only).
    warmup_s: float = 1.0
    #: arrival-process shape (Poisson baseline by default).
    arrival: ArrivalSpec = ArrivalSpec()
    #: service-time shape (exponential baseline by default).
    service: ServiceSpec = ServiceSpec()
    #: how far Ca^2/Cs^2 may stray from the M/M/c value of 1 before runs
    #: carry a ``provenance.model_divergence`` warning.
    divergence_tolerance: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.load_fraction < 1.5:
            raise ConfigurationError(
                "workload.load_fraction must be in (0, 1.5)"
            )
        if self.num_requests < 1:
            raise ConfigurationError("workload.num_requests must be >= 1")
        if self.warmup_s < 0:
            raise ConfigurationError("workload.warmup_s must be >= 0")
        if self.divergence_tolerance < 0:
            raise ConfigurationError(
                "workload.divergence_tolerance must be >= 0"
            )


@dataclass(frozen=True)
class PolicySpec:
    """The LB policy requests are split by (names from the lb registry).

    ``num_muxes > 1`` fronts the policy with the
    :class:`~repro.lb.mux.MuxPool` dataplane on the request substrate:
    flows ECMP-hash to one of ``num_muxes`` MUXes, each running its own
    policy replica (the paper's scaled-out dataplane).
    """

    name: str = "wrr"
    num_muxes: int = 1

    def __post_init__(self) -> None:
        known = policy_registry()
        if self.name not in known:
            names = ", ".join(sorted(known))
            raise ConfigurationError(
                f"policy.name must be one of: {names}; got {self.name!r}"
            )
        if self.num_muxes < 1:
            raise ConfigurationError("policy.num_muxes must be >= 1")


@dataclass(frozen=True)
class ControllerSpec:
    """Whether (and how) the KnapsackLB controller drives the run.

    When enabled, the fluid and fleet runners converge the controller before
    measuring; the request runner computes weights on an analytic fluid twin
    of the same pool and replays them through the request-level engine.
    """

    enabled: bool = True
    #: settle control steps after programming weights (fluid/fleet).
    settle_steps: int = 3
    #: extra §4.5 control ticks after convergence.
    control_steps: int = 0
    config: KnapsackLBConfig = KnapsackLBConfig()

    def __post_init__(self) -> None:
        if self.settle_steps < 0:
            raise ConfigurationError("controller.settle_steps must be >= 0")
        if self.control_steps < 0:
            raise ConfigurationError("controller.control_steps must be >= 0")


@dataclass(frozen=True)
class FleetSpec:
    """Multi-VIP shape used only by the fleet runner.

    The pool's DIPs are shared by ``num_vips`` overlapping VIPs (see
    :func:`repro.workloads.build_shared_dip_fleet`); a spec without a
    ``fleet`` section still runs on the fleet substrate with these defaults.
    """

    num_vips: int = 4
    #: DIPs per VIP window; ``None`` derives it from the sharing ratio.
    pool_size: int | None = None
    #: VIPs that start *outside* the control plane (traffic flows at the
    #: builder's capacity-proportional weights) until a ``vip_onboard``
    #: event — declared in the timeline or injected live through the
    #: ``repro serve`` daemon — brings them under KnapsackLB control.
    deferred_vips: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.num_vips < 1:
            raise ConfigurationError("fleet.num_vips must be >= 1")
        if self.pool_size is not None and self.pool_size < 1:
            raise ConfigurationError("fleet.pool_size must be >= 1 or null")
        object.__setattr__(self, "deferred_vips", tuple(self.deferred_vips))
        for vip in self.deferred_vips:
            if not vip or not isinstance(vip, str):
                raise ConfigurationError(
                    "fleet.deferred_vips must be a list of VIP names"
                )


@dataclass(frozen=True)
class ExperimentSpec:
    """The single declarative description of one experiment run."""

    name: str
    runner: str = "fluid"
    pool: PoolSpec = PoolSpec()
    workload: WorkloadSpec = WorkloadSpec()
    policy: PolicySpec = PolicySpec()
    controller: ControllerSpec = ControllerSpec()
    fleet: FleetSpec = FleetSpec()
    timeline: TimelineSpec = TimelineSpec()
    health: HealthCheckSpec = HealthCheckSpec()
    retry: RetryPolicy = RetryPolicy()
    seed: int = 0
    #: epoch length for epoch-synchronized sharded runs (seconds between
    #: cross-shard state barriers; smaller = less staleness, more syncs).
    sync_interval_s: float = 0.25
    #: registered scenario to delegate to (runner == "scenario" only).
    scenario: str | None = None
    #: parameter overrides for the scenario's runner.
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("name must be a non-empty string")
        if self.sync_interval_s <= 0:
            raise ConfigurationError("sync_interval_s must be positive")
        if self.runner not in RUNNER_KINDS:
            kinds = ", ".join(RUNNER_KINDS)
            raise ConfigurationError(
                f"runner must be one of: {kinds}; got {self.runner!r}"
            )
        if self.runner == "scenario" and not self.scenario:
            raise ConfigurationError(
                "runner 'scenario' needs the scenario field set"
            )
        if self.scenario is not None and self.runner != "scenario":
            raise ConfigurationError(
                f"scenario {self.scenario!r} requires runner 'scenario', "
                f"got {self.runner!r}"
            )
        if self.runner == "scenario" and (
            self.timeline.events or self.timeline.horizon_s is not None
        ):
            # chaos-only timelines are allowed: the bridging ScenarioRunner
            # hands timeline.chaos.seed to scenarios that accept one.
            raise ConfigurationError(
                "runner 'scenario' cannot carry timeline events; scenarios "
                "build their own timed specs (use runner fluid/request/fleet)"
            )
        if self.runner == "scenario" and (
            self.health.enabled or self.retry.enabled
        ):
            raise ConfigurationError(
                "runner 'scenario' cannot carry health/retry sections; "
                "scenarios configure resilience through their own params"
            )
        if self.retry.enabled and self.runner != "request":
            raise ConfigurationError(
                "retry.enabled needs runner 'request': retries act on "
                "individual requests, which only the request engine models"
            )
        if (
            self.workload.arrival.kind == "trace"
            and self.workload.arrival.preserve_rate
            and any(
                event.kind == "arrival_scale" for event in self.timeline.events
            )
        ):
            raise ConfigurationError(
                "timeline 'arrival_scale' events cannot rescale a trace "
                "workload with workload.arrival.preserve_rate = true: the "
                "replay clock is pinned to the trace; set "
                "workload.arrival.preserve_rate = false to allow scaling"
            )
        if (
            self.timeline.chaos.enabled
            and self.runner != "scenario"
            and self.timeline.horizon_s is None
        ):
            raise ConfigurationError(
                "timeline.chaos needs an explicit timeline.horizon_s: the "
                "generated failure schedule fills a fixed timed phase"
            )
        if (
            self.controller.enabled
            and self.runner != "scenario"
            and not policy_registry()[self.policy.name].weighted
        ):
            raise ConfigurationError(
                f"policy.name {self.policy.name!r} cannot carry KnapsackLB "
                "weights; pick a weighted policy (wrr, wrandom, wlc, dns) "
                "or set controller.enabled = false"
            )
        # ``params`` is the one mutable field on this frozen tree: copy it so
        # derived specs never share (and callers can never mutate) state.
        object.__setattr__(self, "params", dict(self.params))

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a plain mapping, naming any bad field."""
        return dataclass_from_dict(cls, data, path="spec")

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"spec file {str(path)!r} does not exist")
        text = path.read_text(encoding="utf-8")
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as error:
                raise ConfigurationError(
                    f"spec file {str(path)!r} is not valid TOML: {error}"
                ) from None
        elif suffix == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"spec file {str(path)!r} is not valid JSON: {error}"
                ) from None
        else:
            raise ConfigurationError(
                f"spec file {str(path)!r} must end in .json or .toml"
            )
        return cls.from_dict(data)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return dataclass_to_dict(self)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    # -- derivation ------------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ExperimentSpec":
        """A new spec with dotted-path overrides applied.

        ``{"workload.load_fraction": 0.4, "runner": "request"}`` replaces
        nested fields; on scenario-backed specs a bare key that is not a
        spec field is treated as a scenario parameter (``params.<key>``).
        """
        spec = self
        for raw_path, value in overrides.items():
            parts = str(raw_path).split(".")
            if (
                len(parts) == 1
                and self.scenario is not None
                and parts[0] not in _SPEC_FIELDS
            ):
                parts = ["params", parts[0]]
            spec = _override(spec, parts, value, raw_path)
        return spec


_SPEC_FIELDS = frozenset(ExperimentSpec.__dataclass_fields__)


def _override(node: Any, parts: list[str], value: Any, raw_path: str) -> Any:
    head = parts[0]
    if isinstance(node, dict):
        return {**node, head: value}
    fields_map = getattr(node, "__dataclass_fields__", {})
    if head not in fields_map:
        valid = ", ".join(sorted(fields_map)) or "(none)"
        raise ConfigurationError(
            f"unknown override path {raw_path!r} at {head!r}; "
            f"valid fields: {valid}"
        )
    if len(parts) == 1:
        current = getattr(node, head)
        if dataclass_is_node(current) and isinstance(value, Mapping):
            value = dataclass_from_dict(type(current), value, path=head)
        elif isinstance(current, tuple) and isinstance(value, list):
            value = tuple(value)
        return replace(node, **{head: value})
    child = _override(getattr(node, head), parts[1:], value, raw_path)
    return replace(node, **{head: child})


def dataclass_is_node(obj: Any) -> bool:
    return hasattr(obj, "__dataclass_fields__") and not isinstance(obj, type)

"""The run artifact: metrics + per-DIP detail + full provenance.

A :class:`RunResult` is what every runner returns and what the CLI writes
to disk: the headline metrics, per-DIP summary rows, the fully-resolved
spec that produced them, the seed, and wall-clock provenance.  It
round-trips through JSON, so a saved artifact can be reloaded, diffed
against a later run (``metrics_equal``), or re-executed from its embedded
spec to check reproducibility.

Timing lives in ``provenance`` — never in ``metrics`` for the fluid and
request runners — so re-running a saved spec with the same seed reproduces
the metrics dict bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro import __version__
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError

#: Schema tag embedded in every serialized artifact.
RESULT_SCHEMA = "repro.api.run_result/v1"


@dataclass(frozen=True)
class Provenance:
    """Where and when a result came from (excluded from metric comparison).

    ``shards``/``workers`` record how a request-level run was executed by
    the parallel layer (1/1 for serial runs); ``shards`` is the *effective*
    count after the planner clamps to the DIP count.  ``shard_mode`` names
    the execution path ("serial", "exact", or "epoch"), ``sync_interval_s``
    the epoch length for epoch runs, and ``fallback_reason`` why a
    requested sharding fell back to serial.  Execution shape lives here —
    not in ``metrics`` — because a sharded run's merged metrics are
    bit-identical for a fixed seed regardless of how many processes
    produced them.
    """

    started_at: str
    wall_clock_s: float
    version: str = __version__
    shards: int = 1
    workers: int = 1
    shard_mode: str = "serial"
    sync_interval_s: float | None = None
    fallback_reason: str | None = None
    #: worker-pool tasks re-dispatched after a timeout or crash.
    retries: int = 0
    #: execution mode the pool degraded to after repeated failures
    #: ("inline" when the last-resort in-process path ran), or ``None``.
    degraded_to: str | None = None
    #: runs of a sweep that ultimately failed (their rows carry ``error``).
    failed_runs: int = 0
    #: the divergence guard's warning when the workload breaks the
    #: analytic twin's M/M/c assumptions (see
    #: :func:`repro.workloads.divergence.assess_divergence`); ``None``
    #: when the analytic model is trustworthy or was not consulted.
    model_divergence: str | None = None


@dataclass(frozen=True)
class RunWindow:
    """One telemetry window of a timed run (a row of the time-series).

    Windows turn a result from an end-of-run aggregate into a replayable
    trajectory: per-window headline metrics, the per-DIP request/rate share,
    and the labels of the timeline events applied during the window, in
    application order.  Times are seconds from the start of the timed phase
    (the same clock :class:`~repro.api.spec.EventSpec` times use).
    """

    start_s: float
    end_s: float
    metrics: dict[str, float]
    dip_share: dict[str, float] = field(default_factory=dict)
    events: tuple[str, ...] = ()
    #: per-DIP columns for the window (latency, utilization, in-system
    #: population where the substrate provides them) — the rows learned
    #: policies observe without recomputing them from aggregates.  Old
    #: artifacts without this field load as empty rows.
    dip_metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data = {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "metrics": dict(self.metrics),
            "dip_share": dict(self.dip_share),
            "events": list(self.events),
        }
        if self.dip_metrics:
            data["dip_metrics"] = {
                dip: dict(row) for dip, row in self.dip_metrics.items()
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunWindow":
        return cls(
            start_s=float(data["start_s"]),
            end_s=float(data["end_s"]),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            dip_share={
                k: float(v) for k, v in data.get("dip_share", {}).items()
            },
            events=tuple(str(e) for e in data.get("events", ())),
            dip_metrics={
                dip: {k: float(v) for k, v in row.items()}
                for dip, row in data.get("dip_metrics", {}).items()
            },
        )


def timeline_metrics(windows: tuple[RunWindow, ...]) -> dict[str, float]:
    """Headline latency metrics of a timed phase, comparable across substrates.

    ``mean_latency_ms`` is the run average over the whole timed phase
    (rate·time-weighted across windows, so it matches the request engine's
    completed-request average in meaning), ``final_latency_ms`` the last
    window's value — end state and trajectory average stay distinct.

    Shared by the batch runners and the live service's session export: both
    fold the same window rows through the same arithmetic in the same
    order, so a replayed session reproduces these numbers bit-for-bit.
    """
    weighted = 0.0
    weight = 0.0
    for window in windows:
        mean = window.metrics.get("mean_latency_ms", float("nan"))
        if mean != mean:
            continue
        rate = window.metrics.get("total_rate_rps", 1.0)
        share = rate * (window.end_s - window.start_s)
        weighted += mean * share
        weight += share
    return {
        "mean_latency_ms": weighted / weight if weight else float("nan"),
        "final_latency_ms": (
            windows[-1].metrics.get("mean_latency_ms", float("nan"))
            if windows
            else float("nan")
        ),
    }


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing one :class:`ExperimentSpec`."""

    spec: ExperimentSpec
    runner: str
    seed: int
    metrics: dict[str, float]
    dip_summaries: dict[str, dict[str, float]]
    provenance: Provenance
    #: windowed time-series of the timed phase (empty without a timeline).
    windows: tuple[RunWindow, ...] = ()
    #: why this run produced no metrics (sweep error capture); ``None``
    #: for successful runs.
    error: str | None = None
    #: rich in-memory detail (assignments, states); never serialized.
    detail: Any = field(default=None, compare=False, repr=False)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data = {
            "schema": RESULT_SCHEMA,
            "spec": self.spec.to_dict(),
            "runner": self.runner,
            "seed": self.seed,
            "metrics": dict(self.metrics),
            "dip_summaries": {
                dip: dict(row) for dip, row in self.dip_summaries.items()
            },
            "windows": [window.to_dict() for window in self.windows],
            "provenance": {
                "started_at": self.provenance.started_at,
                "wall_clock_s": self.provenance.wall_clock_s,
                "version": self.provenance.version,
                "shards": self.provenance.shards,
                "workers": self.provenance.workers,
                "shard_mode": self.provenance.shard_mode,
                "sync_interval_s": self.provenance.sync_interval_s,
                "fallback_reason": self.provenance.fallback_reason,
                "retries": self.provenance.retries,
                "degraded_to": self.provenance.degraded_to,
                "failed_runs": self.provenance.failed_runs,
                "model_divergence": self.provenance.model_divergence,
            },
        }
        if self.error is not None:
            data["error"] = self.error
        return data

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        schema = data.get("schema")
        if schema != RESULT_SCHEMA:
            raise ConfigurationError(
                f"unsupported result schema {schema!r}; expected {RESULT_SCHEMA!r}"
            )
        missing = [
            key
            for key in ("spec", "runner", "seed", "metrics", "provenance")
            if key not in data
        ]
        if missing:
            raise ConfigurationError(
                f"result artifact is missing field {missing[0]!r}"
            )
        prov = data["provenance"]
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            runner=str(data["runner"]),
            seed=int(data["seed"]),
            metrics={k: float(v) for k, v in data["metrics"].items()},
            dip_summaries={
                dip: {k: float(v) for k, v in row.items()}
                for dip, row in data.get("dip_summaries", {}).items()
            },
            windows=tuple(
                RunWindow.from_dict(row) for row in data.get("windows", ())
            ),
            error=(
                str(data["error"]) if data.get("error") is not None else None
            ),
            provenance=Provenance(
                started_at=str(prov.get("started_at", "")),
                wall_clock_s=float(prov.get("wall_clock_s", 0.0)),
                version=str(prov.get("version", "")),
                shards=int(prov.get("shards", 1)),
                workers=int(prov.get("workers", 1)),
                shard_mode=str(prov.get("shard_mode", "serial")),
                sync_interval_s=(
                    float(prov["sync_interval_s"])
                    if prov.get("sync_interval_s") is not None
                    else None
                ),
                fallback_reason=(
                    str(prov["fallback_reason"])
                    if prov.get("fallback_reason") is not None
                    else None
                ),
                retries=int(prov.get("retries", 0)),
                degraded_to=(
                    str(prov["degraded_to"])
                    if prov.get("degraded_to") is not None
                    else None
                ),
                failed_runs=int(prov.get("failed_runs", 0)),
                model_divergence=(
                    str(prov["model_divergence"])
                    if prov.get("model_divergence") is not None
                    else None
                ),
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunResult":
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"result file {str(path)!r} does not exist")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"result file {str(path)!r} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)

    @classmethod
    def error_result(
        cls, spec: ExperimentSpec, message: str, *, started_at: str = ""
    ) -> "RunResult":
        """A failed run's row: empty metrics, the failure under ``error``.

        Sweeps return one of these per point that raised instead of
        aborting the whole expansion — the successful points' results
        survive, and the failure is inspectable in the same table.
        """
        return cls(
            spec=spec,
            runner=spec.runner,
            seed=spec.seed,
            metrics={},
            dip_summaries={},
            provenance=Provenance(started_at=started_at, wall_clock_s=0.0),
            error=message,
        )

    def window_series(self, metric: str) -> tuple[float, ...]:
        """One metric as a time-series across the windows (NaN where absent)."""
        return tuple(w.metrics.get(metric, float("nan")) for w in self.windows)

    # -- comparison ------------------------------------------------------------

    def metrics_equal(self, other: "RunResult", *, rel_tol: float = 0.0) -> bool:
        """Same metric keys and values (within ``rel_tol`` relative error)."""
        if set(self.metrics) != set(other.metrics):
            return False
        for key, value in self.metrics.items():
            theirs = other.metrics[key]
            if value == theirs:
                continue
            if value != value and theirs != theirs:  # both NaN
                continue
            scale = max(abs(value), abs(theirs), 1e-12)
            if abs(value - theirs) / scale > rel_tol:
                return False
        return True

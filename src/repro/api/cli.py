"""The ``python -m repro`` command line.

Seven verbs over the declarative API, all round-tripping through files:

* ``list`` — registered specs (scenario bridges + built-ins), policies,
  and the learner registry (agents, episode shapes, named learn specs);
* ``show NAME|FILE`` — the fully-resolved spec as JSON;
* ``validate NAME|FILE`` — eager-validate a spec (timeline included) and
  exit non-zero with the dotted-path error, without running anything;
  learn-spec documents (``env``/``agent`` sections) are detected and
  validated as :class:`~repro.learn.LearnSpec` the same way;
* ``run NAME|FILE [--set path=value ...] [--runner R] [--watch]
  [--shards N] [--workers N] [--sync-interval S] [-o out.json]`` —
  ``--shards`` fans a request-level run across the parallel layer
  (exact per-DIP decomposition where possible, epoch-synchronized
  sharding with ``--sync-interval`` staleness for stateful policies and
  timelines, serial fallback with the reason surfaced otherwise);
* ``sweep NAME|FILE --axis path=v1,v2 [...] [-j/--workers N] [-o dir]`` —
  the expansion runs through one warm worker pool;
* ``serve NAME|FILE [--host H] [--port P] [--time-scale X]
  [--accelerated]`` — run the spec as a live daemon: the control loop
  executes one window per ``window_s / time_scale`` wall seconds
  (``--accelerated`` runs windows back to back), REST endpoints expose
  per-VIP windowed stats and the applied/pending timeline, ``POST
  /events`` injects live mutations, ``WS /stream`` pushes each window,
  and ``GET /session`` exports a spec whose batch re-run reproduces the
  session bit-for-bit per seed (see :mod:`repro.service`);
* ``compare a.json b.json [--windows] [--window-metric M]`` — align saved
  result artifacts; ``--windows`` adds the window-by-window trajectory
  table;
* ``learn train NAME|FILE [--checkpoint ck.json] [--resume]`` /
  ``learn eval --checkpoint ck.json`` / ``learn compare [--scenario S]``
  — train a weight-learning agent on the gym-style environment, evaluate
  a saved checkpoint, or run learned agents head-to-head against the
  KnapsackLB controller and the static baselines (see
  :mod:`repro.learn`).

``--set`` values are parsed as JSON first (so ``--set seed=3`` is an int
and ``--set policy.name=lc`` a string); dotted paths address nested spec
fields, and bare keys on scenario-backed specs address scenario
parameters.  ``run --watch`` streams progress lines (applied timeline
events, per-window headline metrics) to stderr while the run executes.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.analysis import format_table
from repro.api.registry import get_spec, list_specs
from repro.api.result import RunResult
from repro.api.runners import execute
from repro.api.spec import ExperimentSpec
from repro.api.sweep import Sweep, SweepAxis, compare, window_table
from repro.api.timeline import PrintingObserver
from repro.exceptions import ReproError


def _parse_value(text: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_overrides(pairs: Sequence[str]) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    for pair in pairs:
        path, eq, value = pair.partition("=")
        if not eq or not path:
            raise ReproError(
                f"--set expects path=value, got {pair!r} "
                "(e.g. --set workload.load_fraction=0.5)"
            )
        overrides[path] = _parse_value(value)
    return overrides


def _resolve_spec(args: argparse.Namespace) -> ExperimentSpec:
    spec = get_spec(args.spec)
    overrides = _parse_overrides(args.set or [])
    if getattr(args, "runner", None):
        overrides["runner"] = args.runner
    if getattr(args, "sync_interval", None) is not None:
        overrides["sync_interval_s"] = args.sync_interval
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


def _metrics_table(result: RunResult) -> str:
    rows = [[key, value] for key, value in sorted(result.metrics.items())]
    return format_table(
        ["metric", "value"],
        rows,
        title=f"{result.spec.name} [{result.runner}] seed={result.seed}",
    )


# -- verbs ----------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.lb import policy_registry
    from repro.learn import (
        agent_registry,
        env_scenario_registry,
        learn_spec_registry,
    )

    rows = [[name, summary] for name, summary in list_specs()]
    print(format_table(["spec", "summary"], rows, title="Registered specs"))
    policy_rows = [
        [name, "yes" if desc.weighted else "no", desc.summary]
        for name, desc in sorted(policy_registry().items())
    ]
    print()
    print(
        format_table(
            ["policy", "weighted", "summary"],
            policy_rows,
            title="LB policies",
        )
    )
    agent_rows = [
        [name, "yes" if desc.trainable else "no", desc.summary]
        for name, desc in sorted(agent_registry().items())
    ]
    print()
    print(
        format_table(
            ["agent", "trainable", "summary"],
            agent_rows,
            title="Learning agents (learn train/compare)",
        )
    )
    scenario_rows = [
        [name, scenario.summary]
        for name, scenario in sorted(env_scenario_registry().items())
    ]
    print()
    print(
        format_table(
            ["episode shape", "summary"],
            scenario_rows,
            title="Learning episode shapes (env.scenario)",
        )
    )
    learn_rows = [
        [name, summary]
        for name, summary in sorted(learn_spec_registry().items())
    ]
    print()
    print(
        format_table(
            ["learn spec", "summary"],
            learn_rows,
            title="Named learn specs (learn train NAME)",
        )
    )
    from repro.workloads import ARRIVAL_KINDS, SERVICE_KINDS

    arrival_rows = [
        [name, summary] for name, summary in sorted(ARRIVAL_KINDS.items())
    ]
    print()
    print(
        format_table(
            ["arrival kind", "summary"],
            arrival_rows,
            title="Workload arrival kinds (workload.arrival.kind)",
        )
    )
    service_rows = [
        [name, summary] for name, summary in sorted(SERVICE_KINDS.items())
    ]
    print()
    print(
        format_table(
            ["service kind", "summary"],
            service_rows,
            title="Service-time kinds (workload.service.kind)",
        )
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(_resolve_spec(args).to_json())
    return 0


#: Top-level keys that identify a learn-spec document vs an experiment spec.
_LEARN_DOC_KEYS = frozenset(
    {"env", "agent", "episodes", "eval_every", "eval_episodes", "checkpoint_every"}
)
_SPEC_DOC_KEYS = frozenset(
    {
        "runner",
        "pool",
        "workload",
        "policy",
        "controller",
        "fleet",
        "timeline",
        "health",
        "retry",
        "scenario",
        "params",
        "sync_interval_s",
    }
)


def _learn_document(ref: str) -> dict[str, Any] | None:
    """The raw learn-spec mapping ``ref`` names, or ``None`` if it is not one.

    A registered learn-spec name resolves directly; a ``.json``/``.toml``
    file counts as a learn document when its top-level keys include a
    learn-only section (``env``/``agent``/...) and no experiment-spec
    section — ambiguous or unparsable files fall through to the ordinary
    spec path so its errors surface unchanged.
    """
    from repro.learn import get_learn_spec, learn_spec_registry

    if ref in learn_spec_registry():
        return get_learn_spec(ref).to_dict()
    path = Path(ref)
    suffix = path.suffix.lower()
    if suffix not in (".json", ".toml") or not path.exists():
        return None
    try:
        if suffix == ".toml":
            import tomllib

            data = tomllib.loads(path.read_text(encoding="utf-8"))
        else:
            data = json.loads(path.read_text(encoding="utf-8"))
    except Exception:
        return None
    if not isinstance(data, dict):
        return None
    keys = set(data)
    if keys & _LEARN_DOC_KEYS and not keys & _SPEC_DOC_KEYS:
        return data
    return None


def _apply_doc_overrides(
    data: dict[str, Any], overrides: dict[str, Any]
) -> dict[str, Any]:
    """Apply ``--set`` dotted paths onto a raw document mapping."""
    for dotted, value in overrides.items():
        node = data
        parts = dotted.split(".")
        for part in parts[:-1]:
            child = node.setdefault(part, {})
            if not isinstance(child, dict):
                raise ReproError(
                    f"--set path {dotted!r} crosses the non-section "
                    f"field {part!r}"
                )
            node = child
        node[parts[-1]] = value
    return data


def _resolve_learn_spec(args: argparse.Namespace) -> "Any":
    from repro.learn import LearnSpec, get_learn_spec

    spec = get_learn_spec(args.spec)
    overrides = _parse_overrides(args.set or [])
    if overrides:
        spec = LearnSpec.from_dict(
            _apply_doc_overrides(spec.to_dict(), overrides)
        )
    return spec


def _cmd_validate(args: argparse.Namespace) -> int:
    document = _learn_document(args.spec)
    if document is not None:
        from repro.learn import LearnSpec

        overrides = _parse_overrides(args.set or [])
        if overrides:
            document = _apply_doc_overrides(document, overrides)
        spec = LearnSpec.from_dict(document)  # dotted-path errors as learn.*
        print(
            f"learn spec {spec.name!r} is valid: agent={spec.agent.name}, "
            f"scenario={spec.env.scenario} [{spec.env.substrate}], "
            f"{spec.episodes} episode(s)"
        )
        return 0
    spec = _resolve_spec(args)  # raises ReproError with the dotted path
    timeline = spec.timeline
    shape = (
        "no timeline"
        if timeline.empty
        else (
            f"{len(timeline.events)} timeline event(s) over "
            f"{timeline.duration_s():g}s in {timeline.window_s:g}s windows"
        )
    )
    print(f"spec {spec.name!r} is valid: runner={spec.runner}, {shape}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    observers = (PrintingObserver(),) if args.watch else ()
    sharding = args.shards is not None and args.shards > 1
    if args.workers and not sharding:
        print(
            "warning: --workers only applies to sharded runs; "
            "pass --shards N to fan out (running serially)",
            file=sys.stderr,
        )
    # Surface the planner's serial-fallback reason: it is emitted on the
    # "repro.parallel" logger, which has no handler in a bare CLI process.
    handler: logging.Handler | None = None
    parallel_logger = logging.getLogger("repro.parallel")
    if sharding and not parallel_logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("note: %(message)s"))
        parallel_logger.addHandler(handler)
        if parallel_logger.level > logging.INFO or parallel_logger.level == 0:
            parallel_logger.setLevel(logging.INFO)
    try:
        result = execute(
            spec, observers=observers, shards=args.shards, workers=args.workers
        )
    finally:
        if handler is not None:
            parallel_logger.removeHandler(handler)
    if sharding or args.watch:
        prov = result.provenance
        if prov.fallback_reason is not None:
            note = f"serial fallback: {prov.fallback_reason}"
        elif prov.shard_mode == "epoch":
            note = (
                f"epoch-sharded run: shards={prov.shards}, "
                f"workers={prov.workers}, "
                f"sync_interval_s={prov.sync_interval_s:g}"
            )
        elif prov.shard_mode == "exact":
            note = (
                f"exact-sharded run: shards={prov.shards}, "
                f"workers={prov.workers}"
            )
        else:
            note = "serial run"
        print(f"note: {note}", file=sys.stderr)
    if args.format == "json":
        # Machine-readable mode: the artifact alone on stdout (watch and
        # note lines already go to stderr), so `repro run --format json |
        # jq` composes cleanly.
        print(result.to_json())
    else:
        print(_metrics_table(result))
    if args.output:
        path = result.save(args.output)
        destination = sys.stderr if args.format == "json" else sys.stdout
        print(f"result written to {path}", file=destination)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import LiveSession, serve

    spec = _resolve_spec(args)
    session = LiveSession(spec)  # validates serve-ability (runner, health)
    serve(
        session,
        host=args.host,
        port=args.port,
        time_scale=args.time_scale,
        accelerated=args.accelerated,
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    axes = []
    for raw in args.axis:
        path, eq, values = raw.partition("=")
        if not eq or not values:
            raise ReproError(
                f"--axis expects path=v1,v2,..., got {raw!r} "
                "(e.g. --axis workload.load_fraction=0.4,0.6)"
            )
        axes.append(
            SweepAxis(
                path=path,
                values=tuple(_parse_value(v) for v in values.split(",")),
            )
        )
    sweep = Sweep(base=spec, axes=tuple(axes), mode=args.mode)
    results = sweep.run(max_workers=args.jobs)
    report = compare(results)
    print(report.render())
    failed = [r for r in results if r.error is not None]
    if failed:
        print(
            f"\n{len(failed)} of {len(results)} sweep point(s) failed:",
            file=sys.stderr,
        )
        for result in failed:
            print(f"  {result.spec.name}: {result.error}", file=sys.stderr)
    if args.output:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        for index, result in enumerate(results):
            result.save(out_dir / f"result-{index:03d}.json")
        (out_dir / "comparison.json").write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\n{len(results)} results written to {out_dir}/")
    return 1 if failed and len(failed) == len(results) else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = [RunResult.load(path) for path in args.results]
    report = compare(results)
    print(report.render())
    if args.windows:
        print()
        print(window_table(results, metric=args.window_metric))
    if args.output:
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\ncomparison written to {args.output}")
    return 0


def _cmd_learn_train(args: argparse.Namespace) -> int:
    from repro.learn import train

    spec = _resolve_learn_spec(args)
    progress = None
    if args.watch:

        def progress(message: str) -> None:
            print(message, file=sys.stderr)

    result = train(
        spec,
        checkpoint=args.checkpoint,
        resume=args.resume,
        progress=progress,
    )
    history_rows = [
        [
            row["episode"],
            row["seed"],
            f"{row['return']:.2f}",
            f"{row['mean_latency_ms']:.2f}"
            if row["mean_latency_ms"] == row["mean_latency_ms"]
            else "-",
        ]
        for row in result.history
    ]
    print(
        format_table(
            ["episode", "seed", "return", "mean_latency_ms"],
            history_rows,
            title=(
                f"{spec.name}: {spec.agent.name} on {spec.env.scenario} "
                f"[{spec.env.substrate}]"
            ),
        )
    )
    if result.evals:
        eval_rows = [
            [row["at_episode"], f"{row['mean_return']:.2f}", row["episodes"]]
            for row in result.evals
        ]
        print()
        print(
            format_table(
                ["after episode", "mean_return", "eval episodes"],
                eval_rows,
                title="Greedy evals",
            )
        )
    if result.checkpoint_path is not None:
        print(f"checkpoint written to {result.checkpoint_path}", file=sys.stderr)
    if args.output:
        Path(args.output).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"training result written to {args.output}", file=sys.stderr)
    return 0


def _cmd_learn_eval(args: argparse.Namespace) -> int:
    from repro.learn import evaluate_checkpoint

    report = evaluate_checkpoint(
        args.checkpoint, episodes=args.episodes, seed=args.seed
    )
    rows = [
        [
            row["episode"],
            row["seed"],
            f"{row['return']:.2f}",
            f"{row['mean_latency_ms']:.2f}"
            if "mean_latency_ms" in row
            else "-",
        ]
        for row in report["episodes"]
    ]
    print(
        format_table(
            ["episode", "seed", "return", "mean_latency_ms"],
            rows,
            title=(
                f"{report['agent']} checkpoint "
                f"(trained {report['trained_episodes']} episode(s))"
            ),
        )
    )
    print(f"\nmean_return: {report['mean_return']:.2f}")
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"evaluation written to {args.output}", file=sys.stderr)
    return 0


def _cmd_learn_compare(args: argparse.Namespace) -> int:
    from repro.learn import DEFAULT_CONTENDERS, EnvSpec, compare_learners

    env_overrides = _parse_overrides(args.set or [])
    env_document = {"scenario": args.scenario, "substrate": args.substrate}
    if env_overrides:
        env_document = _apply_doc_overrides(env_document, env_overrides)
    from repro.core.config import dataclass_from_dict

    env_spec = dataclass_from_dict(EnvSpec, env_document, path="env")
    contenders = (
        tuple(name.strip() for name in args.agents.split(",") if name.strip())
        if args.agents
        else DEFAULT_CONTENDERS
    )
    checkpoints = {}
    for raw in args.checkpoint or []:
        name, eq, path = raw.partition("=")
        if not eq or not name or not path:
            raise ReproError(
                f"--checkpoint expects agent=path, got {raw!r} "
                "(e.g. --checkpoint bandit=ck.json)"
            )
        checkpoints[name] = path
    comparison = compare_learners(
        env_spec,
        contenders=contenders,
        train_episodes=args.train_episodes,
        eval_episodes=args.eval_episodes,
        seed=args.seed,
        checkpoints=checkpoints,
        progress=lambda message: print(message, file=sys.stderr),
    )
    print(comparison.render())
    if args.output:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in comparison.results:
            result.save(out_dir / f"{result.spec.name}.json")
        (out_dir / "comparison.json").write_text(
            json.dumps(comparison.report.to_dict(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(
            f"\n{len(comparison.results)} results written to {out_dir}/",
            file=sys.stderr,
        )
    return 0


# -- wiring ---------------------------------------------------------------------


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="registered spec name or .json/.toml file")
    parser.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override a spec field by dotted path (repeatable)",
    )
    parser.add_argument(
        "--runner",
        choices=("fluid", "request", "fleet", "scenario"),
        help="execute on this substrate (same as --set runner=...)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Declarative KnapsackLB experiments: spec in, artifact out.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered specs").set_defaults(
        handler=_cmd_list
    )

    show = commands.add_parser("show", help="print a fully-resolved spec")
    _add_spec_arguments(show)
    show.set_defaults(handler=_cmd_show)

    validate = commands.add_parser(
        "validate",
        help="eagerly validate a spec (timeline included) without running it",
    )
    _add_spec_arguments(validate)
    validate.set_defaults(handler=_cmd_validate)

    run = commands.add_parser("run", help="execute a spec")
    _add_spec_arguments(run)
    run.add_argument("-o", "--output", help="write the RunResult JSON here")
    run.add_argument(
        "--watch",
        action="store_true",
        help="stream timeline events and per-window progress to stderr",
    )
    run.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="split a request-level run into N shards (statistically exact "
        "where possible, epoch-synchronized for stateful policies and "
        "timelines; falls back to serial with the reason surfaced "
        "otherwise)",
    )
    run.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="worker processes for a sharded run (default: min(shards, cores); "
        "1 runs every shard in-process)",
    )
    run.add_argument(
        "--sync-interval",
        type=float,
        metavar="S",
        help="epoch length in seconds for epoch-synchronized shards (same as "
        "--set sync_interval_s=S; smaller = less staleness, more barriers)",
    )
    run.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="stdout format: 'table' (human metrics table) or 'json' (the "
        "full RunResult artifact; progress/note lines go to stderr)",
    )
    run.set_defaults(handler=_cmd_run)

    serve = commands.add_parser(
        "serve",
        help="run a spec as a live daemon (REST + WebSocket control plane)",
    )
    _add_spec_arguments(serve)
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port; 0 picks an ephemeral port (printed on stdout)",
    )
    serve.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="simulated seconds per wall second (one window every "
        "window_s / X wall seconds; default 1.0 = real time)",
    )
    serve.add_argument(
        "--accelerated",
        action="store_true",
        help="drop wall-clock pacing and run windows back to back (CI and "
        "smoke tests)",
    )
    serve.set_defaults(handler=_cmd_serve)

    sweep = commands.add_parser("sweep", help="expand and run a parameter sweep")
    _add_spec_arguments(sweep)
    sweep.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="PATH=V1,V2,...",
        help="sweep axis (repeatable)",
    )
    sweep.add_argument(
        "--mode", choices=("grid", "zip"), default="grid", help="axis combination"
    )
    sweep.add_argument(
        "-j",
        "--jobs",
        "--workers",
        dest="jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (a warm pool reused across "
        "the whole expansion; 1 = run inline)",
    )
    sweep.add_argument("-o", "--output", help="directory for result artifacts")
    sweep.set_defaults(handler=_cmd_sweep)

    cmp_parser = commands.add_parser(
        "compare", help="compare saved result artifacts"
    )
    cmp_parser.add_argument("results", nargs="+", help="RunResult JSON files")
    cmp_parser.add_argument(
        "--windows",
        action="store_true",
        help="also print the window-by-window trajectory table",
    )
    cmp_parser.add_argument(
        "--window-metric",
        default="mean_latency_ms",
        metavar="METRIC",
        help="metric the --windows table shows (default: mean_latency_ms)",
    )
    cmp_parser.add_argument("-o", "--output", help="write the comparison JSON here")
    cmp_parser.set_defaults(handler=_cmd_compare)

    learn = commands.add_parser(
        "learn",
        help="train, evaluate, and compare weight-learning agents",
    )
    learn_commands = learn.add_subparsers(dest="learn_command", required=True)

    learn_train = learn_commands.add_parser(
        "train",
        help="run (or resume) a training loop from a learn spec",
    )
    learn_train.add_argument(
        "spec", help="registered learn spec name or .json/.toml file"
    )
    learn_train.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override a learn spec field by dotted path (repeatable, "
        "e.g. --set episodes=10 --set agent.epsilon=0.2)",
    )
    learn_train.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write the resumable training checkpoint here (cadence from "
        "checkpoint_every; always written at the end)",
    )
    learn_train.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint if it exists (bit-identical to an "
        "uninterrupted run)",
    )
    learn_train.add_argument(
        "--watch",
        action="store_true",
        help="stream per-episode progress to stderr",
    )
    learn_train.add_argument(
        "-o", "--output", help="write the training result JSON here"
    )
    learn_train.set_defaults(handler=_cmd_learn_train)

    learn_eval = learn_commands.add_parser(
        "eval",
        help="greedy-evaluate a saved checkpoint on the shared eval seeds",
    )
    learn_eval.add_argument(
        "--checkpoint", required=True, metavar="FILE", help="checkpoint to load"
    )
    learn_eval.add_argument(
        "--episodes",
        type=int,
        default=3,
        help="greedy eval episodes (default 3)",
    )
    learn_eval.add_argument(
        "--seed",
        type=int,
        default=None,
        help="eval seed stream base (default: the checkpoint's learn seed)",
    )
    learn_eval.add_argument(
        "-o", "--output", help="write the evaluation JSON here"
    )
    learn_eval.set_defaults(handler=_cmd_learn_eval)

    learn_compare = learn_commands.add_parser(
        "compare",
        help="run learned agents head-to-head vs the KnapsackLB controller "
        "and static baselines",
    )
    learn_compare.add_argument(
        "--scenario",
        default="dip_outage_recovery",
        help="episode shape: a learn env scenario or any registered spec "
        "with a timeline (default dip_outage_recovery)",
    )
    learn_compare.add_argument(
        "--substrate",
        choices=("fluid", "request"),
        default="fluid",
        help="simulation substrate the episodes run on (default fluid)",
    )
    learn_compare.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override an env spec field by dotted path (repeatable, "
        "e.g. --set num_dips=4 --set drop_penalty_ms=250)",
    )
    learn_compare.add_argument(
        "--agents",
        metavar="A,B,...",
        help="comma-separated contenders (agents and/or knapsack_ilp; "
        "default knapsack_ilp,uniform,random,bandit,reinforce)",
    )
    learn_compare.add_argument(
        "--train-episodes",
        type=int,
        default=20,
        help="inline training budget per trainable agent (default 20)",
    )
    learn_compare.add_argument(
        "--eval-episodes",
        type=int,
        default=3,
        help="greedy eval episodes per contender (default 3)",
    )
    learn_compare.add_argument("--seed", type=int, default=0, help="base seed")
    learn_compare.add_argument(
        "--checkpoint",
        action="append",
        metavar="AGENT=FILE",
        help="use a trained checkpoint for this agent instead of training "
        "inline (repeatable)",
    )
    learn_compare.add_argument(
        "-o", "--output", help="directory for result artifacts"
    )
    learn_compare.set_defaults(handler=_cmd_learn_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        return 0  # stdout consumer (e.g. `| head`) went away mid-print


if __name__ == "__main__":
    sys.exit(main())

"""The ``python -m repro`` command line.

Six verbs over the declarative API, all round-tripping through files:

* ``list`` — registered specs (scenario bridges + built-ins);
* ``show NAME|FILE`` — the fully-resolved spec as JSON;
* ``validate NAME|FILE`` — eager-validate a spec (timeline included) and
  exit non-zero with the dotted-path error, without running anything;
* ``run NAME|FILE [--set path=value ...] [--runner R] [--watch]
  [--shards N] [--workers N] [--sync-interval S] [-o out.json]`` —
  ``--shards`` fans a request-level run across the parallel layer
  (exact per-DIP decomposition where possible, epoch-synchronized
  sharding with ``--sync-interval`` staleness for stateful policies and
  timelines, serial fallback with the reason surfaced otherwise);
* ``sweep NAME|FILE --axis path=v1,v2 [...] [-j/--workers N] [-o dir]`` —
  the expansion runs through one warm worker pool;
* ``serve NAME|FILE [--host H] [--port P] [--time-scale X]
  [--accelerated]`` — run the spec as a live daemon: the control loop
  executes one window per ``window_s / time_scale`` wall seconds
  (``--accelerated`` runs windows back to back), REST endpoints expose
  per-VIP windowed stats and the applied/pending timeline, ``POST
  /events`` injects live mutations, ``WS /stream`` pushes each window,
  and ``GET /session`` exports a spec whose batch re-run reproduces the
  session bit-for-bit per seed (see :mod:`repro.service`);
* ``compare a.json b.json [--windows] [--window-metric M]`` — align saved
  result artifacts; ``--windows`` adds the window-by-window trajectory
  table.

``--set`` values are parsed as JSON first (so ``--set seed=3`` is an int
and ``--set policy.name=lc`` a string); dotted paths address nested spec
fields, and bare keys on scenario-backed specs address scenario
parameters.  ``run --watch`` streams progress lines (applied timeline
events, per-window headline metrics) to stderr while the run executes.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.analysis import format_table
from repro.api.registry import get_spec, list_specs
from repro.api.result import RunResult
from repro.api.runners import execute
from repro.api.spec import ExperimentSpec
from repro.api.sweep import Sweep, SweepAxis, compare, window_table
from repro.api.timeline import PrintingObserver
from repro.exceptions import ReproError


def _parse_value(text: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_overrides(pairs: Sequence[str]) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    for pair in pairs:
        path, eq, value = pair.partition("=")
        if not eq or not path:
            raise ReproError(
                f"--set expects path=value, got {pair!r} "
                "(e.g. --set workload.load_fraction=0.5)"
            )
        overrides[path] = _parse_value(value)
    return overrides


def _resolve_spec(args: argparse.Namespace) -> ExperimentSpec:
    spec = get_spec(args.spec)
    overrides = _parse_overrides(args.set or [])
    if getattr(args, "runner", None):
        overrides["runner"] = args.runner
    if getattr(args, "sync_interval", None) is not None:
        overrides["sync_interval_s"] = args.sync_interval
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


def _metrics_table(result: RunResult) -> str:
    rows = [[key, value] for key, value in sorted(result.metrics.items())]
    return format_table(
        ["metric", "value"],
        rows,
        title=f"{result.spec.name} [{result.runner}] seed={result.seed}",
    )


# -- verbs ----------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [[name, summary] for name, summary in list_specs()]
    print(format_table(["spec", "summary"], rows, title="Registered specs"))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(_resolve_spec(args).to_json())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)  # raises ReproError with the dotted path
    timeline = spec.timeline
    shape = (
        "no timeline"
        if timeline.empty
        else (
            f"{len(timeline.events)} timeline event(s) over "
            f"{timeline.duration_s():g}s in {timeline.window_s:g}s windows"
        )
    )
    print(f"spec {spec.name!r} is valid: runner={spec.runner}, {shape}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    observers = (PrintingObserver(),) if args.watch else ()
    sharding = args.shards is not None and args.shards > 1
    if args.workers and not sharding:
        print(
            "warning: --workers only applies to sharded runs; "
            "pass --shards N to fan out (running serially)",
            file=sys.stderr,
        )
    # Surface the planner's serial-fallback reason: it is emitted on the
    # "repro.parallel" logger, which has no handler in a bare CLI process.
    handler: logging.Handler | None = None
    parallel_logger = logging.getLogger("repro.parallel")
    if sharding and not parallel_logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("note: %(message)s"))
        parallel_logger.addHandler(handler)
        if parallel_logger.level > logging.INFO or parallel_logger.level == 0:
            parallel_logger.setLevel(logging.INFO)
    try:
        result = execute(
            spec, observers=observers, shards=args.shards, workers=args.workers
        )
    finally:
        if handler is not None:
            parallel_logger.removeHandler(handler)
    if sharding or args.watch:
        prov = result.provenance
        if prov.fallback_reason is not None:
            note = f"serial fallback: {prov.fallback_reason}"
        elif prov.shard_mode == "epoch":
            note = (
                f"epoch-sharded run: shards={prov.shards}, "
                f"workers={prov.workers}, "
                f"sync_interval_s={prov.sync_interval_s:g}"
            )
        elif prov.shard_mode == "exact":
            note = (
                f"exact-sharded run: shards={prov.shards}, "
                f"workers={prov.workers}"
            )
        else:
            note = "serial run"
        print(f"note: {note}", file=sys.stderr)
    if args.format == "json":
        # Machine-readable mode: the artifact alone on stdout (watch and
        # note lines already go to stderr), so `repro run --format json |
        # jq` composes cleanly.
        print(result.to_json())
    else:
        print(_metrics_table(result))
    if args.output:
        path = result.save(args.output)
        destination = sys.stderr if args.format == "json" else sys.stdout
        print(f"result written to {path}", file=destination)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import LiveSession, serve

    spec = _resolve_spec(args)
    session = LiveSession(spec)  # validates serve-ability (runner, health)
    serve(
        session,
        host=args.host,
        port=args.port,
        time_scale=args.time_scale,
        accelerated=args.accelerated,
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    axes = []
    for raw in args.axis:
        path, eq, values = raw.partition("=")
        if not eq or not values:
            raise ReproError(
                f"--axis expects path=v1,v2,..., got {raw!r} "
                "(e.g. --axis workload.load_fraction=0.4,0.6)"
            )
        axes.append(
            SweepAxis(
                path=path,
                values=tuple(_parse_value(v) for v in values.split(",")),
            )
        )
    sweep = Sweep(base=spec, axes=tuple(axes), mode=args.mode)
    results = sweep.run(max_workers=args.jobs)
    report = compare(results)
    print(report.render())
    failed = [r for r in results if r.error is not None]
    if failed:
        print(
            f"\n{len(failed)} of {len(results)} sweep point(s) failed:",
            file=sys.stderr,
        )
        for result in failed:
            print(f"  {result.spec.name}: {result.error}", file=sys.stderr)
    if args.output:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        for index, result in enumerate(results):
            result.save(out_dir / f"result-{index:03d}.json")
        (out_dir / "comparison.json").write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\n{len(results)} results written to {out_dir}/")
    return 1 if failed and len(failed) == len(results) else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = [RunResult.load(path) for path in args.results]
    report = compare(results)
    print(report.render())
    if args.windows:
        print()
        print(window_table(results, metric=args.window_metric))
    if args.output:
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\ncomparison written to {args.output}")
    return 0


# -- wiring ---------------------------------------------------------------------


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="registered spec name or .json/.toml file")
    parser.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override a spec field by dotted path (repeatable)",
    )
    parser.add_argument(
        "--runner",
        choices=("fluid", "request", "fleet", "scenario"),
        help="execute on this substrate (same as --set runner=...)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Declarative KnapsackLB experiments: spec in, artifact out.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered specs").set_defaults(
        handler=_cmd_list
    )

    show = commands.add_parser("show", help="print a fully-resolved spec")
    _add_spec_arguments(show)
    show.set_defaults(handler=_cmd_show)

    validate = commands.add_parser(
        "validate",
        help="eagerly validate a spec (timeline included) without running it",
    )
    _add_spec_arguments(validate)
    validate.set_defaults(handler=_cmd_validate)

    run = commands.add_parser("run", help="execute a spec")
    _add_spec_arguments(run)
    run.add_argument("-o", "--output", help="write the RunResult JSON here")
    run.add_argument(
        "--watch",
        action="store_true",
        help="stream timeline events and per-window progress to stderr",
    )
    run.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="split a request-level run into N shards (statistically exact "
        "where possible, epoch-synchronized for stateful policies and "
        "timelines; falls back to serial with the reason surfaced "
        "otherwise)",
    )
    run.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="worker processes for a sharded run (default: min(shards, cores); "
        "1 runs every shard in-process)",
    )
    run.add_argument(
        "--sync-interval",
        type=float,
        metavar="S",
        help="epoch length in seconds for epoch-synchronized shards (same as "
        "--set sync_interval_s=S; smaller = less staleness, more barriers)",
    )
    run.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="stdout format: 'table' (human metrics table) or 'json' (the "
        "full RunResult artifact; progress/note lines go to stderr)",
    )
    run.set_defaults(handler=_cmd_run)

    serve = commands.add_parser(
        "serve",
        help="run a spec as a live daemon (REST + WebSocket control plane)",
    )
    _add_spec_arguments(serve)
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port; 0 picks an ephemeral port (printed on stdout)",
    )
    serve.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="simulated seconds per wall second (one window every "
        "window_s / X wall seconds; default 1.0 = real time)",
    )
    serve.add_argument(
        "--accelerated",
        action="store_true",
        help="drop wall-clock pacing and run windows back to back (CI and "
        "smoke tests)",
    )
    serve.set_defaults(handler=_cmd_serve)

    sweep = commands.add_parser("sweep", help="expand and run a parameter sweep")
    _add_spec_arguments(sweep)
    sweep.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="PATH=V1,V2,...",
        help="sweep axis (repeatable)",
    )
    sweep.add_argument(
        "--mode", choices=("grid", "zip"), default="grid", help="axis combination"
    )
    sweep.add_argument(
        "-j",
        "--jobs",
        "--workers",
        dest="jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (a warm pool reused across "
        "the whole expansion; 1 = run inline)",
    )
    sweep.add_argument("-o", "--output", help="directory for result artifacts")
    sweep.set_defaults(handler=_cmd_sweep)

    cmp_parser = commands.add_parser(
        "compare", help="compare saved result artifacts"
    )
    cmp_parser.add_argument("results", nargs="+", help="RunResult JSON files")
    cmp_parser.add_argument(
        "--windows",
        action="store_true",
        help="also print the window-by-window trajectory table",
    )
    cmp_parser.add_argument(
        "--window-metric",
        default="mean_latency_ms",
        metavar="METRIC",
        help="metric the --windows table shows (default: mean_latency_ms)",
    )
    cmp_parser.add_argument("-o", "--output", help="write the comparison JSON here")
    cmp_parser.set_defaults(handler=_cmd_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        return 0  # stdout consumer (e.g. `| head`) went away mid-print


if __name__ == "__main__":
    sys.exit(main())

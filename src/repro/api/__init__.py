"""`repro.api` — the declarative front door of the library.

One config object in, one result artifact out::

    from repro import api

    spec = api.ExperimentSpec(
        name="demo",
        runner="fluid",                      # or "request" / "fleet"
        pool=api.PoolSpec(kind="uniform", num_dips=8),
        workload=api.WorkloadSpec(load_fraction=0.6),
        seed=17,
    )
    result = api.run(spec)
    print(result.metrics["mean_latency_ms"])
    result.save("out.json")                  # reproducible artifact

Specs load from plain dicts or JSON/TOML files (``ExperimentSpec.from_file``),
execute on any of the three substrates by flipping ``spec.runner``, sweep
over parameter axes with process parallelism (:class:`Sweep`), and compare
across runs (:func:`compare`).  The ``python -m repro`` CLI exposes the
same verbs (``list`` / ``show`` / ``run`` / ``sweep`` / ``compare``) from
the shell.
"""

from repro.api.registry import get_spec, list_specs, register_spec
from repro.api.result import Provenance, RunResult, RunWindow
from repro.api.runners import (
    FleetRunner,
    FluidRunner,
    RequestRunner,
    Runner,
    ScenarioRunner,
    build_cluster,
    execute,
    runner_for,
)
from repro.api.spec import (
    EVENT_KINDS,
    RUNNER_KINDS,
    ControllerSpec,
    EventSpec,
    ExperimentSpec,
    FleetSpec,
    PolicySpec,
    PoolSpec,
    TimelineSpec,
    VmSpec,
    WorkloadSpec,
)
from repro.api.sweep import ComparisonReport, Sweep, SweepAxis, compare
from repro.api.timeline import (
    BaseObserver,
    Observer,
    ObserverSet,
    PrintingObserver,
    WindowedMetricsObserver,
)

#: The canonical entry point: run a spec on the substrate it names.
run = execute

__all__ = [
    "EVENT_KINDS",
    "RUNNER_KINDS",
    "ControllerSpec",
    "EventSpec",
    "ExperimentSpec",
    "FleetSpec",
    "PolicySpec",
    "PoolSpec",
    "TimelineSpec",
    "VmSpec",
    "WorkloadSpec",
    "Provenance",
    "RunResult",
    "RunWindow",
    "BaseObserver",
    "Observer",
    "ObserverSet",
    "PrintingObserver",
    "WindowedMetricsObserver",
    "Runner",
    "FluidRunner",
    "RequestRunner",
    "FleetRunner",
    "ScenarioRunner",
    "build_cluster",
    "execute",
    "run",
    "runner_for",
    "ComparisonReport",
    "Sweep",
    "SweepAxis",
    "compare",
    "get_spec",
    "list_specs",
    "register_spec",
]

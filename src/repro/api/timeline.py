"""The timeline application layer and run-observation hooks.

This module makes *time* a first-class citizen of the declarative API: a
:class:`~repro.api.spec.TimelineSpec` declares what happens mid-run (DIP
failures and recoveries, capacity squeezes, traffic surges, VIPs joining or
leaving a fleet) and this layer executes those events identically on all
three substrates:

* **fluid / fleet** — :func:`run_fluid_timeline` / :func:`run_fleet_timeline`
  drive the analytic substrates window by window, applying due events
  *between* fixed-point rounds at their exact declared times (windows are
  split into sub-segments at event boundaries) and running one controller
  tick per window;
* **request** — :func:`schedule_request_timeline` injects every event into
  the discrete-event engine via ``schedule_cancellable``, so events fire at
  their exact simulated times interleaved with arrivals and completions;
  arrival surges rescale the streaming Poisson stream without breaking its
  sorted-order invariant (see :meth:`RequestCluster.scale_arrivals`).

Runs become observable while they execute through the :class:`Observer`
protocol: ``on_event`` fires as each timeline event is applied, ``on_round``
after every telemetry window with headline metrics (the CLI's ``--watch``
progress lines), and ``on_window`` with the completed
:class:`~repro.api.result.RunWindow` row that also lands in the result's
time-series.
"""

from __future__ import annotations

import logging
import math
import sys
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Protocol, TextIO

from repro.api.result import RunWindow
from repro.api.spec import (
    FLEET_ONLY_EVENT_KINDS,
    EventSpec,
    HealthCheckSpec,
    TimelineSpec,
)
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import KnapsackLBController
    from repro.core.fleet_controller import FleetController
    from repro.sim.cluster import RequestCluster
    from repro.sim.engine import EventHandle
    from repro.sim.fleet import Fleet
    from repro.sim.fluid import FluidCluster
    from repro.sim.trace import MetricsCollector

_EPS = 1e-9

_LOG = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# observers
# ---------------------------------------------------------------------------


class Observer(Protocol):
    """Streaming run telemetry: implement any subset of these hooks."""

    def on_event(self, time_s: float, event: EventSpec) -> None:
        """A timeline event was just applied at simulated ``time_s``."""
        ...

    def on_round(self, time_s: float, metrics: Mapping[str, float]) -> None:
        """A telemetry window ended; ``metrics`` are its headline numbers."""
        ...

    def on_window(self, window: RunWindow) -> None:
        """The completed time-series row for the window that just ended."""
        ...


class BaseObserver:
    """No-op base so observers only override the hooks they care about."""

    def on_event(self, time_s: float, event: EventSpec) -> None:
        pass

    def on_round(self, time_s: float, metrics: Mapping[str, float]) -> None:
        pass

    def on_window(self, window: RunWindow) -> None:
        pass


class ObserverSet(BaseObserver):
    """Fan one stream of notifications out to several observers.

    Observers are *isolated*: a hook that raises is logged (with its
    traceback, on this module's logger) and the offending observer is
    dropped from the set, so a crashing telemetry consumer can never abort
    the run — or the live daemon's control loop — it is watching.
    """

    def __init__(self, observers: Iterable[Observer] = ()) -> None:
        self.observers: tuple[Observer, ...] = tuple(observers)

    def _dispatch(self, hook: str, *args: object) -> None:
        dropped: list[Observer] = []
        for observer in self.observers:
            try:
                getattr(observer, hook)(*args)
            except Exception:
                _LOG.exception(
                    "observer %r raised in %s; dropping it from the set",
                    observer,
                    hook,
                )
                dropped.append(observer)
        if dropped:
            self.observers = tuple(
                observer
                for observer in self.observers
                if all(observer is not gone for gone in dropped)
            )

    def on_event(self, time_s: float, event: EventSpec) -> None:
        self._dispatch("on_event", time_s, event)

    def on_round(self, time_s: float, metrics: Mapping[str, float]) -> None:
        self._dispatch("on_round", time_s, metrics)

    def on_window(self, window: RunWindow) -> None:
        self._dispatch("on_window", window)


class WindowedMetricsObserver(BaseObserver):
    """The built-in telemetry recorder: collects the run's window rows.

    Every runner attaches one of these; its ``windows`` become the
    :attr:`RunResult.windows` time-series, so results carry the trajectory
    (per-window latency, share, drops, applied events), not just end-of-run
    aggregates.

    ``maxlen`` turns both collections into ring buffers that keep only the
    newest entries — the shape a long-running daemon needs, where the run
    has no natural end and an unbounded list would leak.
    """

    def __init__(self, maxlen: int | None = None) -> None:
        self.windows: "deque[RunWindow] | list[RunWindow]"
        self.applied_events: (
            "deque[tuple[float, EventSpec]] | list[tuple[float, EventSpec]]"
        )
        if maxlen is None:
            self.windows = []
            self.applied_events = []
        else:
            self.windows = deque(maxlen=maxlen)
            self.applied_events = deque(maxlen=maxlen)

    def on_event(self, time_s: float, event: EventSpec) -> None:
        self.applied_events.append((time_s, event))

    def on_window(self, window: RunWindow) -> None:
        self.windows.append(window)


class PrintingObserver(BaseObserver):
    """Human-readable progress lines (the CLI's ``run --watch`` output)."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def on_event(self, time_s: float, event: EventSpec) -> None:
        print(f"[t={time_s:7.1f}s] event   {event.label()}", file=self._stream)

    def on_round(self, time_s: float, metrics: Mapping[str, float]) -> None:
        rendered = "  ".join(
            f"{key}={value:.4g}" for key, value in sorted(metrics.items())
        )
        print(f"[t={time_s:7.1f}s] window  {rendered}", file=self._stream)


# ---------------------------------------------------------------------------
# upfront validation (fail before simulating, with names)
# ---------------------------------------------------------------------------


def check_timeline_supported(
    timeline: TimelineSpec,
    runner_kind: str,
    *,
    dips: Iterable[str],
    vips: Iterable[str] = (),
    controller_enabled: bool = True,
) -> None:
    """Reject events the target substrate cannot execute, before running.

    Names the offending event and the valid choices, mirroring the spec
    layer's eager-validation style: a single-VIP substrate rejects
    ``vip_onboard``/``vip_offboard``, and every dip/vip reference must name
    a member of the built system.
    """
    dip_set = set(dips)
    vip_set = set(vips)
    for event in timeline.events:
        if event.kind in FLEET_ONLY_EVENT_KINDS and runner_kind != "fleet":
            raise ConfigurationError(
                f"timeline event [{event.label()}] needs the fleet runner; "
                f"this spec runs on {runner_kind!r}"
            )
        if event.kind == "vip_onboard" and not controller_enabled:
            raise ConfigurationError(
                f"timeline event [{event.label()}] needs controller.enabled "
                "= true (onboarding attaches a KnapsackLB controller)"
            )
        if event.dip is not None and event.dip not in dip_set:
            known = ", ".join(sorted(dip_set))
            raise ConfigurationError(
                f"timeline event [{event.label()}] names unknown DIP "
                f"{event.dip!r}; pool DIPs: {known}"
            )
        if event.vip is not None and runner_kind == "fleet" and event.vip not in vip_set:
            known = ", ".join(sorted(vip_set))
            raise ConfigurationError(
                f"timeline event [{event.label()}] names unknown VIP "
                f"{event.vip!r}; fleet VIPs: {known}"
            )
        if event.kind == "arrival_scale" and event.vip is not None and runner_kind != "fleet":
            raise ConfigurationError(
                f"timeline event [{event.label()}] scopes arrival_scale to a "
                "VIP, which needs the fleet runner"
            )


# ---------------------------------------------------------------------------
# the shared window/segment loop (fluid + fleet)
# ---------------------------------------------------------------------------


#: one applied mid-run action: ``(time_s, event-or-None, thunk-or-None)``.
#: Plain timeline events carry a ``None`` thunk (dispatched through
#: ``apply_event``); health-mode events carry their own thunk; synthetic
#: actions (probe detections, drain completions) carry no event and are
#: invisible to observers.
_Action = tuple[float, "EventSpec | None", "Callable[[], None] | None"]


class TimelineStepper:
    """Resumable window-by-window execution of a timed phase.

    This is the windowing engine both execution modes share: the batch
    runners construct one and drive it to completion (:meth:`run` — the
    old ``_run_windows`` loop), while the live ``repro serve`` daemon calls
    :meth:`step` once per wall-clock-scaled tick and :meth:`inject`\\ s
    operator mutations between windows.  Because both modes run *this*
    class over the same action schedule, a live session replayed in batch
    from its exported spec reproduces the live windows bit-for-bit.

    Events apply *between* fixed-point rounds at their exact declared
    times: each window is split into sub-segments at event boundaries, so
    an event at t=12.5s with 5s windows fires after exactly 12.5 simulated
    seconds on the fluid substrates — the same instant the request engine
    fires it.  One controller tick runs per window (after the window's
    time has fully elapsed), then the window row snapshots the substrate.

    ``actions`` (health mode) replaces the event list with a pre-computed
    action schedule that interleaves declared events with probe-detection
    flips and drain completions at *their* exact times.
    """

    def __init__(
        self,
        timeline: TimelineSpec,
        observer: Observer,
        *,
        advance: Callable[[float], None],
        tick: Callable[[], dict[str, float]],
        snapshot: Callable[
            [],
            "tuple[dict[str, float], dict[str, float]]"
            " | tuple[dict[str, float], dict[str, float], dict[str, dict[str, float]]]",
        ],
        apply_event: Callable[[EventSpec], None],
        actions: "list[_Action] | None" = None,
        set_weights: "Callable[[str | None, Mapping[str, float]], None] | None" = None,
        weight_scope: "Mapping[str, tuple[str, ...]] | None" = None,
    ) -> None:
        if actions is None:
            actions = [
                (event.time_s, event, None)
                for event in timeline.ordered_events()
            ]
        self._actions: "list[_Action]" = list(actions)
        self._pointer = 0
        self._observer = observer
        self._advance = advance
        self._tick = tick
        self._snapshot = snapshot
        self._apply_event = apply_event
        self._set_weights = set_weights
        self._weight_scope = dict(weight_scope or {})
        #: queued weight overrides: ``(vip-or-None, weights, label)``.
        self._pending_weights: "list[tuple[str | None, dict[str, float], str]]" = []
        #: applied overrides ``(time_s, vip-or-None, weights)`` — the
        #: provenance record a journal or checkpoint can persist.
        self.weight_overrides: "list[tuple[float, str | None, dict[str, float]]]" = []
        self.window_s = timeline.window_s
        self.horizon_s = timeline.duration_s()
        #: start of the next window (== simulated time already executed).
        self.clock = 0.0
        self.windows: list[RunWindow] = []

    @property
    def done(self) -> bool:
        """The configured horizon has been fully executed."""
        return self.clock >= self.horizon_s - _EPS

    def extend_horizon(self, horizon_s: float) -> None:
        """Grow the timed phase (the daemon's open-ended control loop)."""
        self.horizon_s = max(self.horizon_s, horizon_s)

    def pending_events(self) -> tuple[tuple[float, EventSpec], ...]:
        """Declared-or-injected events that have not been applied yet."""
        return tuple(
            (time_s, event)
            for time_s, event, _ in self._actions[self._pointer :]
            if event is not None
        )

    def inject(self, event: EventSpec, *, time_s: float | None = None) -> float:
        """Splice a live mutation into the schedule at a future instant.

        ``time_s`` defaults to the event's own declared time; either way it
        must not precede :attr:`clock` (the start of the next window) —
        already-executed simulated time cannot be mutated.  Insertion keeps
        the schedule sorted and lands *after* any equal-time entry, matching
        the stable tie-break a batch replay applies to events appended to
        the spec's tuple.  Returns the effective application time.
        """
        when = event.time_s if time_s is None else time_s
        if when < self.clock - _EPS:
            raise ConfigurationError(
                f"cannot inject event [{event.label()}] at t={when:g}s: the "
                f"run has already executed through t={self.clock:g}s"
            )
        index = len(self._actions)
        while index > self._pointer and self._actions[index - 1][0] > when:
            index -= 1
        self._actions.insert(index, (when, event, None))
        return when

    def set_weights(
        self, vip: "str | None", weights: "Mapping[str, float]"
    ) -> str:
        """Queue a weight override; it applies at the next window boundary.

        Validation happens here — at submission, the way ``POST /events``
        validates live mutations — so a bad body fails fast with the spec
        layer's error style instead of blowing up mid-window: the substrate
        must have been built with a weight hook, ``vip`` must name a VIP of
        the scope (or be ``None`` on a single-VIP substrate), every key
        must name one of that VIP's DIPs, and the weights must be finite,
        non-negative and not all zero.  Returns the label recorded in the
        next window's ``events`` (the batch-artifact provenance trail;
        applied overrides also accumulate in :attr:`weight_overrides`).
        """
        if self._set_weights is None:
            raise ConfigurationError(
                "this substrate does not accept weight overrides (no "
                "set_weights hook; enable it via the fluid/fleet steppers)"
            )
        if not isinstance(weights, Mapping) or not weights:
            raise ConfigurationError(
                "weights must be a non-empty {dip: weight} mapping"
            )
        if vip is None:
            if len(self._weight_scope) != 1:
                known = ", ".join(sorted(self._weight_scope))
                raise ConfigurationError(
                    f"set_weights needs an explicit vip on a multi-VIP "
                    f"substrate; VIPs: {known}"
                )
            scope_vip = next(iter(self._weight_scope))
        else:
            vip = str(vip)
            if vip not in self._weight_scope:
                known = ", ".join(sorted(self._weight_scope))
                raise ConfigurationError(
                    f"set_weights names unknown VIP {vip!r}; VIPs: {known}"
                )
            scope_vip = vip
        dip_set = set(self._weight_scope[scope_vip])
        cleaned: dict[str, float] = {}
        for dip, value in weights.items():
            name = str(dip)
            if name not in dip_set:
                known = ", ".join(sorted(dip_set))
                raise ConfigurationError(
                    f"set_weights names unknown DIP {name!r} for VIP "
                    f"{scope_vip!r}; DIPs: {known}"
                )
            try:
                weight = float(value)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"weight for DIP {name!r} must be a number"
                ) from None
            if not math.isfinite(weight) or weight < 0:
                raise ConfigurationError(
                    f"weight for DIP {name!r} must be finite and >= 0"
                )
            cleaned[name] = weight
        if sum(cleaned.values()) <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        label = (
            f"t={self.clock:g}s set_weights {scope_vip} "
            f"({len(cleaned)} dips)"
        )
        self._pending_weights.append((vip, cleaned, label))
        return label

    def step(self) -> "RunWindow | None":
        """Execute exactly one window; ``None`` once the horizon is done."""
        if self.done:
            return None
        start = self.clock
        end = min(start + self.window_s, self.horizon_s)
        applied: list[str] = []
        # Queued weight overrides land exactly at the window boundary,
        # before any advancing — the same instant a controller tick's
        # programming from the previous window takes effect.
        if self._pending_weights:
            pending, self._pending_weights = self._pending_weights, []
            for vip, weights, label in pending:
                self._set_weights(vip, weights)
                self.weight_overrides.append((start, vip, dict(weights)))
                applied.append(label)
        cursor = start
        while cursor < end - _EPS:
            while (
                self._pointer < len(self._actions)
                and self._actions[self._pointer][0] <= cursor + _EPS
            ):
                _, event, thunk = self._actions[self._pointer]
                self._pointer += 1
                if thunk is not None:
                    thunk()
                if event is not None:
                    if thunk is None:
                        self._apply_event(event)
                    self._observer.on_event(cursor, event)
                    applied.append(event.label())
            boundary = (
                min(end, self._actions[self._pointer][0])
                if self._pointer < len(self._actions)
                else end
            )
            self._advance(boundary - cursor)
            cursor = boundary
        snapped = self._snapshot()
        metrics, share = snapped[0], snapped[1]
        dip_metrics = snapped[2] if len(snapped) > 2 else {}
        metrics.update(self._tick())
        window = RunWindow(
            start_s=start,
            end_s=end,
            metrics=metrics,
            dip_share=share,
            events=tuple(applied),
            dip_metrics=dip_metrics,
        )
        self._observer.on_window(window)
        self._observer.on_round(end, metrics)
        self.windows.append(window)
        self.clock = end
        return window

    def run(self) -> tuple[RunWindow, ...]:
        """Drive the remaining windows to the horizon (the batch path)."""
        while self.step() is not None:
            pass
        return tuple(self.windows)


# ---------------------------------------------------------------------------
# probe-based detection on the analytic substrates
# ---------------------------------------------------------------------------


def _health_timeline_actions(
    timeline: TimelineSpec,
    health: "HealthCheckSpec",
    *,
    seed: int,
    dip_index: Mapping[str, int],
    blackholed: set,
    fail: Callable[[str], None],
    recover: Callable[[str], None],
) -> "list[_Action]":
    """Compile a timeline into probe-aware actions for fluid/fleet.

    Runs the *same* probe state machine as the request engine's
    :meth:`RequestCluster._probe`, analytically, over each DIP's seeded
    probe grid: a ``dip_fail`` only reaches the LB (``fail(dip)``) at its
    probe-detected instant; until then the DIP is added to ``blackholed``
    — it keeps receiving its traffic share and that traffic is lost, which
    the substrate's snapshot reports as window drop fraction.  Graceful
    drains (``drain_s > 0``) are operator-initiated: the LB stops routing
    at the event time (no blackhole, no detection delay) and probes cannot
    resurrect the DIP until its ``dip_recover``.
    """
    horizon = timeline.duration_s()
    actions: "list[_Action]" = []
    by_dip: dict[str, list[EventSpec]] = {}
    for event in timeline.ordered_events():
        if event.kind in ("dip_fail", "dip_recover"):
            by_dip.setdefault(event.dip, []).append(event)
        else:
            actions.append((event.time_s, event, None))

    for dip, dip_events in by_dip.items():
        # 1. Pair fails with recovers (spec validation guarantees the
        #    per-DIP alternation) into server-down and admin-drain spans.
        server_down: list[tuple[float, float]] = []
        admin_down: list[tuple[float, float]] = []
        lb_down_at: list[float] = []  # drain starts set lb_down directly
        open_fail: EventSpec | None = None
        for event in dip_events:
            if event.kind == "dip_fail":
                open_fail = event
            else:
                _close_fail_span(
                    open_fail, event.time_s, server_down, admin_down, lb_down_at
                )
                open_fail = None
        if open_fail is not None:
            _close_fail_span(
                open_fail, horizon, server_down, admin_down, lb_down_at
            )

        # 2. Walk the probe grid with the request engine's state machine.
        flips: list[tuple[float, bool]] = []  # (time, healthy)
        fails = oks = 0
        lb_down = False
        admin_pointer = 0
        t = health.probe_phase_s(seed, dip_index[dip])
        while t < horizon:
            while admin_pointer < len(lb_down_at) and lb_down_at[admin_pointer] <= t:
                lb_down = True
                admin_pointer += 1
            if _in_spans(t, server_down):
                fails += 1
                oks = 0
                if fails == health.unhealthy_threshold and not lb_down:
                    lb_down = True
                    flips.append((t + health.probe_timeout_s, False))
            else:
                oks += 1
                fails = 0
                if (
                    lb_down
                    and oks >= health.healthy_threshold
                    and not _in_spans(t, admin_down)
                ):
                    lb_down = False
                    oks = 0
                    flips.append((t, True))
            t += health.probe_interval_s

        # 3. Emit actions; runtime lb-routing state decides blackholing.
        routing = {"up": True}

        def on_abrupt_fail(dip: str = dip, routing: dict = routing) -> None:
            if routing["up"]:
                blackholed.add(dip)

        def on_drain_fail(dip: str = dip, routing: dict = routing) -> None:
            routing["up"] = False
            fail(dip)

        def on_recover_event(dip: str = dip, routing: dict = routing) -> None:
            if routing["up"]:
                blackholed.discard(dip)
            # else: the LB flips it back up at its probe-detected instant.

        def on_flip(
            healthy: bool, dip: str = dip, routing: dict = routing
        ) -> Callable[[], None]:
            def run() -> None:
                routing["up"] = healthy
                if healthy:
                    recover(dip)
                else:
                    blackholed.discard(dip)
                    fail(dip)

            return run

        for event in dip_events:
            if event.kind == "dip_fail":
                thunk = on_drain_fail if event.drain_s > 0 else on_abrupt_fail
            else:
                thunk = on_recover_event
            actions.append((event.time_s, event, thunk))
        for flip_time, healthy in flips:
            actions.append((flip_time, None, on_flip(healthy)))

    actions.sort(key=lambda action: action[0])
    return actions


def _close_fail_span(
    open_fail: "EventSpec | None",
    end: float,
    server_down: list,
    admin_down: list,
    lb_down_at: list,
) -> None:
    """Record the spans of one dip_fail..dip_recover pair."""
    if open_fail is None:
        return
    if open_fail.drain_s > 0:
        lb_down_at.append(open_fail.time_s)
        admin_down.append((open_fail.time_s, end))
        server_dies = open_fail.time_s + open_fail.drain_s
        if server_dies < end:  # recover before the drain ends cancels it
            server_down.append((server_dies, end))
    else:
        server_down.append((open_fail.time_s, end))


def _in_spans(t: float, spans: list) -> bool:
    return any(start <= t < end for start, end in spans)


def _split_drained_offboards(
    actions: "list[_Action]",
    *,
    drain: Callable[[str], None],
    apply_event: Callable[[EventSpec], None],
) -> "list[_Action]":
    """Split each drained ``vip_offboard`` into stop-arrivals + removal."""
    out: "list[_Action]" = []
    split = False
    for time_s, event, thunk in actions:
        if (
            event is not None
            and event.kind == "vip_offboard"
            and event.drain_s > 0
            and thunk is None
        ):
            out.append((time_s, event, lambda vip=event.vip: drain(vip)))
            out.append(
                (time_s + event.drain_s, None, lambda e=event: apply_event(e))
            )
            split = True
        else:
            out.append((time_s, event, thunk))
    if split:
        out.sort(key=lambda action: action[0])
    return out


def _share(rates: Mapping[str, float]) -> dict[str, float]:
    total = sum(rates.values())
    if total <= 0:
        return {}
    return {dip: rate / total for dip, rate in rates.items() if rate > 0}


def _dip_rows(state: object) -> dict[str, dict[str, float]]:
    """Per-DIP window columns from an analytic substrate snapshot.

    Works over :class:`~repro.sim.fluid.FluidClusterState` and
    :class:`~repro.sim.fleet.FleetState` (only the rate dict's name
    differs); ``in_system`` is the Little's-law population ``rate ×
    latency``, which matches the request engine's per-window Σlatency /
    duration estimate in meaning.  Failed DIPs report infinite latency —
    their rows omit the latency column and carry zero population so a fold
    over the columns stays finite.
    """
    rates: Mapping[str, float] = getattr(
        state, "rates_rps", None
    ) or getattr(state, "total_rates_rps")
    utilization: Mapping[str, float] = state.utilization
    latency: Mapping[str, float] = state.mean_latency_ms
    rows: dict[str, dict[str, float]] = {}
    for dip, rate in rates.items():
        lat = latency[dip]
        row = {
            "rate_rps": rate,
            "utilization": utilization[dip],
            "in_system": 0.0,
        }
        # Failed DIPs report infinite latency; the key is *omitted* (rather
        # than NaN) so window rows stay JSON-round-trippable by equality.
        if math.isfinite(lat):
            row["mean_latency_ms"] = lat
            row["in_system"] = rate * lat / 1000.0
        rows[dip] = row
    return rows


def _live_mean_latency_ms(
    rates: Mapping[str, float],
    latency: Mapping[str, float],
    exclude: "set | frozenset" = frozenset(),
) -> float:
    """Rate-weighted mean over DIPs actually carrying traffic.

    Failed DIPs report infinite latency at zero rate; naively summing
    ``rate * latency`` would turn that into ``0 * inf = nan``, so the mean
    is taken over live (positive-rate, finite-latency) DIPs only.
    ``exclude`` drops blackholed DIPs (failed but not yet probe-detected,
    so still carrying a nominal share): their requests are lost, not
    served, and must not contribute a latency.
    """
    live = [
        (rate, latency[dip])
        for dip, rate in rates.items()
        if rate > 0 and dip not in exclude and math.isfinite(latency[dip])
    ]
    total = sum(rate for rate, _ in live)
    if total <= 0:
        return float("nan")
    return sum(rate * lat for rate, lat in live) / total


class _BlackholeMeter:
    """Time-integrates traffic routed at undetected-dead DIPs.

    Detection usually lands mid-window, so an end-of-window snapshot would
    read zero; integrating ``rate × dt`` over each advance sub-segment
    gives the window's true lost fraction — comparable to the request
    engine's per-window drop fraction.
    """

    def __init__(self, blackholed: set, offered_rate: Callable[[str], float],
                 total_rate: Callable[[], float]) -> None:
        self._blackholed = blackholed
        self._offered_rate = offered_rate
        self._total_rate = total_rate
        self._lost = 0.0
        self._offered = 0.0

    def account(self, dt: float) -> None:
        """Call before each advance: rates are piecewise-constant over it."""
        self._offered += self._total_rate() * dt
        self._lost += sum(
            self._offered_rate(dip) for dip in self._blackholed
        ) * dt

    def window_fraction(self) -> float:
        """The elapsed window's lost-traffic fraction; resets the meter."""
        fraction = self._lost / self._offered if self._offered > 0 else 0.0
        self._lost = 0.0
        self._offered = 0.0
        return fraction


# ---------------------------------------------------------------------------
# fluid substrate
# ---------------------------------------------------------------------------


def fluid_timeline_stepper(
    cluster: "FluidCluster",
    timeline: TimelineSpec,
    observer: Observer,
    *,
    controller: "KnapsackLBController | None" = None,
    health: "HealthCheckSpec | None" = None,
    seed: int = 0,
) -> TimelineStepper:
    """A resumable stepper over the timed phase of a (converged) fluid cluster.

    With ``health`` enabled, DIP failures are not applied to the LB at
    their declared times: the DIP keeps its traffic share (blackholed —
    reported as the window's ``drop_fraction``) until the probe state
    machine detects it, at the same seeded probe-grid instant the request
    engine would flip it.
    """
    base_rate = cluster.total_rate_rps
    if health is not None and not health.enabled:
        health = None
    blackholed: set[str] = set()

    def fail(dip: str) -> None:
        cluster.fail_dip(dip)

    def recover(dip: str) -> None:
        cluster.recover_dip(dip)
        if controller is not None and controller.restore_dip(dip):
            controller.program_assignment(
                controller.compute_weights().assignment
            )

    def apply_event(event: EventSpec) -> None:
        kind = event.kind
        if kind == "dip_fail":
            cluster.fail_dip(event.dip)
        elif kind == "dip_recover":
            cluster.recover_dip(event.dip)
            if controller is not None and controller.restore_dip(event.dip):
                # Re-include the recovered DIP right away (restored curve);
                # later ticks rescale it if the capacity changed meanwhile.
                controller.program_assignment(
                    controller.compute_weights().assignment
                )
        elif kind == "capacity_ratio":
            cluster.set_capacity_ratio(event.dip, event.value)
        elif kind == "antagonist_phase":
            cluster.set_antagonist_copies(event.dip, int(event.value))
        elif kind == "arrival_scale":
            cluster.set_total_rate(base_rate * event.value)
        else:  # pragma: no cover - caught by check_timeline_supported
            raise ConfigurationError(
                f"event {kind!r} is not executable on the fluid substrate"
            )

    def tick() -> dict[str, float]:
        if controller is None:
            return {}
        controller.time = cluster.time
        report = controller.control_step(advance=False)
        return {
            "controller_events": float(len(report.events)),
            "reprogrammed": 1.0 if report.reprogrammed else 0.0,
        }

    meter = _BlackholeMeter(
        blackholed,
        lambda dip: cluster.dips[dip].offered_rate_rps,
        lambda: cluster.total_rate_rps,
    )

    def snapshot() -> tuple[
        dict[str, float], dict[str, float], dict[str, dict[str, float]]
    ]:
        state = cluster.state()
        metrics = {
            "mean_latency_ms": _live_mean_latency_ms(
                state.rates_rps, state.mean_latency_ms, exclude=blackholed
            ),
            "max_utilization": max(state.utilization.values()),
            "total_rate_rps": cluster.total_rate_rps,
        }
        if health is not None:
            metrics["drop_fraction"] = meter.window_fraction()
        return metrics, _share(state.rates_rps), _dip_rows(state)

    def advance(dt: float) -> None:
        if dt <= 0:
            return
        if health is not None:
            meter.account(dt)
        cluster.advance(dt)

    actions = None
    if health is not None:
        actions = _health_timeline_actions(
            timeline,
            health,
            seed=seed,
            dip_index={dip: i for i, dip in enumerate(cluster.dips)},
            blackholed=blackholed,
            fail=fail,
            recover=recover,
        )
    return TimelineStepper(
        timeline,
        observer,
        advance=advance,
        tick=tick,
        snapshot=snapshot,
        apply_event=apply_event,
        actions=actions,
        set_weights=lambda _vip, weights: cluster.set_weights(weights),
        weight_scope={"vip": tuple(cluster.dips)},
    )


def run_fluid_timeline(
    cluster: "FluidCluster",
    timeline: TimelineSpec,
    observer: Observer,
    *,
    controller: "KnapsackLBController | None" = None,
    health: "HealthCheckSpec | None" = None,
    seed: int = 0,
) -> tuple[RunWindow, ...]:
    """Execute the timed phase on a (converged) fluid cluster, to completion."""
    return fluid_timeline_stepper(
        cluster,
        timeline,
        observer,
        controller=controller,
        health=health,
        seed=seed,
    ).run()


# ---------------------------------------------------------------------------
# fleet substrate
# ---------------------------------------------------------------------------


def fleet_timeline_stepper(
    fleet: "Fleet",
    timeline: TimelineSpec,
    observer: Observer,
    *,
    plane: "FleetController | None" = None,
    health: "HealthCheckSpec | None" = None,
    seed: int = 0,
) -> TimelineStepper:
    """A resumable stepper over the timed phase of a (converged) fleet.

    ``vip_onboard`` runs the full staggered-onboarding path: the VIP joins
    the control plane, its interleaved measurement rounds run with
    ``steady_control=True`` (the already-steady VIPs keep reacting while
    the newcomer explores — that measurement consumes fleet-clock time in
    addition to the timeline's windows), and its weights are computed and
    programmed.  ``vip_offboard`` retires the tenant and its traffic;
    with ``drain_s`` its arrivals stop at the event time and the tenant is
    removed once the drain elapses.  ``health`` delays DIP-failure
    reactions to their probe-detected instants (see
    :func:`run_fluid_timeline`).
    """
    if health is not None and not health.enabled:
        health = None
    blackholed: set[str] = set()
    base_rates = {
        vip_id: vip.total_rate_rps for vip_id, vip in fleet.vips.items()
    }

    def fail(dip: str) -> None:
        fleet.fail_dip(dip)

    def recover(dip: str) -> None:
        fleet.recover_dip(dip)
        if plane is not None:
            for controller in plane.controllers.values():
                if dip in controller.deployment.dips:
                    if controller.restore_dip(dip):
                        controller.program_assignment(
                            controller.compute_weights().assignment
                        )

    def drain_vip(vip_id: str) -> None:
        # Graceful offboard, step 1: stop new arrivals; the tenant itself
        # is removed by the deferred apply_event once the drain elapses.
        fleet.set_total_rate(vip_id, 0.0)

    def apply_event(event: EventSpec) -> None:
        kind = event.kind
        if kind == "dip_fail":
            fleet.fail_dip(event.dip)
        elif kind == "dip_recover":
            fleet.recover_dip(event.dip)
            if plane is not None:
                for controller in plane.controllers.values():
                    if event.dip in controller.deployment.dips:
                        if controller.restore_dip(event.dip):
                            controller.program_assignment(
                                controller.compute_weights().assignment
                            )
        elif kind == "capacity_ratio":
            fleet.set_capacity_ratio(event.dip, event.value)
        elif kind == "antagonist_phase":
            fleet.set_antagonist_copies(event.dip, int(event.value))
        elif kind == "arrival_scale":
            targets = [event.vip] if event.vip is not None else list(base_rates)
            for vip_id in targets:
                fleet.set_total_rate(vip_id, base_rates[vip_id] * event.value)
        elif kind == "vip_onboard":
            assert plane is not None  # enforced by check_timeline_supported
            plane.onboard_vip(event.vip)
            plane.run_measurement_phase(steady_control=True)
            plane.compute_all_weights()
        elif kind == "vip_offboard":
            if plane is not None and event.vip in plane.controllers:
                plane.offboard_vip(event.vip)
            else:
                fleet.remove_vip(event.vip)
            base_rates.pop(event.vip, None)

    def tick() -> dict[str, float]:
        if plane is None:
            return {}
        reports = plane.control_step(duration_s=0.0)
        return {
            "controller_events": float(
                sum(len(r.events) for r in reports.values())
            ),
            "reprogrammed": float(
                sum(1 for r in reports.values() if r.reprogrammed)
            ),
            "steady_vips": float(len(plane.steady_vips())),
        }

    meter = _BlackholeMeter(
        blackholed,
        lambda dip: fleet.dips[dip].offered_rate_rps,
        lambda: sum(vip.total_rate_rps for vip in fleet.vips.values()),
    )

    def snapshot() -> tuple[
        dict[str, float], dict[str, float], dict[str, dict[str, float]]
    ]:
        state = fleet.state()
        metrics = {
            "mean_latency_ms": _live_mean_latency_ms(
                state.total_rates_rps, state.mean_latency_ms, exclude=blackholed
            ),
            "max_utilization": max(state.utilization.values()),
            "total_rate_rps": sum(state.total_rates_rps.values()),
            "num_vips": float(len(fleet.vips)),
        }
        if health is not None:
            metrics["drop_fraction"] = meter.window_fraction()
        return metrics, _share(state.total_rates_rps), _dip_rows(state)

    if health is not None:
        actions = _health_timeline_actions(
            timeline,
            health,
            seed=seed,
            dip_index={dip: i for i, dip in enumerate(fleet.dips)},
            blackholed=blackholed,
            fail=fail,
            recover=recover,
        )
    else:
        actions = [
            (event.time_s, event, None) for event in timeline.ordered_events()
        ]
    actions = _split_drained_offboards(
        actions, drain=drain_vip, apply_event=apply_event
    )

    def advance(dt: float) -> None:
        if dt <= 0:
            return
        if health is not None:
            meter.account(dt)
        fleet.advance(dt)

    return TimelineStepper(
        timeline,
        observer,
        advance=advance,
        tick=tick,
        snapshot=snapshot,
        apply_event=apply_event,
        actions=actions,
        set_weights=lambda vip, weights: fleet.set_weights(vip, weights),
        weight_scope={
            vip_id: tuple(vip.dips) for vip_id, vip in fleet.vips.items()
        },
    )


def run_fleet_timeline(
    fleet: "Fleet",
    timeline: TimelineSpec,
    observer: Observer,
    *,
    plane: "FleetController | None" = None,
    health: "HealthCheckSpec | None" = None,
    seed: int = 0,
) -> tuple[RunWindow, ...]:
    """Execute the timed phase on a (converged) multi-VIP fleet, to completion."""
    return fleet_timeline_stepper(
        fleet,
        timeline,
        observer,
        plane=plane,
        health=health,
        seed=seed,
    ).run()


# ---------------------------------------------------------------------------
# request substrate
# ---------------------------------------------------------------------------


def apply_request_event(cluster: "RequestCluster", event: EventSpec) -> None:
    """Apply one timeline event to a live request-level cluster."""
    kind = event.kind
    if kind == "dip_fail":
        cluster.fail_dip(event.dip, drain_s=event.drain_s)
    elif kind == "dip_recover":
        cluster.recover_dip(event.dip)
    elif kind == "capacity_ratio":
        cluster.set_capacity_ratio(event.dip, event.value)
    elif kind == "antagonist_phase":
        cluster.set_antagonist_copies(event.dip, int(event.value))
    elif kind == "arrival_scale":
        cluster.scale_arrivals(event.value)
    else:  # pragma: no cover - caught by check_timeline_supported
        raise ConfigurationError(
            f"event {kind!r} is not executable on the request substrate"
        )


def schedule_request_timeline(
    cluster: "RequestCluster",
    timeline: TimelineSpec,
    observer: Observer,
    *,
    offset_s: float = 0.0,
) -> "list[EventHandle]":
    """Inject the timeline into the engine as cancellable events.

    Event times are measured from the start of the measured phase, so each
    fires at ``offset_s + time_s`` on the engine clock (``offset_s`` is the
    warm-up).  The returned handles let the runner cancel events that
    outlive the run's horizon (they sit in the completion drain tail).
    """
    handles = []
    for event in timeline.ordered_events():

        def fire(event: EventSpec = event) -> None:
            apply_request_event(cluster, event)
            observer.on_event(event.time_s, event)

        handles.append(
            cluster.scheduler.schedule_cancellable_at(
                offset_s + event.time_s, fire
            )
        )
    return handles


def schedule_request_progress(
    cluster: "RequestCluster",
    observer: Observer,
    *,
    window_s: float,
    horizon_s: float,
    offset_s: float = 0.0,
) -> None:
    """Self-rescheduling ``on_round`` progress beacon for the request engine."""

    def emit() -> None:
        now = cluster.scheduler.now - offset_s
        observer.on_round(
            now,
            {
                "requests_recorded": float(cluster.metrics.total_requests),
                "pending_events": float(cluster.scheduler.pending_events),
            },
        )
        next_time = now + window_s
        if next_time < horizon_s + _EPS:
            cluster.scheduler.schedule_at(offset_s + next_time, emit)

    cluster.scheduler.schedule_at(offset_s + window_s, emit)


def request_windows(
    cluster: "RequestCluster",
    timeline: TimelineSpec,
    observer: Observer,
    *,
    duration_s: float,
    offset_s: float = 0.0,
) -> tuple[RunWindow, ...]:
    """Fold the request run's columnar metrics into the window time-series."""
    return windows_from_collector(
        cluster.metrics,
        timeline,
        observer,
        duration_s=duration_s,
        offset_s=offset_s,
    )


def windows_from_collector(
    collector: "MetricsCollector",
    timeline: TimelineSpec,
    observer: Observer,
    *,
    duration_s: float,
    offset_s: float = 0.0,
) -> tuple[RunWindow, ...]:
    """Fold any columnar metrics collector into the window time-series.

    Computed after the run from the collector's timestamp column (windows
    reflect the requests that *completed* in them), with each window tagged
    by the timeline events whose declared times fall inside it.  The serial
    request runner and the epoch-sharded engine share this fold, so their
    window rows are directly comparable.
    """
    events = timeline.ordered_events()
    rows = collector.window_rows(
        window_s=timeline.window_s,
        start_s=offset_s,
        end_s=offset_s + duration_s,
    )
    windows: list[RunWindow] = []
    for row in rows:
        start = row["start_s"] - offset_s
        end = row["end_s"] - offset_s
        labels = tuple(
            event.label()
            for event in events
            if start - _EPS <= event.time_s < end - _EPS
        )
        window = RunWindow(
            start_s=start,
            end_s=end,
            metrics=dict(row["metrics"]),
            dip_share=dict(row["dip_share"]),
            events=labels,
            dip_metrics={
                dip: dict(columns)
                for dip, columns in row.get("dip_metrics", {}).items()
            },
        )
        observer.on_window(window)
        windows.append(window)
    return tuple(windows)

"""KnapsackLB — performance-aware layer-4 load balancing (CoNEXT 2025).

A full reproduction of *KnapsackLB: Enabling Performance-Aware Layer-4 Load
Balancing* (Gandhi & Narayana).  The package contains the KnapsackLB
controller itself (:mod:`repro.core`), plus every substrate the paper's
evaluation depends on: a MILP solver layer (:mod:`repro.solver`), DIP/VM
models (:mod:`repro.backends`), layer-4 load-balancer policies and facades
(:mod:`repro.lb`), cluster simulators (:mod:`repro.sim`), KLM probing and
the latency store (:mod:`repro.probing`), an agent-based baseline
(:mod:`repro.agents`), analysis helpers (:mod:`repro.analysis`), workload
builders (:mod:`repro.workloads`) and per-figure/table experiment drivers
(:mod:`repro.experiments`).

Quickstart::

    from repro import KnapsackLBController, KnapsackLBConfig
    from repro.workloads import build_testbed_cluster

    cluster = build_testbed_cluster(load_fraction=0.7, seed=7)
    controller = KnapsackLBController("vip-1", cluster)
    assignment = controller.converge()
    print(assignment.weights)
"""

from repro.core import (
    KnapsackLBConfig,
    KnapsackLBController,
    WeightAssignment,
    WeightLatencyCurve,
    compute_weights,
    compute_weights_multistep,
    fit_curve,
)
from repro.exceptions import (
    ConfigurationError,
    CurveFitError,
    DipFailureError,
    DipOverloadError,
    InfeasibleError,
    MeasurementError,
    ReproError,
    SchedulingError,
    SimulationError,
    SolverError,
    SolverTimeoutError,
)

__version__ = "1.0.0"

__all__ = [
    "KnapsackLBConfig",
    "KnapsackLBController",
    "WeightAssignment",
    "WeightLatencyCurve",
    "compute_weights",
    "compute_weights_multistep",
    "fit_curve",
    "ConfigurationError",
    "CurveFitError",
    "DipFailureError",
    "DipOverloadError",
    "InfeasibleError",
    "MeasurementError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "SolverError",
    "SolverTimeoutError",
    "__version__",
]

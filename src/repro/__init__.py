"""KnapsackLB — performance-aware layer-4 load balancing (CoNEXT 2025).

A full reproduction of *KnapsackLB: Enabling Performance-Aware Layer-4 Load
Balancing* (Gandhi & Narayana).  The package contains the KnapsackLB
controller itself (:mod:`repro.core`), plus every substrate the paper's
evaluation depends on: a MILP solver layer (:mod:`repro.solver`), DIP/VM
models (:mod:`repro.backends`), layer-4 load-balancer policies and facades
(:mod:`repro.lb`), cluster simulators (:mod:`repro.sim`), KLM probing and
the latency store (:mod:`repro.probing`), an agent-based baseline
(:mod:`repro.agents`), analysis helpers (:mod:`repro.analysis`), workload
builders (:mod:`repro.workloads`), per-figure/table experiment drivers
(:mod:`repro.experiments`) and the multi-core execution layer
(:mod:`repro.parallel`: sharded request runs, shared-memory metric merges
and the persistent worker pool behind sweeps).

The declarative front door is :mod:`repro.api` (also on the command line as
``python -m repro``): describe a run as an :class:`~repro.api.ExperimentSpec`
— pool, workload, policy, controller, substrate, seed — and execute it into
a reproducible :class:`~repro.api.RunResult` artifact.

Quickstart::

    from repro import api

    result = api.run(api.get_spec("testbed_klb"))
    print(result.metrics["mean_latency_ms"])

or, driving the controller by hand::

    from repro import KnapsackLBController
    from repro.workloads import build_testbed_cluster

    cluster = build_testbed_cluster(load_fraction=0.7, seed=7)
    controller = KnapsackLBController("vip-1", cluster)
    assignment = controller.converge()
    print(assignment.weights)
"""

from repro.core import (
    KnapsackLBConfig,
    KnapsackLBController,
    WeightAssignment,
    WeightLatencyCurve,
    compute_weights,
    compute_weights_multistep,
    fit_curve,
)
from repro.exceptions import (
    ConfigurationError,
    CurveFitError,
    DipFailureError,
    DipOverloadError,
    InfeasibleError,
    MeasurementError,
    ReproError,
    SchedulingError,
    SimulationError,
    SolverError,
    SolverTimeoutError,
)

__version__ = "1.1.0"

# The declarative API imports experiments (scenario bridging), which imports
# almost everything else — load it lazily so ``import repro`` stays light.
_LAZY_SUBMODULES = ("api",)


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        import importlib

        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "api",
    "KnapsackLBConfig",
    "KnapsackLBController",
    "WeightAssignment",
    "WeightLatencyCurve",
    "compute_weights",
    "compute_weights_multistep",
    "fit_curve",
    "ConfigurationError",
    "CurveFitError",
    "DipFailureError",
    "DipOverloadError",
    "InfeasibleError",
    "MeasurementError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "SolverError",
    "SolverTimeoutError",
    "__version__",
]

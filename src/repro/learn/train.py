"""Training loop with resumable JSON checkpoints.

A :class:`LearnSpec` describes one training run declaratively — the
environment, the agent, the episode budget, and the eval/checkpoint
cadence — with the same eager dotted-path validation as the experiment
spec tree (``LearnSpec.from_dict`` names a bad field as ``learn.agent.
epsilon``).

Determinism is the contract: every episode's environment seed is a pure
function of ``(learn_spec.seed, stream, episode)`` via
:class:`numpy.random.SeedSequence`, and a checkpoint captures the
complete mutable state (agent parameters *and* RNG state, history,
evals), so ``train → checkpoint → resume`` reproduces the uninterrupted
run bit-for-bit.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro import __version__
from repro.api.result import RunWindow, timeline_metrics
from repro.core.config import dataclass_from_dict, dataclass_to_dict
from repro.exceptions import ConfigurationError
from repro.learn.agents import Agent, AgentSpec, make_agent
from repro.learn.env import EnvSpec, LoadBalanceEnv

#: Schema tag embedded in every checkpoint artifact.
CHECKPOINT_SCHEMA = "repro.learn.checkpoint/v1"

#: SeedSequence stream tags: training episodes vs eval episodes.
TRAIN_STREAM = 0
EVAL_STREAM = 1


def episode_seed(base_seed: int, stream: int, episode: int) -> int:
    """The env seed for one episode — pure in ``(base, stream, episode)``."""
    sequence = np.random.SeedSequence(
        (int(base_seed), int(stream), int(episode))
    )
    return int(sequence.generate_state(1, np.uint32)[0])


# ---------------------------------------------------------------------------
# the learn spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LearnSpec:
    """The single declarative description of one training run."""

    name: str
    env: EnvSpec = EnvSpec()
    agent: AgentSpec = AgentSpec()
    #: training episode budget.
    episodes: int = 30
    seed: int = 0
    #: run ``eval_episodes`` greedy episodes every N training episodes
    #: (0 = no periodic evals; the schedule depends only on the episode
    #: index so resumed runs checkpoint identically).
    eval_every: int = 0
    eval_episodes: int = 3
    #: write the checkpoint every N episodes (0 = only at the end).
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("name must be a non-empty string")
        if self.episodes < 1:
            raise ConfigurationError("episodes must be >= 1")
        if self.seed < 0:
            raise ConfigurationError("seed must be >= 0")
        if self.eval_every < 0:
            raise ConfigurationError("eval_every must be >= 0")
        if self.eval_episodes < 1:
            raise ConfigurationError("eval_episodes must be >= 1")
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LearnSpec":
        """Build a learn spec from a plain mapping, naming any bad field."""
        return dataclass_from_dict(cls, data, path="learn")

    @classmethod
    def from_file(cls, path: str | Path) -> "LearnSpec":
        """Load a learn spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(
                f"learn spec file {str(path)!r} does not exist"
            )
        text = path.read_text(encoding="utf-8")
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as error:
                raise ConfigurationError(
                    f"learn spec file {str(path)!r} is not valid TOML: {error}"
                ) from None
        elif suffix == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"learn spec file {str(path)!r} is not valid JSON: {error}"
                ) from None
        else:
            raise ConfigurationError(
                f"learn spec file {str(path)!r} must end in .json or .toml"
            )
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        return dataclass_to_dict(self)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# named learn specs
# ---------------------------------------------------------------------------


def _named(name: str, scenario: str, agent: str, **kw: Any) -> LearnSpec:
    return LearnSpec(
        name=name,
        env=EnvSpec(scenario=scenario),
        agent=AgentSpec(name=agent),
        episodes=int(kw.pop("episodes", 30)),
        seed=int(kw.pop("seed", 7)),
        eval_every=int(kw.pop("eval_every", 10)),
        **kw,
    )


_LEARN_SPECS: dict[str, tuple[Callable[[], LearnSpec], str]] = {
    "bandit_outage": (
        lambda: _named("bandit_outage", "dip_outage_recovery", "bandit"),
        "epsilon-greedy bandit on the DIP outage/recovery timeline",
    ),
    "bandit_surge": (
        lambda: _named("bandit_surge", "diurnal_surge", "bandit"),
        "epsilon-greedy bandit on the diurnal traffic ramp",
    ),
    "reinforce_outage": (
        lambda: _named("reinforce_outage", "dip_outage_recovery", "reinforce"),
        "REINFORCE policy gradient on the DIP outage/recovery timeline",
    ),
    "reinforce_antagonist": (
        lambda: _named(
            "reinforce_antagonist", "antagonist_phases", "reinforce"
        ),
        "REINFORCE policy gradient against antagonist phases",
    ),
}


def learn_spec_registry() -> dict[str, str]:
    """Named learn specs and their one-line summaries."""
    return {name: summary for name, (_, summary) in _LEARN_SPECS.items()}


def get_learn_spec(ref: str) -> LearnSpec:
    """Resolve a learn spec by registered name or spec-file path."""
    entry = _LEARN_SPECS.get(ref)
    if entry is not None:
        return entry[0]()
    if ref.endswith((".json", ".toml")) or Path(ref).exists():
        return LearnSpec.from_file(ref)
    known = ", ".join(sorted(_LEARN_SPECS))
    raise ConfigurationError(
        f"unknown learn spec {ref!r}; registered: {known} "
        "(or pass a .json/.toml learn spec file)"
    )


# ---------------------------------------------------------------------------
# episodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EpisodeResult:
    """One completed episode: its return and telemetry trajectory."""

    seed: int
    reward: float
    windows: tuple[RunWindow, ...]
    metrics: dict[str, float] = field(default_factory=dict)


def run_episode(
    env: LoadBalanceEnv,
    agent: Agent,
    *,
    seed: int,
    training: bool = True,
) -> EpisodeResult:
    """Drive one full episode of ``env`` with ``agent``."""
    agent.begin_episode(training=training)
    obs = env.reset(seed=seed)
    total = 0.0
    while True:
        action = agent.act(obs)
        obs, reward, done, _ = env.step(action)
        agent.observe(reward)
        total += reward
        if done:
            break
    agent.end_episode()
    windows = env.windows
    return EpisodeResult(
        seed=seed,
        reward=total,
        windows=windows,
        metrics=timeline_metrics(windows),
    )


def evaluate(
    env: LoadBalanceEnv,
    agent: Agent,
    *,
    episodes: int,
    base_seed: int,
) -> dict[str, Any]:
    """Greedy (non-training) episodes on the shared eval seed stream."""
    results = [
        run_episode(
            env,
            agent,
            seed=episode_seed(base_seed, EVAL_STREAM, k),
            training=False,
        )
        for k in range(episodes)
    ]
    returns = [r.reward for r in results]
    latencies = [
        r.metrics["mean_latency_ms"]
        for r in results
        if r.metrics["mean_latency_ms"] == r.metrics["mean_latency_ms"]
    ]
    return {
        "episodes": episodes,
        "mean_return": sum(returns) / len(returns),
        "returns": returns,
        "mean_latency_ms": (
            sum(latencies) / len(latencies) if latencies else float("nan")
        ),
    }


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------


def save_checkpoint(
    path: str | Path,
    *,
    spec: LearnSpec,
    agent: Agent,
    next_episode: int,
    history: list[dict[str, Any]],
    evals: list[dict[str, Any]],
) -> Path:
    """Write the complete resumable training state as one JSON document."""
    path = Path(path)
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "learn_spec": spec.to_dict(),
        "next_episode": int(next_episode),
        "agent_state": agent.state_dict(),
        "history": history,
        "evals": evals,
        "provenance": {"version": __version__},
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Load and schema-check a checkpoint document."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(
            f"checkpoint file {str(path)!r} does not exist"
        )
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"checkpoint file {str(path)!r} is not valid JSON: {error}"
        ) from None
    if data.get("schema") != CHECKPOINT_SCHEMA:
        raise ConfigurationError(
            f"unsupported checkpoint schema {data.get('schema')!r}; "
            f"expected {CHECKPOINT_SCHEMA!r}"
        )
    return data


def _check_resumable(spec: LearnSpec, checkpoint: Mapping[str, Any]) -> None:
    """The checkpoint must describe the same run (episode budget aside)."""
    ours = spec.to_dict()
    theirs = dict(checkpoint["learn_spec"])
    ours.pop("episodes", None)
    theirs.pop("episodes", None)
    if ours != theirs:
        raise ConfigurationError(
            "checkpoint was written by a different learn spec (only the "
            "episode budget may change on resume); retrain from scratch "
            "or restore the original spec"
        )


# ---------------------------------------------------------------------------
# the training loop
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrainResult:
    """Outcome of one (possibly resumed) training run."""

    spec: LearnSpec
    agent: Agent
    #: one row per training episode: episode index, return, headline metrics.
    history: tuple[dict[str, Any], ...]
    #: periodic greedy evals (one row per eval point).
    evals: tuple[dict[str, Any], ...]
    wall_clock_s: float
    checkpoint_path: Path | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "learn_spec": self.spec.to_dict(),
            "history": list(self.history),
            "evals": list(self.evals),
            "wall_clock_s": self.wall_clock_s,
            "agent_state": self.agent.state_dict(),
        }


def train(
    spec: LearnSpec,
    *,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    progress: Callable[[str], None] | None = None,
) -> TrainResult:
    """Run (or resume) the training loop a :class:`LearnSpec` describes.

    With ``resume=True`` and an existing ``checkpoint``, training picks
    up from the recorded episode with the recorded agent state — the
    resumed run is bit-identical to one that never stopped, because the
    checkpoint carries the agent's RNG state and every episode's env
    seed depends only on ``(spec.seed, stream, episode)``.
    """
    started = time.perf_counter()
    env = LoadBalanceEnv(spec.env, seed=episode_seed(spec.seed, TRAIN_STREAM, 0))
    agent = make_agent(
        spec.agent,
        num_dips=env.num_dips,
        observation_size=env.observation_size,
        seed=spec.seed,
    )
    history: list[dict[str, Any]] = []
    evals: list[dict[str, Any]] = []
    start_episode = 0
    if resume:
        if checkpoint is None:
            raise ConfigurationError("resume needs a checkpoint path")
        data = load_checkpoint(checkpoint)
        _check_resumable(spec, data)
        agent.load_state_dict(data["agent_state"])
        history = list(data["history"])
        evals = list(data["evals"])
        start_episode = int(data["next_episode"])
        if progress is not None:
            progress(
                f"resumed from {checkpoint} at episode {start_episode}"
            )
    for episode in range(start_episode, spec.episodes):
        result = run_episode(
            env,
            agent,
            seed=episode_seed(spec.seed, TRAIN_STREAM, episode),
            training=True,
        )
        row = {
            "episode": episode,
            "seed": result.seed,
            "return": result.reward,
            "mean_latency_ms": result.metrics["mean_latency_ms"],
            "final_latency_ms": result.metrics["final_latency_ms"],
        }
        history.append(row)
        if progress is not None:
            progress(
                f"episode {episode + 1}/{spec.episodes}: "
                f"return={result.reward:.2f} "
                f"mean_latency_ms={row['mean_latency_ms']:.3f}"
            )
        done = episode + 1 == spec.episodes
        # The eval schedule depends only on the episode index — never on
        # where a run was interrupted — so a resumed run's checkpoint is
        # byte-identical to the uninterrupted run's.
        if spec.eval_every and (episode + 1) % spec.eval_every == 0:
            evaluation = evaluate(
                env,
                agent,
                episodes=spec.eval_episodes,
                base_seed=spec.seed,
            )
            evaluation["at_episode"] = episode + 1
            evals.append(evaluation)
            if progress is not None:
                progress(
                    f"eval @ {episode + 1}: "
                    f"mean_return={evaluation['mean_return']:.2f}"
                )
        if checkpoint is not None and (
            done
            or (
                spec.checkpoint_every
                and (episode + 1) % spec.checkpoint_every == 0
            )
        ):
            save_checkpoint(
                checkpoint,
                spec=spec,
                agent=agent,
                next_episode=episode + 1,
                history=history,
                evals=evals,
            )
    return TrainResult(
        spec=spec,
        agent=agent,
        history=tuple(history),
        evals=tuple(evals),
        wall_clock_s=time.perf_counter() - started,
        checkpoint_path=Path(checkpoint) if checkpoint is not None else None,
    )

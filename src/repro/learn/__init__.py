"""Learning a load balancer on top of the timed substrates.

The ``repro.learn`` package turns the fluid and request substrates into
an episodic gym-style environment (:mod:`repro.learn.env`), provides
pure-numpy agents over the weight-vector action space
(:mod:`repro.learn.agents`), a seed-deterministic training loop with
resumable JSON checkpoints (:mod:`repro.learn.train`), and head-to-head
evaluation against the paper's ILP controller and static baselines
(:mod:`repro.learn.eval`).  ``python -m repro learn train/eval/compare``
is the CLI surface.
"""

from repro.learn.agents import (
    Agent,
    AgentDescription,
    AgentSpec,
    EpsilonGreedyBandit,
    RandomAgent,
    ReinforceAgent,
    UniformAgent,
    WeightArms,
    agent_registry,
    make_agent,
)
from repro.learn.env import (
    ENV_SCENARIOS,
    EnvSpec,
    LoadBalanceEnv,
    env_scenario_registry,
    episode_spec,
    observation_from_window,
    window_reward,
)
from repro.learn.eval import (
    DEFAULT_CONTENDERS,
    LearnerComparison,
    compare_learners,
    episode_reward,
    evaluate_checkpoint,
)
from repro.learn.train import (
    CHECKPOINT_SCHEMA,
    EpisodeResult,
    LearnSpec,
    TrainResult,
    episode_seed,
    evaluate,
    get_learn_spec,
    learn_spec_registry,
    load_checkpoint,
    run_episode,
    save_checkpoint,
    train,
)

__all__ = [
    "Agent",
    "AgentDescription",
    "AgentSpec",
    "CHECKPOINT_SCHEMA",
    "DEFAULT_CONTENDERS",
    "ENV_SCENARIOS",
    "EnvSpec",
    "EpisodeResult",
    "EpsilonGreedyBandit",
    "LearnSpec",
    "LearnerComparison",
    "LoadBalanceEnv",
    "RandomAgent",
    "ReinforceAgent",
    "TrainResult",
    "UniformAgent",
    "WeightArms",
    "agent_registry",
    "compare_learners",
    "env_scenario_registry",
    "episode_reward",
    "episode_seed",
    "episode_spec",
    "evaluate",
    "evaluate_checkpoint",
    "get_learn_spec",
    "learn_spec_registry",
    "load_checkpoint",
    "make_agent",
    "observation_from_window",
    "run_episode",
    "save_checkpoint",
    "train",
    "window_reward",
]

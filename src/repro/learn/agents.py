"""Learning agents over the weight-vector action space (pure numpy).

Every agent maps observations to weight vectors for
:class:`~repro.learn.env.LoadBalanceEnv` and carries its full mutable
state — including its RNG state — through ``state_dict`` /
``load_state_dict``, so a training run checkpointed mid-stream resumes
bit-identically (see :mod:`repro.learn.train`).

The discrete agents act through a shared :class:`WeightArms` library:
arm 0 is the uniform split, the rest are seeded perturbations of it.
Agents:

* ``bandit`` — epsilon-greedy over the arms, per-window reward updates;
* ``reinforce`` — a small softmax policy gradient (linear logits over
  the observation vector) with a running-baseline advantage;
* ``random`` — a fresh random weight vector every window (the
  uniform-random assignment baseline a trained agent must beat);
* ``uniform`` — the static equal split (the no-learning control).

Randomness is drawn from seeded :class:`numpy.random.SeedSequence`
substreams — one stream per agent kind — so agents sharing a seed never
share draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.exceptions import ConfigurationError

#: SeedSequence stream tags, one per agent kind (never reuse).
_STREAM_ARMS = 101
_STREAM_BANDIT = 102
_STREAM_REINFORCE = 103
_STREAM_RANDOM = 104


def _rng(seed: int, stream: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence((int(seed), stream)))


def _rng_state(rng: np.random.Generator) -> dict[str, Any]:
    return rng.bit_generator.state


def _set_rng_state(rng: np.random.Generator, state: Mapping[str, Any]) -> None:
    rng.bit_generator.state = dict(state)


# ---------------------------------------------------------------------------
# the agent spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AgentSpec:
    """Declarative description of one agent (validated eagerly)."""

    #: registered agent kind (see :func:`agent_registry`).
    name: str = "bandit"
    #: bandit exploration rate at episode 0 and its per-episode decay.
    epsilon: float = 0.3
    epsilon_decay: float = 0.1
    #: policy-gradient step size.
    learning_rate: float = 0.05
    #: arm count for the discrete agents (0 = auto: 2 * num_dips + 1).
    num_arms: int = 0
    #: relative spread of the perturbed arms around the uniform split.
    spread: float = 0.5
    #: reward normalization inside the policy-gradient update.
    reward_scale: float = 0.01
    #: running-baseline update rate for the advantage estimate.
    baseline_rate: float = 0.2

    def __post_init__(self) -> None:
        if self.name not in _AGENTS:
            known = ", ".join(sorted(_AGENTS))
            raise ConfigurationError(
                f"unknown agent {self.name!r}; known agents: {known}"
            )
        if not 0 <= self.epsilon <= 1:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if self.epsilon_decay < 0:
            raise ConfigurationError("epsilon_decay must be >= 0")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.num_arms < 0 or self.num_arms == 1:
            raise ConfigurationError(
                "num_arms must be 0 (auto) or >= 2"
            )
        if not 0 < self.spread < 1:
            raise ConfigurationError("spread must be in (0, 1)")
        if self.reward_scale <= 0:
            raise ConfigurationError("reward_scale must be positive")
        if not 0 < self.baseline_rate <= 1:
            raise ConfigurationError("baseline_rate must be in (0, 1]")


# ---------------------------------------------------------------------------
# the arm library
# ---------------------------------------------------------------------------


class WeightArms:
    """A seeded library of candidate weight vectors over the pool.

    Arm 0 is always the uniform split; the remaining arms are bounded
    random perturbations of it (each entry scaled by a factor in
    ``[1 - spread, 1 + spread]``, then renormalized).  The library is a
    pure function of ``(num_dips, num_arms, spread, seed)``, so two
    agents built from the same spec share the identical action space.
    """

    def __init__(
        self,
        num_dips: int,
        *,
        num_arms: int = 0,
        spread: float = 0.5,
        seed: int = 0,
    ) -> None:
        if num_dips < 1:
            raise ConfigurationError("num_dips must be >= 1")
        if num_arms == 0:
            num_arms = 2 * num_dips + 1
        if num_arms < 2:
            raise ConfigurationError("num_arms must be >= 2")
        rng = _rng(seed, _STREAM_ARMS)
        uniform = np.full(num_dips, 1.0 / num_dips)
        factors = 1.0 + spread * rng.uniform(-1.0, 1.0, (num_arms - 1, num_dips))
        perturbed = uniform * factors
        perturbed /= perturbed.sum(axis=1, keepdims=True)
        self.vectors = np.vstack([uniform, perturbed])
        self.num_arms = num_arms

    def weights(self, arm: int) -> np.ndarray:
        return self.vectors[arm].copy()


# ---------------------------------------------------------------------------
# agents
# ---------------------------------------------------------------------------


class Agent:
    """Base class: the episode protocol every agent implements."""

    kind = "agent"

    def __init__(self) -> None:
        self.episode = 0
        self._training = True

    def begin_episode(self, *, training: bool = True) -> None:
        self._training = training

    def act(self, obs: np.ndarray) -> np.ndarray | None:
        raise NotImplementedError

    def observe(self, reward: float) -> None:
        """Per-step reward feedback for the action just taken."""

    def end_episode(self) -> None:
        if self._training:
            self.episode += 1

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "episode": self.episode}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        if state.get("kind") != self.kind:
            raise ConfigurationError(
                f"checkpoint agent state is for {state.get('kind')!r}, "
                f"not {self.kind!r}"
            )
        self.episode = int(state["episode"])


class UniformAgent(Agent):
    """The static equal split — the no-learning control."""

    kind = "uniform"

    def __init__(self, num_dips: int, observation_size: int, **_: Any) -> None:
        super().__init__()
        self._weights = np.full(num_dips, 1.0 / num_dips)

    def act(self, obs: np.ndarray) -> np.ndarray:
        return self._weights.copy()


class RandomAgent(Agent):
    """A fresh random weight vector every window (Dirichlet(1) draws)."""

    kind = "random"

    def __init__(
        self, num_dips: int, observation_size: int, *, seed: int = 0, **_: Any
    ) -> None:
        super().__init__()
        self._num_dips = num_dips
        self.rng = _rng(seed, _STREAM_RANDOM)

    def act(self, obs: np.ndarray) -> np.ndarray:
        draws = self.rng.standard_exponential(self._num_dips)
        return draws / draws.sum()

    def state_dict(self) -> dict[str, Any]:
        return {**super().state_dict(), "rng": _rng_state(self.rng)}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        super().load_state_dict(state)
        _set_rng_state(self.rng, state["rng"])


class EpsilonGreedyBandit(Agent):
    """Epsilon-greedy bandit over the arm library, per-window updates.

    Q-values start at zero; with rewards strictly negative, an untried
    arm always looks best to the greedy rule, which gives systematic
    initial exploration on top of the decaying epsilon.
    """

    kind = "bandit"

    def __init__(
        self,
        num_dips: int,
        observation_size: int,
        *,
        seed: int = 0,
        spec: AgentSpec | None = None,
    ) -> None:
        super().__init__()
        spec = spec or AgentSpec(name="bandit")
        self.spec = spec
        self.arms = WeightArms(
            num_dips, num_arms=spec.num_arms, spread=spec.spread, seed=seed
        )
        self.q = np.zeros(self.arms.num_arms)
        self.counts = np.zeros(self.arms.num_arms, dtype=np.int64)
        self.rng = _rng(seed, _STREAM_BANDIT)
        self._last_arm: int | None = None

    @property
    def epsilon(self) -> float:
        return self.spec.epsilon / (1.0 + self.spec.epsilon_decay * self.episode)

    def act(self, obs: np.ndarray) -> np.ndarray:
        if self._training and self.rng.random() < self.epsilon:
            arm = int(self.rng.integers(self.arms.num_arms))
        else:
            arm = int(np.argmax(self.q))
        self._last_arm = arm
        return self.arms.weights(arm)

    def observe(self, reward: float) -> None:
        if not self._training or self._last_arm is None:
            return
        arm = self._last_arm
        self.counts[arm] += 1
        self.q[arm] += (reward - self.q[arm]) / self.counts[arm]

    def state_dict(self) -> dict[str, Any]:
        return {
            **super().state_dict(),
            "q": self.q.tolist(),
            "counts": self.counts.tolist(),
            "rng": _rng_state(self.rng),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        super().load_state_dict(state)
        q = np.asarray(state["q"], dtype=np.float64)
        counts = np.asarray(state["counts"], dtype=np.int64)
        if q.shape != self.q.shape or counts.shape != self.counts.shape:
            raise ConfigurationError(
                "checkpoint bandit state has a different arm count; "
                "the agent spec (num_arms / pool size) must match"
            )
        self.q = q
        self.counts = counts
        _set_rng_state(self.rng, state["rng"])


class ReinforceAgent(Agent):
    """Softmax policy gradient (REINFORCE) over the arm library.

    Linear logits over the observation vector (plus a bias feature), a
    reward-to-go return per step, and a running scalar baseline.  Eval
    mode takes the argmax arm and draws nothing from the RNG.
    """

    kind = "reinforce"

    def __init__(
        self,
        num_dips: int,
        observation_size: int,
        *,
        seed: int = 0,
        spec: AgentSpec | None = None,
    ) -> None:
        super().__init__()
        spec = spec or AgentSpec(name="reinforce")
        self.spec = spec
        self.arms = WeightArms(
            num_dips, num_arms=spec.num_arms, spread=spec.spread, seed=seed
        )
        self.theta = np.zeros((self.arms.num_arms, observation_size + 1))
        self.baseline = 0.0
        self.rng = _rng(seed, _STREAM_REINFORCE)
        self._features: list[np.ndarray] = []
        self._probs: list[np.ndarray] = []
        self._arms_taken: list[int] = []
        self._rewards: list[float] = []

    def begin_episode(self, *, training: bool = True) -> None:
        super().begin_episode(training=training)
        self._features.clear()
        self._probs.clear()
        self._arms_taken.clear()
        self._rewards.clear()

    def _policy(self, obs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        features = np.append(obs, 1.0)
        logits = self.theta @ features
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        return features, probs

    def act(self, obs: np.ndarray) -> np.ndarray:
        features, probs = self._policy(obs)
        if self._training:
            # Inverse-CDF draw: one uniform per action, stable across
            # numpy versions (unlike Generator.choice's internals).
            arm = int(
                np.searchsorted(np.cumsum(probs), self.rng.random(), "right")
            )
            arm = min(arm, self.arms.num_arms - 1)
            self._features.append(features)
            self._probs.append(probs)
            self._arms_taken.append(arm)
        else:
            arm = int(np.argmax(probs))
        return self.arms.weights(arm)

    def observe(self, reward: float) -> None:
        if self._training:
            self._rewards.append(reward * self.spec.reward_scale)

    def end_episode(self) -> None:
        if self._training and self._rewards:
            returns = np.cumsum(self._rewards[::-1])[::-1]
            lr = self.spec.learning_rate
            for features, probs, arm, ret in zip(
                self._features, self._probs, self._arms_taken, returns
            ):
                advantage = ret - self.baseline
                gradient = -np.outer(probs, features)
                gradient[arm] += features
                self.theta += lr * advantage * gradient
            self.baseline += self.spec.baseline_rate * (
                float(returns[0]) - self.baseline
            )
        super().end_episode()

    def state_dict(self) -> dict[str, Any]:
        return {
            **super().state_dict(),
            "theta": self.theta.tolist(),
            "baseline": self.baseline,
            "rng": _rng_state(self.rng),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        super().load_state_dict(state)
        theta = np.asarray(state["theta"], dtype=np.float64)
        if theta.shape != self.theta.shape:
            raise ConfigurationError(
                "checkpoint reinforce state has a different shape; the "
                "agent spec (num_arms / observation size) must match"
            )
        self.theta = theta
        self.baseline = float(state["baseline"])
        _set_rng_state(self.rng, state["rng"])


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AgentDescription:
    """One registered agent kind."""

    name: str
    factory: Callable[..., Agent]
    #: whether training changes the agent (baselines are static).
    trainable: bool
    summary: str


_AGENTS: dict[str, AgentDescription] = {
    description.name: description
    for description in (
        AgentDescription(
            name="bandit",
            factory=EpsilonGreedyBandit,
            trainable=True,
            summary="epsilon-greedy bandit over seeded weight arms",
        ),
        AgentDescription(
            name="reinforce",
            factory=ReinforceAgent,
            trainable=True,
            summary="softmax policy gradient (REINFORCE) over weight arms",
        ),
        AgentDescription(
            name="random",
            factory=RandomAgent,
            trainable=False,
            summary="fresh random weights every window (baseline to beat)",
        ),
        AgentDescription(
            name="uniform",
            factory=UniformAgent,
            trainable=False,
            summary="static equal split (no-learning control)",
        ),
    )
}


def agent_registry() -> dict[str, AgentDescription]:
    """The registered agent kinds (copy — the registry stays immutable)."""
    return dict(_AGENTS)


def make_agent(
    spec: AgentSpec,
    *,
    num_dips: int,
    observation_size: int,
    seed: int = 0,
) -> Agent:
    """Instantiate the agent an :class:`AgentSpec` describes."""
    description = _AGENTS[spec.name]  # AgentSpec validated membership
    return description.factory(
        num_dips, observation_size, seed=seed, spec=spec
    )

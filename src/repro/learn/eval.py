"""Head-to-head evaluation: learned agents vs the ILP controller.

``compare_learners`` lines up, on the same episode shape and the same
eval seeds:

* ``knapsack_ilp`` — the paper's controller, executed by the batch
  runner with ``controller.enabled = true`` (fluid substrate computes
  weights live; request substrate replays the converged weights);
* the learned agents (``bandit``, ``reinforce``) — trained inline for a
  configurable episode budget (or restored from a checkpoint), then run
  greedily;
* the static baselines (``uniform``, ``random``).

Every contender becomes a :class:`~repro.api.result.RunResult` carrying
``episode_reward`` next to the usual headline metrics, so the existing
``api/sweep`` comparison report renders the table and the artifacts land
on disk in the same schema every other run produces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.api.result import (
    Provenance,
    RunResult,
    RunWindow,
    timeline_metrics,
)
from repro.api.runners import execute, now_iso
from repro.api.sweep import ComparisonReport, compare
from repro.exceptions import ConfigurationError
from repro.learn.agents import AgentSpec, agent_registry, make_agent
from repro.learn.env import EnvSpec, LoadBalanceEnv, episode_spec, window_reward
from repro.learn.train import (
    EVAL_STREAM,
    LearnSpec,
    episode_seed,
    load_checkpoint,
    run_episode,
    train,
)

#: Contender order in the report: the paper's controller is the baseline.
DEFAULT_CONTENDERS = ("knapsack_ilp", "uniform", "random", "bandit", "reinforce")


def episode_reward(
    windows: Sequence[RunWindow], *, drop_penalty_ms: float
) -> float:
    """Sum of per-window rewards — the episode return of any trajectory."""
    return sum(
        window_reward(w, drop_penalty_ms=drop_penalty_ms) for w in windows
    )


def _result(
    spec_name: str,
    env: LoadBalanceEnv,
    *,
    seed: int,
    windows: tuple[RunWindow, ...],
    metrics: dict[str, float],
    started_at: str,
    started_clock: float,
) -> RunResult:
    template = replace(env.template_spec, name=spec_name, seed=seed)
    return RunResult(
        spec=template,
        runner=template.runner,
        seed=seed,
        metrics={k: float(v) for k, v in metrics.items()},
        dip_summaries={},
        windows=windows,
        provenance=Provenance(
            started_at=started_at,
            wall_clock_s=time.perf_counter() - started_clock,
        ),
    )


def _run_ilp(env: LoadBalanceEnv, *, seed: int) -> RunResult:
    """The paper's controller on the identical episode spec and seed."""
    spec = episode_spec(env.spec, seed)
    spec = replace(
        spec,
        name="knapsack_ilp",
        controller=replace(spec.controller, enabled=True),
    )
    result = execute(spec)
    metrics = dict(result.metrics)
    metrics["episode_reward"] = episode_reward(
        result.windows, drop_penalty_ms=env.spec.drop_penalty_ms
    )
    return replace(result, metrics=metrics)


def _run_agent(
    name: str,
    env: LoadBalanceEnv,
    *,
    seed: int,
    eval_episodes: int,
    train_episodes: int,
    checkpoint: str | Path | None,
) -> RunResult:
    """Train (or restore) one agent, then run it greedily on eval seeds."""
    started_at, started_clock = now_iso(), time.perf_counter()
    trainable = agent_registry()[name].trainable
    if checkpoint is not None:
        data = load_checkpoint(checkpoint)
        spec = LearnSpec.from_dict(data["learn_spec"])
        if spec.agent.name != name:
            raise ConfigurationError(
                f"checkpoint {str(checkpoint)!r} holds a "
                f"{spec.agent.name!r} agent, not {name!r}"
            )
        agent = make_agent(
            spec.agent,
            num_dips=env.num_dips,
            observation_size=env.observation_size,
            seed=spec.seed,
        )
        agent.load_state_dict(data["agent_state"])
    elif trainable:
        spec = LearnSpec(
            name=f"compare-{name}",
            env=env.spec,
            agent=AgentSpec(name=name),
            episodes=train_episodes,
            seed=seed,
        )
        agent = train(spec).agent
    else:
        agent = make_agent(
            AgentSpec(name=name),
            num_dips=env.num_dips,
            observation_size=env.observation_size,
            seed=seed,
        )
    episodes = [
        run_episode(
            env,
            agent,
            seed=episode_seed(seed, EVAL_STREAM, k),
            training=False,
        )
        for k in range(eval_episodes)
    ]
    # The first eval episode is the representative trajectory (identical
    # seed across contenders); the reward averages over all of them.
    first = episodes[0]
    metrics = dict(first.metrics)
    metrics["episode_reward"] = sum(e.reward for e in episodes) / len(episodes)
    metrics["timeline_events"] = float(
        len(env.template_spec.timeline.events)
    )
    return _result(
        name,
        env,
        seed=first.seed,
        windows=first.windows,
        metrics=metrics,
        started_at=started_at,
        started_clock=started_clock,
    )


@dataclass(frozen=True)
class LearnerComparison:
    """Everything ``learn compare`` produces."""

    results: tuple[RunResult, ...]
    report: ComparisonReport

    def render(self) -> str:
        return self.report.render()


def compare_learners(
    env_spec: EnvSpec,
    *,
    contenders: Sequence[str] = DEFAULT_CONTENDERS,
    train_episodes: int = 20,
    eval_episodes: int = 3,
    seed: int = 0,
    checkpoints: dict[str, str | Path] | None = None,
    progress: Callable[[str], None] | None = None,
) -> LearnerComparison:
    """Run every contender on the same episode shape and eval seeds.

    ``checkpoints`` maps an agent name to a saved training checkpoint;
    agents without one are trained inline for ``train_episodes``.
    """
    if not contenders:
        raise ConfigurationError("compare needs at least one contender")
    known = set(agent_registry()) | {"knapsack_ilp"}
    for name in contenders:
        if name not in known:
            choices = ", ".join(sorted(known))
            raise ConfigurationError(
                f"unknown contender {name!r}; known: {choices}"
            )
    checkpoints = dict(checkpoints or {})
    env = LoadBalanceEnv(
        env_spec, seed=episode_seed(seed, EVAL_STREAM, 0)
    )
    results = []
    for name in contenders:
        if progress is not None:
            progress(f"running contender {name!r}")
        if name == "knapsack_ilp":
            results.append(
                _run_ilp(env, seed=episode_seed(seed, EVAL_STREAM, 0))
            )
        else:
            results.append(
                _run_agent(
                    name,
                    env,
                    seed=seed,
                    eval_episodes=eval_episodes,
                    train_episodes=train_episodes,
                    checkpoint=checkpoints.get(name),
                )
            )
    return LearnerComparison(
        results=tuple(results), report=compare(results)
    )


def evaluate_checkpoint(
    checkpoint: str | Path,
    *,
    episodes: int = 3,
    seed: int | None = None,
) -> dict[str, Any]:
    """Greedy eval of a saved checkpoint on the shared eval seed stream."""
    data = load_checkpoint(checkpoint)
    spec = LearnSpec.from_dict(data["learn_spec"])
    base_seed = spec.seed if seed is None else int(seed)
    env = LoadBalanceEnv(
        spec.env, seed=episode_seed(base_seed, EVAL_STREAM, 0)
    )
    agent = make_agent(
        spec.agent,
        num_dips=env.num_dips,
        observation_size=env.observation_size,
        seed=spec.seed,
    )
    agent.load_state_dict(data["agent_state"])
    rows = []
    for k in range(episodes):
        result = run_episode(
            env,
            agent,
            seed=episode_seed(base_seed, EVAL_STREAM, k),
            training=False,
        )
        rows.append(
            {
                "episode": k,
                "seed": result.seed,
                "return": result.reward,
                **{
                    key: value
                    for key, value in result.metrics.items()
                    if value == value
                },
            }
        )
    returns = [row["return"] for row in rows]
    return {
        "learn_spec": spec.to_dict(),
        "agent": spec.agent.name,
        "trained_episodes": int(data["next_episode"]),
        "episodes": rows,
        "mean_return": sum(returns) / len(returns),
    }


__all__ = [
    "DEFAULT_CONTENDERS",
    "LearnerComparison",
    "compare_learners",
    "episode_reward",
    "evaluate_checkpoint",
]

"""A gym-style environment over the timed substrates (no gym dependency).

:class:`LoadBalanceEnv` exposes the repo's fluid and request substrates as
an episodic ``reset()/step(action)`` loop a learning agent can drive:

* one step = one telemetry window of the episode's timeline (the same
  windows :class:`~repro.api.result.RunWindow` records);
* the observation folds the window's per-DIP columns (``dip_metrics``)
  into a flat vector — latency, traffic share, and in-system population
  per DIP, plus the window drop fraction;
* the action is a weight vector over the pool (or a discrete reweight op
  in ``action_mode = "ops"``), applied as a weight override at the next
  window boundary through :meth:`TimelineStepper.set_weights` — exactly
  the hook the live service's ``POST /weights`` uses;
* the reward is the negative paper objective for the window: mean latency
  plus a drop penalty, both in milliseconds (latency capped at the drop
  penalty so an overloaded window cannot produce an unbounded term).

Episodes are seed-deterministic: the same :class:`EnvSpec` and reset seed
produce bit-identical observation/reward trajectories on both substrates,
because each episode is exactly one timed run of the underlying engine.
The request-substrate backend replicates :meth:`RequestCluster.run`'s
setup and drives the engine in window-sized ``run_stream`` segments —
the segmented run is event-for-event identical to the continuous one
(the pending arrival persists in the cluster's sorted stream between
segments), so stepping does not perturb determinism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.result import RunWindow
from repro.api.runners import build_cluster, expand_spec_chaos, pool_from_spec
from repro.api.spec import (
    ControllerSpec,
    EventSpec,
    ExperimentSpec,
    PoolSpec,
    TimelineSpec,
    WorkloadSpec,
)
from repro.api.timeline import (
    _EPS,
    BaseObserver,
    _dip_rows,
    _share,
    check_timeline_supported,
    fluid_timeline_stepper,
    schedule_request_timeline,
)
from repro.exceptions import ConfigurationError
from repro.lb import MuxPool, make_policy, policy_registry, policy_seed_kwargs
from repro.sim import RequestCluster

_INF = float("inf")

SUBSTRATES = ("fluid", "request")
ACTION_MODES = ("weights", "ops")


# ---------------------------------------------------------------------------
# episode shapes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnvScenario:
    """One named episode shape: a builder for its timed spec."""

    name: str
    summary: str
    build: Any  # () -> ExperimentSpec


def _outage_spec() -> ExperimentSpec:
    """The dip_outage_recovery shape: one DIP dies at 20s, returns at 60s."""
    window_s = 5.0
    recover_at = 60.0
    return ExperimentSpec(
        name="dip_outage_recovery",
        runner="fluid",
        pool=PoolSpec(kind="uniform", num_dips=8),
        workload=WorkloadSpec(load_fraction=0.6),
        controller=ControllerSpec(enabled=False),
        timeline=TimelineSpec(
            events=(
                EventSpec(time_s=20.0, kind="dip_fail", dip="DIP-1"),
                EventSpec(time_s=recover_at, kind="dip_recover", dip="DIP-1"),
            ),
            window_s=window_s,
            horizon_s=recover_at + 6 * window_s,
        ),
        seed=29,
    )


def _surge_spec() -> ExperimentSpec:
    """The diurnal_surge shape: offered rate ramps to 1.8x and back down."""
    window_s = 5.0
    peak_scale, ramp_steps, step_s = 1.8, 3, 15.0
    factors = [
        1.0 + (peak_scale - 1.0) * step / ramp_steps
        for step in range(1, ramp_steps + 1)
    ]
    ramp = factors + factors[-2::-1] + [1.0]
    events = tuple(
        EventSpec(time_s=(index + 1) * step_s, kind="arrival_scale", value=factor)
        for index, factor in enumerate(ramp)
    )
    return ExperimentSpec(
        name="diurnal_surge",
        runner="fluid",
        pool=PoolSpec(kind="uniform", num_dips=8),
        workload=WorkloadSpec(load_fraction=0.45),
        controller=ControllerSpec(enabled=False),
        timeline=TimelineSpec(
            events=events,
            window_s=window_s,
            horizon_s=events[-1].time_s + 3 * window_s,
        ),
        seed=31,
    )


def _antagonist_spec() -> ExperimentSpec:
    """Antagonist phases: noisy neighbors squeeze two DIPs in turn."""
    window_s = 5.0
    events = (
        EventSpec(time_s=15.0, kind="antagonist_phase", dip="DIP-0", value=2),
        EventSpec(time_s=30.0, kind="antagonist_phase", dip="DIP-1", value=3),
        EventSpec(time_s=45.0, kind="antagonist_phase", dip="DIP-0", value=0),
        EventSpec(time_s=60.0, kind="antagonist_phase", dip="DIP-1", value=0),
    )
    return ExperimentSpec(
        name="antagonist_phases",
        runner="fluid",
        pool=PoolSpec(kind="uniform", num_dips=8),
        workload=WorkloadSpec(load_fraction=0.5),
        controller=ControllerSpec(enabled=False),
        timeline=TimelineSpec(
            events=events,
            window_s=window_s,
            horizon_s=events[-1].time_s + 3 * window_s,
        ),
        seed=37,
    )


#: Built-in episode shapes, mirroring the registered scenarios' timelines
#: (controller off — the learner owns the weights).
ENV_SCENARIOS: dict[str, EnvScenario] = {
    scenario.name: scenario
    for scenario in (
        EnvScenario(
            name="dip_outage_recovery",
            summary="one DIP fails at 20s and recovers at 60s",
            build=_outage_spec,
        ),
        EnvScenario(
            name="diurnal_surge",
            summary="offered rate ramps to 1.8x and back down",
            build=_surge_spec,
        ),
        EnvScenario(
            name="antagonist_phases",
            summary="noisy neighbors squeeze two DIPs in turn",
            build=_antagonist_spec,
        ),
    )
}


def env_scenario_registry() -> dict[str, EnvScenario]:
    """The named episode shapes (copy — the registry stays immutable)."""
    return dict(ENV_SCENARIOS)


# ---------------------------------------------------------------------------
# the environment spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnvSpec:
    """Declarative description of one learning environment."""

    #: named episode shape (see :data:`ENV_SCENARIOS`) or a registered
    #: spec name / spec file with a non-empty timeline.
    scenario: str = "dip_outage_recovery"
    #: substrate the episodes execute on ("fluid" or "request").
    substrate: str = "fluid"
    #: "weights" takes a weight vector per step; "ops" takes a discrete
    #: reweight op (no-op / boost DIP i / shed DIP i).
    action_mode: str = "weights"
    #: multiplicative step of one "ops" boost/shed.
    op_step: float = 0.25
    #: reward penalty per unit drop fraction, in milliseconds (also the
    #: cap on the latency term, so rewards stay bounded).
    drop_penalty_ms: float = 500.0
    #: latency normalization for the observation vector.
    latency_scale_ms: float = 25.0
    #: optional overrides on the episode shape's pool/workload.
    num_dips: int | None = None
    load_fraction: float | None = None
    capacity_rps: float | None = None

    def __post_init__(self) -> None:
        if not self.scenario or not isinstance(self.scenario, str):
            raise ConfigurationError("scenario must be a non-empty string")
        if self.substrate not in SUBSTRATES:
            choices = ", ".join(SUBSTRATES)
            raise ConfigurationError(
                f"substrate must be one of: {choices}; got {self.substrate!r}"
            )
        if self.action_mode not in ACTION_MODES:
            choices = ", ".join(ACTION_MODES)
            raise ConfigurationError(
                f"action_mode must be one of: {choices}; "
                f"got {self.action_mode!r}"
            )
        if self.op_step <= 0:
            raise ConfigurationError("op_step must be positive")
        if self.drop_penalty_ms < 0:
            raise ConfigurationError("drop_penalty_ms must be >= 0")
        if self.latency_scale_ms <= 0:
            raise ConfigurationError("latency_scale_ms must be positive")
        if self.num_dips is not None and self.num_dips < 2:
            raise ConfigurationError("num_dips must be >= 2 or null")
        if self.load_fraction is not None and not (
            0 < self.load_fraction < 1
        ):
            raise ConfigurationError(
                "load_fraction must be in (0, 1) or null"
            )
        if self.capacity_rps is not None and self.capacity_rps <= 0:
            raise ConfigurationError("capacity_rps must be positive or null")


def episode_spec(env: EnvSpec, seed: int) -> ExperimentSpec:
    """The fully-resolved timed spec one episode of ``env`` executes.

    Pure per ``(env, seed)``: the controller is forced off (the learner
    owns the weights), the runner is forced to the env's substrate, and
    an armed chaos section is expanded here so the episode's timeline is
    already concrete.
    """
    scenario = ENV_SCENARIOS.get(env.scenario)
    if scenario is not None:
        base = scenario.build()
    else:
        from repro.api.registry import get_spec

        base = get_spec(env.scenario)
        if base.runner == "scenario":
            known = ", ".join(sorted(ENV_SCENARIOS))
            raise ConfigurationError(
                f"scenario {env.scenario!r} is a scenario bridge, not a "
                f"timed spec; learn episodes need a timeline (built-ins: "
                f"{known})"
            )
        if base.timeline.empty:
            raise ConfigurationError(
                f"scenario {env.scenario!r} has no timeline; learn "
                "episodes are timed runs"
            )
        base = replace(base, scenario=None)
    pool = base.pool
    if env.num_dips is not None:
        pool = replace(pool, num_dips=env.num_dips)
    if env.capacity_rps is not None:
        pool = replace(pool, vm=replace(pool.vm, capacity_rps=env.capacity_rps))
    workload = base.workload
    if env.load_fraction is not None:
        workload = replace(workload, load_fraction=env.load_fraction)
    spec = replace(
        base,
        runner=env.substrate,
        pool=pool,
        workload=workload,
        controller=replace(base.controller, enabled=False),
        seed=int(seed),
    )
    if env.substrate == "request" and not policy_registry()[
        spec.policy.name
    ].weighted:
        raise ConfigurationError(
            f"policy {spec.policy.name!r} cannot carry learned weights on "
            "the request substrate; pick a weighted policy (wrr, wrandom, "
            "wlc, dns)"
        )
    return expand_spec_chaos(spec)


# ---------------------------------------------------------------------------
# observations and rewards
# ---------------------------------------------------------------------------


def observation_from_window(
    window: RunWindow,
    dips: Sequence[str],
    *,
    latency_scale_ms: float,
) -> np.ndarray:
    """Fold one window's per-DIP columns into the flat observation vector.

    Layout: ``[latency_0..n, share_0..n, in_system_0..n, drop_fraction]``
    — latency normalized by ``latency_scale_ms`` (clipped at 10x), the
    in-system populations normalized by the pool total (plus one, so an
    idle pool maps to zeros rather than dividing by zero).
    """
    n = len(dips)
    obs = np.zeros(3 * n + 1, dtype=np.float64)
    in_system = np.zeros(n, dtype=np.float64)
    for i, dip in enumerate(dips):
        row = window.dip_metrics.get(dip, {})
        latency = row.get("mean_latency_ms")
        if latency is not None and latency == latency:
            obs[i] = min(latency / latency_scale_ms, 10.0)
        obs[n + i] = window.dip_share.get(dip, 0.0)
        in_system[i] = row.get("in_system", 0.0)
    obs[2 * n : 3 * n] = in_system / (1.0 + in_system.sum())
    drop = window.metrics.get("drop_fraction", 0.0)
    obs[3 * n] = drop if drop == drop else 1.0
    return obs


def window_reward(window: RunWindow, *, drop_penalty_ms: float) -> float:
    """Negative paper objective for one window, bounded below.

    ``-(mean latency + drop_penalty * drop_fraction)``, with the latency
    term capped at ``drop_penalty_ms`` (a saturated or fully-failed
    window counts as a full penalty, not minus infinity).
    """
    latency = window.metrics.get("mean_latency_ms", float("nan"))
    if latency != latency or latency > drop_penalty_ms:
        latency = drop_penalty_ms
    drop = window.metrics.get("drop_fraction", 0.0)
    if drop != drop:
        drop = 1.0
    return -(latency + drop_penalty_ms * drop)


# ---------------------------------------------------------------------------
# substrate backends
# ---------------------------------------------------------------------------


class _FluidBackend:
    """One fluid-substrate episode, driven through a TimelineStepper."""

    def __init__(self, spec: ExperimentSpec) -> None:
        cluster = build_cluster(spec)
        check_timeline_supported(
            spec.timeline,
            "fluid",
            dips=cluster.dips,
            controller_enabled=False,
        )
        self.cluster = cluster
        self.dips = tuple(cluster.dips)
        self.stepper = fluid_timeline_stepper(
            cluster,
            spec.timeline,
            BaseObserver(),
            controller=None,
            health=spec.health,
            seed=spec.seed,
        )

    def initial_window(self) -> RunWindow:
        state = self.cluster.state()
        return RunWindow(
            start_s=0.0,
            end_s=0.0,
            metrics={
                "mean_latency_ms": state.overall_mean_latency_ms(),
                "max_utilization": max(state.utilization.values()),
                "total_rate_rps": self.cluster.total_rate_rps,
            },
            dip_share=_share(state.rates_rps),
            dip_metrics=_dip_rows(state),
        )

    def set_weights(self, weights: Mapping[str, float]) -> None:
        self.stepper.set_weights(None, weights)

    def step(self) -> RunWindow:
        window = self.stepper.step()
        assert window is not None  # the env never steps past done
        return window


class _RequestBackend:
    """One request-substrate episode, stepped in window-sized segments.

    Replicates :meth:`RequestCluster.run`'s setup (measurement clock,
    arrival stream, utilization observations, probe cycles) and then
    drives the engine one window at a time via ``run_stream`` segments.
    The pending arrival persists in the cluster's sorted stream between
    segments, so the segmented run executes the exact event sequence of
    the continuous one — per-window folds of the metrics collector are
    bit-identical to the batch runner's post-hoc fold.
    """

    def __init__(self, spec: ExperimentSpec) -> None:
        dips = pool_from_spec(spec.pool, spec.seed)
        check_timeline_supported(
            spec.timeline,
            "request",
            dips=dips,
            controller_enabled=False,
        )
        self.dips = tuple(dips)
        total_capacity = sum(d.capacity_rps for d in dips.values())
        rate = spec.workload.load_fraction * total_capacity
        policy_kwargs = policy_seed_kwargs(spec.policy.name, seed=spec.seed)
        if spec.policy.num_muxes > 1:
            dip_list = list(dips)
            policy: Any = MuxPool(
                lambda: make_policy(spec.policy.name, dip_list, **policy_kwargs),
                num_muxes=spec.policy.num_muxes,
            )
        else:
            policy = make_policy(spec.policy.name, list(dips), **policy_kwargs)
        cluster = RequestCluster(
            dips,
            policy,
            rate_rps=rate,
            seed=spec.seed,
            health=spec.health,
            retry=spec.retry,
        )
        self.cluster = cluster
        self._window_s = spec.timeline.window_s
        self._duration = spec.timeline.duration_s()
        self._offset = spec.workload.warmup_s
        self._events = spec.timeline.ordered_events()
        self._index = 0
        schedule_request_timeline(
            cluster, spec.timeline, BaseObserver(), offset_s=self._offset
        )
        # -- RequestCluster.run() setup, verbatim ----------------------------
        total = self._offset + self._duration
        cluster._measure_from = self._offset
        cluster._total_duration = total
        cluster._arrival_clock = 0.0
        cluster._refill_arrivals()
        if cluster._observation_interval < total:
            cluster.scheduler.schedule_at(
                cluster._observation_interval, cluster._observe_utilization
            )
        if cluster._health is not None:
            base_seed = cluster._seed if cluster._seed is not None else 0
            for index, dip_id in enumerate(cluster.dips):
                phase = cluster._health.probe_phase_s(base_seed, index)
                if phase < total:
                    cluster.scheduler.schedule_at(
                        phase, (cluster._probe, dip_id)
                    )
        self._fire = (
            cluster._fire_arrival_retry
            if cluster._retry is not None
            else cluster._fire_arrival
        )
        # Warm-up runs before the first observation, exactly as run() would.
        self._run_to(self._offset)

    def _next_arrival(self) -> float:
        times = self.cluster._arrival_times
        if not times:
            return _INF
        pending = times[-1]
        return pending if pending < self.cluster._total_duration else _INF

    def _run_to(self, engine_time: float) -> None:
        self.cluster.scheduler.run_stream(
            engine_time, self._next_arrival(), self._fire
        )

    def initial_window(self) -> RunWindow:
        # No completions yet on the timed clock: the observation starts
        # from a zero window (the warm-up is deliberately not observable —
        # it is not part of the timed phase on any substrate).
        return RunWindow(start_s=0.0, end_s=0.0, metrics={})

    def set_weights(self, weights: Mapping[str, float]) -> None:
        self.cluster.set_weights(dict(weights))

    def step(self) -> RunWindow:
        start = self._index * self._window_s
        end = min(start + self._window_s, self._duration)
        self._run_to(self._offset + end)
        row = self.cluster.metrics.window_rows(
            window_s=self._window_s,
            start_s=self._offset + start,
            end_s=self._offset + end,
        )[0]
        labels = tuple(
            event.label()
            for event in self._events
            if start - _EPS <= event.time_s < end - _EPS
        )
        self._index += 1
        return RunWindow(
            start_s=start,
            end_s=end,
            metrics=dict(row["metrics"]),
            dip_share=dict(row["dip_share"]),
            events=labels,
            dip_metrics={
                dip: dict(columns)
                for dip, columns in row.get("dip_metrics", {}).items()
            },
        )


# ---------------------------------------------------------------------------
# the environment
# ---------------------------------------------------------------------------


class LoadBalanceEnv:
    """Episodic load-balancing environment over the timed substrates."""

    def __init__(self, spec: EnvSpec, *, seed: int = 0) -> None:
        self.spec = spec
        self._seed = int(seed)
        # Eagerly resolve (and validate) the episode shape.
        self.template_spec = episode_spec(spec, self._seed)
        self.dips = tuple(
            pool_from_spec(self.template_spec.pool, self.template_spec.seed)
        )
        self.num_dips = len(self.dips)
        self.window_s = self.template_spec.timeline.window_s
        self.horizon_s = self.template_spec.timeline.duration_s()
        #: steps per episode (one per telemetry window).
        self.num_steps = max(
            1, math.ceil(self.horizon_s / self.window_s - 1e-9)
        )
        #: flat observation vector size (3 columns per DIP + drop fraction).
        self.observation_size = 3 * self.num_dips + 1
        #: discrete action count in "ops" mode (no-op + boost/shed per DIP).
        self.num_actions = 1 + 2 * self.num_dips
        self._backend: _FluidBackend | _RequestBackend | None = None
        self._weights = np.full(self.num_dips, 1.0 / self.num_dips)
        self._step_index = 0
        self._windows: list[RunWindow] = []

    # -- episode control -------------------------------------------------------

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        """Start a fresh episode; returns the initial observation."""
        if seed is not None:
            self._seed = int(seed)
        spec = episode_spec(self.spec, self._seed)
        self.template_spec = spec
        if self.spec.substrate == "fluid":
            self._backend = _FluidBackend(spec)
        else:
            self._backend = _RequestBackend(spec)
        self._weights = np.full(self.num_dips, 1.0 / self.num_dips)
        self._step_index = 0
        self._windows = []
        return observation_from_window(
            self._backend.initial_window(),
            self.dips,
            latency_scale_ms=self.spec.latency_scale_ms,
        )

    def step(
        self, action: Any
    ) -> tuple[np.ndarray, float, bool, dict[str, Any]]:
        """Apply ``action``, run one window, return (obs, reward, done, info)."""
        if self._backend is None:
            raise ConfigurationError("call reset() before step()")
        if self._step_index >= self.num_steps:
            raise ConfigurationError(
                "episode is over; call reset() to start a new one"
            )
        weights = self._action_weights(action)
        if weights is not None:
            self._weights = weights
            self._backend.set_weights(
                {dip: float(w) for dip, w in zip(self.dips, weights)}
            )
        window = self._backend.step()
        self._windows.append(window)
        self._step_index += 1
        done = self._step_index >= self.num_steps
        obs = observation_from_window(
            window, self.dips, latency_scale_ms=self.spec.latency_scale_ms
        )
        reward = window_reward(
            window, drop_penalty_ms=self.spec.drop_penalty_ms
        )
        info = {
            "window": window,
            "weights": {
                dip: float(w) for dip, w in zip(self.dips, self._weights)
            },
        }
        return obs, reward, done, info

    @property
    def windows(self) -> tuple[RunWindow, ...]:
        """The telemetry windows of the episode so far."""
        return tuple(self._windows)

    # -- actions ---------------------------------------------------------------

    def _action_weights(self, action: Any) -> np.ndarray | None:
        """Resolve an action to a normalized weight vector (None = no-op)."""
        if action is None:
            return None
        if self.spec.action_mode == "ops":
            return self._op_weights(action)
        weights = np.asarray(action, dtype=np.float64)
        if weights.shape != (self.num_dips,):
            raise ConfigurationError(
                f"action must be a weight vector of length {self.num_dips}; "
                f"got shape {weights.shape}"
            )
        if not np.all(np.isfinite(weights)) or np.any(weights < 0):
            raise ConfigurationError(
                "action weights must be finite and >= 0"
            )
        total = weights.sum()
        if total <= 0:
            raise ConfigurationError(
                "action weights must include at least one positive entry"
            )
        return weights / total

    def _op_weights(self, action: Any) -> np.ndarray | None:
        index = int(action)
        if not 0 <= index < self.num_actions:
            raise ConfigurationError(
                f"ops action must be in [0, {self.num_actions}); got {index}"
            )
        if index == 0:
            return None
        dip, boost = divmod(index - 1, 2)
        factor = 1.0 + self.op_step if boost == 0 else 1.0 / (1.0 + self.op_step)
        weights = self._weights.copy()
        weights[dip] *= factor
        return weights / weights.sum()

    @property
    def op_step(self) -> float:
        return self.spec.op_step

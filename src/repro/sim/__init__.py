"""Cluster simulation substrate.

Two complementary simulators share the same DIP models:

* :class:`FluidCluster` — rate-based; maps weights/policies to per-DIP
  arrival rates and analytic latencies.  Fast enough for the KnapsackLB
  control loop and thousand-DIP studies.
* :class:`RequestCluster` — request-level discrete-event simulation with
  per-connection LB decisions and M/M/c/K queueing, producing latency
  distributions and CPU-utilization traces for the policy-comparison
  experiments.
"""

from repro.sim.client import ClientPool, WorkloadGenerator
from repro.sim.cluster import RequestCluster, RunResult
from repro.sim.engine import EventHandle, EventScheduler
from repro.sim.fleet import Fleet, FleetDeployment, FleetState
from repro.sim.fluid import (
    FluidCluster,
    FluidClusterState,
    PoolArrays,
    equal_split,
    least_connection_split,
    pool_arrays,
    power_of_two_split,
    split_for_policy,
    vector_mean_latency_ms,
    vector_utilization,
    weighted_split,
)
from repro.sim.queueing import DipStation, DipQueueStats
from repro.sim.request import Request, RequestOutcome
from repro.sim.trace import (
    DipSummary,
    MetricsCollector,
    RequestRecord,
    fraction_of_requests_improved,
    max_latency_gain,
)
from repro.sim.vip import Vip, Vnet

__all__ = [
    "ClientPool",
    "WorkloadGenerator",
    "RequestCluster",
    "RunResult",
    "EventHandle",
    "EventScheduler",
    "Fleet",
    "FleetDeployment",
    "FleetState",
    "FluidCluster",
    "FluidClusterState",
    "PoolArrays",
    "equal_split",
    "least_connection_split",
    "pool_arrays",
    "power_of_two_split",
    "split_for_policy",
    "vector_mean_latency_ms",
    "vector_utilization",
    "weighted_split",
    "DipStation",
    "DipQueueStats",
    "Request",
    "RequestOutcome",
    "DipSummary",
    "MetricsCollector",
    "RequestRecord",
    "fraction_of_requests_improved",
    "max_latency_gain",
    "Vip",
    "Vnet",
]

"""VIPs and VNETs — the service-facing side of the load balancer.

A :class:`Vip` is one externally-visible virtual IP fronting a pool of
DIPs; a :class:`Vnet` is the customer virtual network that contains the
DIPs (KLM instances are deployed per VNET, §3.2).  In this reproduction the
two are thin containers used to address DIPs, scope measurements and build
the datacenter-scale workloads of Table 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.backends.dip import DipServer
from repro.core.types import DipId, VipId
from repro.exceptions import ConfigurationError


@dataclass
class Vip:
    """A virtual IP and its DIP pool."""

    vip_id: VipId
    dips: dict[DipId, DipServer] = field(default_factory=dict)
    #: application URL the admin configures for KLM probing (§3.2).
    probe_url: str = "/"

    def add_dip(self, dip: DipServer) -> None:
        if dip.dip_id in self.dips:
            raise ConfigurationError(f"DIP {dip.dip_id!r} already in VIP {self.vip_id!r}")
        self.dips[dip.dip_id] = dip

    def remove_dip(self, dip_id: DipId) -> DipServer:
        try:
            return self.dips.pop(dip_id)
        except KeyError:
            raise ConfigurationError(f"DIP {dip_id!r} not in VIP {self.vip_id!r}") from None

    def dip(self, dip_id: DipId) -> DipServer:
        return self.dips[dip_id]

    def dip_ids(self) -> tuple[DipId, ...]:
        return tuple(self.dips)

    def healthy_dip_ids(self) -> tuple[DipId, ...]:
        return tuple(d for d, s in self.dips.items() if not s.failed)

    @property
    def total_capacity_rps(self) -> float:
        return sum(d.capacity_rps for d in self.dips.values() if not d.failed)

    def __len__(self) -> int:
        return len(self.dips)

    def __iter__(self) -> Iterator[DipServer]:
        return iter(self.dips.values())


@dataclass
class Vnet:
    """A customer virtual network holding one VIP (the paper's assumption)."""

    vnet_id: str
    vip: Vip

    @property
    def dips(self) -> Mapping[DipId, DipServer]:
        return self.vip.dips

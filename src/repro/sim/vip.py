"""VIPs and VNETs — the service-facing side of the load balancer.

A :class:`Vip` is one externally-visible virtual IP fronting a pool of
DIPs; a :class:`Vnet` is the customer virtual network that contains the
DIPs (KLM instances are deployed per VNET, §3.2).  A VIP carries its own
traffic description (aggregate rate, LB policy, programmed weights), so a
:class:`repro.sim.fleet.Fleet` can evaluate many VIPs contending for a
shared DIP fleet; in the single-VIP experiments the same container simply
holds the whole pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.backends.dip import DipServer
from repro.core.types import DipId, VipId
from repro.exceptions import ConfigurationError


@dataclass
class Vip:
    """A virtual IP, its DIP pool and its traffic/policy description."""

    vip_id: VipId
    dips: dict[DipId, DipServer] = field(default_factory=dict)
    #: application URL the admin configures for KLM probing (§3.2).
    probe_url: str = "/"
    #: aggregate client request rate arriving at this VIP.
    total_rate_rps: float = 0.0
    #: fluid LB policy splitting the VIP's traffic across its DIPs.
    policy_name: str = "wrr"
    #: per-DIP weights (used by the weighted policies; kept normalized-ish
    #: by the controller, but the fluid split renormalizes anyway).
    weights: dict[DipId, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_rate_rps < 0:
            raise ConfigurationError("total_rate_rps must be >= 0")
        if self.dips and not self.weights:
            share = 1.0 / len(self.dips)
            self.weights = {d: share for d in self.dips}

    def add_dip(self, dip: DipServer) -> None:
        if dip.dip_id in self.dips:
            raise ConfigurationError(f"DIP {dip.dip_id!r} already in VIP {self.vip_id!r}")
        self.dips[dip.dip_id] = dip
        self.weights.setdefault(dip.dip_id, 0.0)

    def remove_dip(self, dip_id: DipId) -> DipServer:
        try:
            server = self.dips.pop(dip_id)
        except KeyError:
            raise ConfigurationError(f"DIP {dip_id!r} not in VIP {self.vip_id!r}") from None
        self.weights.pop(dip_id, None)
        return server

    def dip(self, dip_id: DipId) -> DipServer:
        return self.dips[dip_id]

    def dip_ids(self) -> tuple[DipId, ...]:
        return tuple(self.dips)

    def healthy_dip_ids(self) -> tuple[DipId, ...]:
        return tuple(d for d, s in self.dips.items() if not s.failed)

    @property
    def total_capacity_rps(self) -> float:
        return sum(d.capacity_rps for d in self.dips.values() if not d.failed)

    def __len__(self) -> int:
        return len(self.dips)

    def __iter__(self) -> Iterator[DipServer]:
        return iter(self.dips.values())


@dataclass
class Vnet:
    """A customer virtual network holding one or more VIPs.

    The paper assumes one VIP per VNET (§3.2); that remains the default via
    the ``vip`` accessor, but a VNET may carry several VIPs whose pools all
    live in the same network (the Table 8 fleet mixes both shapes).
    """

    vnet_id: str
    vip: Vip
    extra_vips: list[Vip] = field(default_factory=list)

    @property
    def vips(self) -> tuple[Vip, ...]:
        return (self.vip, *self.extra_vips)

    def add_vip(self, vip: Vip) -> None:
        if vip.vip_id in {v.vip_id for v in self.vips}:
            raise ConfigurationError(f"VIP {vip.vip_id!r} already in VNET {self.vnet_id!r}")
        self.extra_vips.append(vip)

    @property
    def dips(self) -> Mapping[DipId, DipServer]:
        merged: dict[DipId, DipServer] = {}
        for vip in self.vips:
            merged.update(vip.dips)
        return merged

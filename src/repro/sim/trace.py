"""Metrics collection for simulation runs.

The paper's evaluation reports per-DIP (and per-DIP-type) mean latency, CPU
utilization, request counts and end-to-end latency distributions; this
module gathers those from either simulator and renders simple summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.types import DipId


@dataclass
class RequestRecord:
    """One completed (or dropped) request as seen by the metrics collector."""

    dip: DipId
    latency_ms: float
    completed: bool
    timestamp: float = 0.0


@dataclass
class DipSummary:
    """Aggregate statistics for one DIP over a run."""

    dip: DipId
    requests: int
    mean_latency_ms: float
    p50_latency_ms: float
    p90_latency_ms: float
    p99_latency_ms: float
    cpu_utilization: float
    drop_fraction: float


class MetricsCollector:
    """Accumulates request records and utilization observations."""

    def __init__(self) -> None:
        self._records: list[RequestRecord] = []
        self._utilization: dict[DipId, float] = {}

    # -- ingestion -------------------------------------------------------------

    def record_request(
        self,
        dip: DipId,
        latency_ms: float | None,
        *,
        completed: bool = True,
        timestamp: float = 0.0,
    ) -> None:
        self._records.append(
            RequestRecord(
                dip=dip,
                latency_ms=float(latency_ms) if latency_ms is not None else float("nan"),
                completed=completed,
                timestamp=timestamp,
            )
        )

    def record_utilization(self, utilization: Mapping[DipId, float]) -> None:
        self._utilization.update({d: float(u) for d, u in utilization.items()})

    # -- access ---------------------------------------------------------------

    @property
    def records(self) -> tuple[RequestRecord, ...]:
        return tuple(self._records)

    @property
    def total_requests(self) -> int:
        return len(self._records)

    def latencies_ms(self, *, dips: Iterable[DipId] | None = None) -> np.ndarray:
        """Latencies of completed requests, optionally restricted to ``dips``."""
        selected = set(dips) if dips is not None else None
        values = [
            r.latency_ms
            for r in self._records
            if r.completed and (selected is None or r.dip in selected)
        ]
        return np.asarray(values, dtype=float)

    def request_share(self) -> dict[DipId, float]:
        """Fraction of all requests routed to each DIP."""
        counts: dict[DipId, int] = {}
        for record in self._records:
            counts[record.dip] = counts.get(record.dip, 0) + 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {dip: count / total for dip, count in counts.items()}

    def mean_latency_ms(self, *, dips: Iterable[DipId] | None = None) -> float:
        values = self.latencies_ms(dips=dips)
        return float(values.mean()) if values.size else float("nan")

    def percentile_latency_ms(
        self, percentile: float, *, dips: Iterable[DipId] | None = None
    ) -> float:
        values = self.latencies_ms(dips=dips)
        return float(np.percentile(values, percentile)) if values.size else float("nan")

    def drop_fraction(self, *, dips: Iterable[DipId] | None = None) -> float:
        selected = set(dips) if dips is not None else None
        relevant = [
            r for r in self._records if selected is None or r.dip in selected
        ]
        if not relevant:
            return 0.0
        dropped = sum(1 for r in relevant if not r.completed)
        return dropped / len(relevant)

    def utilization(self) -> dict[DipId, float]:
        return dict(self._utilization)

    def dip_summary(self, dip: DipId) -> DipSummary:
        latencies = self.latencies_ms(dips=[dip])
        requests = sum(1 for r in self._records if r.dip == dip)
        return DipSummary(
            dip=dip,
            requests=requests,
            mean_latency_ms=float(latencies.mean()) if latencies.size else float("nan"),
            p50_latency_ms=float(np.percentile(latencies, 50)) if latencies.size else float("nan"),
            p90_latency_ms=float(np.percentile(latencies, 90)) if latencies.size else float("nan"),
            p99_latency_ms=float(np.percentile(latencies, 99)) if latencies.size else float("nan"),
            cpu_utilization=self._utilization.get(dip, float("nan")),
            drop_fraction=self.drop_fraction(dips=[dip]),
        )

    def summaries(self) -> dict[DipId, DipSummary]:
        dips = {r.dip for r in self._records} | set(self._utilization)
        return {dip: self.dip_summary(dip) for dip in sorted(dips)}

    # -- comparisons ------------------------------------------------------------

    def latency_cdf(self, *, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """(latency, cumulative fraction) pairs for CDF plotting/reporting."""
        values = np.sort(self.latencies_ms())
        if values.size == 0:
            return np.array([]), np.array([])
        fractions = np.linspace(0, 1, points)
        latencies = np.quantile(values, fractions)
        return latencies, fractions


def fraction_of_requests_improved(
    baseline: MetricsCollector, improved: MetricsCollector
) -> float:
    """Fraction of the latency distribution where ``improved`` beats ``baseline``.

    The paper states results like "cuts latency by up to 45 % for 79 % of
    requests": we compare the two latency distributions quantile-by-quantile
    and report the fraction of quantiles where the improved system is
    strictly faster.
    """
    base = np.sort(baseline.latencies_ms())
    new = np.sort(improved.latencies_ms())
    if base.size == 0 or new.size == 0:
        return 0.0
    quantiles = np.linspace(0.01, 0.99, 99)
    base_q = np.quantile(base, quantiles)
    new_q = np.quantile(new, quantiles)
    return float(np.mean(new_q < base_q))


def max_latency_gain(
    baseline: MetricsCollector, improved: MetricsCollector
) -> float:
    """Maximum relative latency reduction across quantiles (paper's "up to X %")."""
    base = np.sort(baseline.latencies_ms())
    new = np.sort(improved.latencies_ms())
    if base.size == 0 or new.size == 0:
        return 0.0
    quantiles = np.linspace(0.05, 0.99, 95)
    base_q = np.quantile(base, quantiles)
    new_q = np.quantile(new, quantiles)
    gains = (base_q - new_q) / np.maximum(base_q, 1e-9)
    return float(np.max(gains))

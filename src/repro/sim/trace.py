"""Metrics collection for simulation runs.

The paper's evaluation reports per-DIP (and per-DIP-type) mean latency, CPU
utilization, request counts and end-to-end latency distributions; this
module gathers those from either simulator and renders simple summaries.

Storage is columnar: per-request fields land in chunk-grown numpy append
buffers (latency, DIP code, completed flag, timestamp) with DIP ids
interned to integer codes, so a million-request run costs four staged
appends per request instead of a ``RequestRecord`` allocation, and every
aggregate (``latencies_ms``, ``request_share``, ``drop_fraction``,
``summaries``) is a vectorized single pass.  Ingestion goes through small
Python-list staging buffers that are bulk-converted into the numpy columns
every ``_CHUNK`` records (one vectorized assignment per chunk — scalar
numpy ``__setitem__`` per request would cost 2x the append).  ``records``
survives as a lazy compatibility view that materialises ``RequestRecord``
objects on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.types import DipId
from repro.exceptions import ConfigurationError

#: staged records per bulk conversion into the numpy columns.
_CHUNK = 8192

_NAN = float("nan")


@dataclass
class RequestRecord:
    """One completed (or dropped) request as seen by the metrics collector."""

    dip: DipId
    latency_ms: float
    completed: bool
    timestamp: float = 0.0


@dataclass
class DipSummary:
    """Aggregate statistics for one DIP over a run."""

    dip: DipId
    requests: int
    mean_latency_ms: float
    p50_latency_ms: float
    p90_latency_ms: float
    p99_latency_ms: float
    cpu_utilization: float
    drop_fraction: float


class MetricsCollector:
    """Accumulates request records and utilization observations."""

    __slots__ = (
        "_dip_ids",
        "_dip_code",
        "_lat",
        "_code",
        "_done",
        "_ts",
        "_n",
        "_p_lat",
        "_p_code",
        "_p_done",
        "_p_ts",
        "_att",
        "_tmo",
        "_gup",
        "_p_over",
        "_extended",
        "_utilization",
    )

    def __init__(self) -> None:
        self._dip_ids: list[DipId] = []
        self._dip_code: dict[DipId, int] = {}
        # Committed columnar storage (first _n entries are valid) ...
        self._lat = np.empty(_CHUNK, dtype=np.float64)
        self._code = np.empty(_CHUNK, dtype=np.int32)
        self._done = np.empty(_CHUNK, dtype=bool)
        self._ts = np.empty(_CHUNK, dtype=np.float64)
        self._n = 0
        # ... and the staging lists bulk-flushed into it per chunk.
        self._p_lat: list[float] = []
        self._p_code: list[int] = []
        self._p_done: list[bool] = []
        self._p_ts: list[float] = []
        # Resilience columns (attempts / timed_out / gave_up), allocated
        # lazily on the first record_request_full so the plain path never
        # pays for them.
        self._att: np.ndarray | None = None
        self._tmo: np.ndarray | None = None
        self._gup: np.ndarray | None = None
        #: sparse staging for the resilience columns: (staged index,
        #: attempts, timed_out, gave_up) only for rows that differ from the
        #: no-retry defaults.  Flush fills the defaults vectorized and
        #: scatters these on top, so the overwhelmingly common default row
        #: (one attempt, clean finish) stages exactly like a plain record.
        self._p_over: list[tuple] = []
        self._extended = False
        self._utilization: dict[DipId, float] = {}

    # -- ingestion -------------------------------------------------------------

    def _grow(self, need: int) -> None:
        """Ensure the committed columns can hold ``need`` records."""
        capacity = self._lat.shape[0]
        if need <= capacity:
            return
        n = self._n
        while capacity < need:
            capacity *= 2
        names = ["_lat", "_code", "_done", "_ts"]
        if self._extended:
            names += ["_att", "_tmo", "_gup"]
        for name in names:
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[:n] = old[:n]
            setattr(self, name, new)

    def _enable_extended(self) -> None:
        """Allocate the resilience columns, padding records already taken.

        Records ingested before (committed or staged) get the no-retry
        defaults: one attempt, never timed out, never gave up.
        """
        capacity = self._lat.shape[0]
        self._att = np.ones(capacity, dtype=np.int32)
        self._tmo = np.zeros(capacity, dtype=bool)
        self._gup = np.zeros(capacity, dtype=bool)
        self._extended = True

    def enable_resilience_columns(self) -> None:
        """Force-allocate the attempts/timed_out/gave_up columns.

        The retry path calls this up front so a run with zero
        failures/retries still reports the resilience columns (all
        defaults), even though every record went down the plain path.
        """
        if not self._extended:
            self._enable_extended()

    def _flush(self) -> None:
        """Bulk-convert the staged records into the numpy columns."""
        staged = len(self._p_lat)
        if not staged:
            return
        n = self._n
        need = n + staged
        self._grow(need)
        self._lat[n:need] = self._p_lat
        self._code[n:need] = self._p_code
        self._done[n:need] = self._p_done
        self._ts[n:need] = self._p_ts
        if self._extended:
            # Defaults vectorized, then the rare non-default rows scattered
            # on top (see _p_over).
            self._att[n:need] = 1
            self._tmo[n:need] = False
            self._gup[n:need] = False
            if self._p_over:
                att, tmo, gup = self._att, self._tmo, self._gup
                for index, attempts, timed_out, gave_up in self._p_over:
                    row = n + index
                    att[row] = attempts
                    tmo[row] = timed_out
                    gup[row] = gave_up
                self._p_over.clear()
        self._n = need
        self._p_lat.clear()
        self._p_code.clear()
        self._p_done.clear()
        self._p_ts.clear()

    def record_request(
        self,
        dip: DipId,
        latency_ms: float | None,
        completed: bool = True,
        timestamp: float = 0.0,
    ) -> None:
        code = self._dip_code.get(dip)
        if code is None:
            code = len(self._dip_ids)
            self._dip_code[dip] = code
            self._dip_ids.append(dip)
        staged = self._p_lat
        staged.append(latency_ms if latency_ms is not None else _NAN)
        self._p_code.append(code)
        self._p_done.append(completed)
        self._p_ts.append(timestamp)
        if len(staged) >= _CHUNK:
            self._flush()

    def record_request_full(
        self,
        dip: DipId,
        latency_ms: float | None,
        completed: bool,
        timestamp: float,
        attempts: int,
        timed_out: bool,
        gave_up: bool,
    ) -> None:
        """One *logical* request with its resilience columns.

        The retry path records one row per logical request (not per
        attempt): ``latency_ms`` spans first arrival to final completion,
        ``attempts`` counts routing attempts, ``timed_out`` marks any
        attempt exceeding the request timeout and ``gave_up`` marks
        requests the retry policy abandoned.
        """
        if not self._extended:
            self._enable_extended()
        code = self._dip_code.get(dip)
        if code is None:
            code = len(self._dip_ids)
            self._dip_code[dip] = code
            self._dip_ids.append(dip)
        staged = self._p_lat
        staged.append(latency_ms if latency_ms is not None else _NAN)
        self._p_code.append(code)
        self._p_done.append(completed)
        self._p_ts.append(timestamp)
        if attempts != 1 or timed_out or gave_up:
            self._p_over.append((len(staged) - 1, attempts, timed_out, gave_up))
        if len(staged) >= _CHUNK:
            self._flush()

    def record_utilization(self, utilization: Mapping[DipId, float]) -> None:
        self._utilization.update({d: float(u) for d, u in utilization.items()})

    def extend_columns(
        self,
        dip: DipId,
        latency_ms: np.ndarray,
        completed: np.ndarray,
        timestamp: np.ndarray,
    ) -> None:
        """Bulk-append one DIP's pre-built record columns.

        This is the shard-merge ingestion path: a worker hands back whole
        numpy columns (arrival-ordered, NaN latency for drops) and they land
        in the committed storage with one vectorized assignment per column —
        no per-request staging, no pickled record objects.  Append order is
        the caller's contract: merging shards in global DIP order makes the
        merged collector independent of the shard count.
        """
        count = len(latency_ms)
        if not (count == len(completed) == len(timestamp)):
            raise ConfigurationError("extend_columns needs equal-length columns")
        if count == 0:
            # Still intern the DIP so request_share/summaries know about it.
            if dip not in self._dip_code:
                self._dip_code[dip] = len(self._dip_ids)
                self._dip_ids.append(dip)
            return
        self._flush()
        code = self._dip_code.get(dip)
        if code is None:
            code = len(self._dip_ids)
            self._dip_code[dip] = code
            self._dip_ids.append(dip)
        n = self._n
        need = n + count
        self._grow(need)
        self._lat[n:need] = latency_ms
        self._code[n:need] = code
        self._done[n:need] = completed
        self._ts[n:need] = timestamp
        if self._extended:
            self._att[n:need] = 1
            self._tmo[n:need] = False
            self._gup[n:need] = False
        self._n = need

    # -- access ---------------------------------------------------------------

    @property
    def records(self) -> tuple[RequestRecord, ...]:
        """Per-request records, materialised lazily from the columns."""
        self._flush()
        ids = self._dip_ids
        n = self._n
        lat, code, done, ts = self._lat, self._code, self._done, self._ts
        return tuple(
            RequestRecord(
                dip=ids[code[i]],
                latency_ms=float(lat[i]),
                completed=bool(done[i]),
                timestamp=float(ts[i]),
            )
            for i in range(n)
        )

    @property
    def total_requests(self) -> int:
        return self._n + len(self._p_lat)

    def _dip_mask(self, dips: Iterable[DipId]) -> np.ndarray:
        codes = [self._dip_code[d] for d in dips if d in self._dip_code]
        if not codes:
            return np.zeros(self._n, dtype=bool)
        return np.isin(self._code[: self._n], codes)

    def latencies_ms(self, *, dips: Iterable[DipId] | None = None) -> np.ndarray:
        """Latencies of completed requests, optionally restricted to ``dips``."""
        self._flush()
        mask = self._done[: self._n]
        if dips is not None:
            mask = mask & self._dip_mask(dips)
        return self._lat[: self._n][mask].astype(float, copy=True)

    def request_share(self) -> dict[DipId, float]:
        """Fraction of all requests routed to each DIP."""
        self._flush()
        n = self._n
        if n == 0:
            return {}
        counts = np.bincount(self._code[:n], minlength=len(self._dip_ids)).tolist()
        return {
            dip: counts[code] / n
            for code, dip in enumerate(self._dip_ids)
            if counts[code]
        }

    def mean_latency_ms(self, *, dips: Iterable[DipId] | None = None) -> float:
        values = self.latencies_ms(dips=dips)
        return float(values.mean()) if values.size else float("nan")

    def percentile_latency_ms(
        self, percentile: float, *, dips: Iterable[DipId] | None = None
    ) -> float:
        values = self.latencies_ms(dips=dips)
        return float(np.percentile(values, percentile)) if values.size else float("nan")

    def drop_fraction(self, *, dips: Iterable[DipId] | None = None) -> float:
        self._flush()
        n = self._n
        done = self._done[:n]
        if dips is not None:
            mask = self._dip_mask(dips)
            total = int(mask.sum())
            if total == 0:
                return 0.0
            return float((~done[mask]).sum() / total)
        if n == 0:
            return 0.0
        return float((~done).sum() / n)

    def utilization(self) -> dict[DipId, float]:
        return dict(self._utilization)

    def retry_summary(self) -> dict[str, float] | None:
        """Aggregate resilience metrics, or ``None`` off the retry path.

        ``attempts_mean`` averages routing attempts per logical request;
        the fractions count requests that were retried at least once,
        timed out at least once, or were abandoned by the retry policy.
        """
        if not self._extended:
            return None
        self._flush()
        n = self._n
        if n == 0:
            return {
                "attempts_mean": float("nan"),
                "retried_fraction": 0.0,
                "timed_out_fraction": 0.0,
                "gave_up_fraction": 0.0,
            }
        att = self._att[:n]
        return {
            "attempts_mean": float(att.mean()),
            "retried_fraction": float((att > 1).sum() / n),
            "timed_out_fraction": float(self._tmo[:n].sum() / n),
            "gave_up_fraction": float(self._gup[:n].sum() / n),
        }

    def dip_summary(self, dip: DipId) -> DipSummary:
        latencies = self.latencies_ms(dips=[dip])  # flushes staging
        code = self._dip_code.get(dip)
        if code is None:
            requests = 0
        else:
            requests = int((self._code[: self._n] == code).sum())
        if latencies.size:
            p50, p90, p99 = np.percentile(latencies, [50, 90, 99])
            mean = float(latencies.mean())
        else:
            mean = p50 = p90 = p99 = float("nan")
        return DipSummary(
            dip=dip,
            requests=requests,
            mean_latency_ms=mean,
            p50_latency_ms=float(p50),
            p90_latency_ms=float(p90),
            p99_latency_ms=float(p99),
            cpu_utilization=self._utilization.get(dip, float("nan")),
            drop_fraction=self.drop_fraction(dips=[dip]),
        )

    def summaries(self) -> dict[DipId, DipSummary]:
        dips = set(self._dip_ids) | set(self._utilization)
        return {dip: self.dip_summary(dip) for dip in sorted(dips)}

    def window_rows(
        self, *, window_s: float, start_s: float, end_s: float
    ) -> list[dict]:
        """Windowed time-series over ``[start_s, end_s)`` by record timestamp.

        One vectorized pass buckets every record into ``window_s``-wide
        windows (timestamps are completion times, so a window reflects the
        requests that *finished* in it); each row carries the window bounds,
        headline metrics (request count, latency mean/p50/p99 of completed
        requests, drop fraction), the per-DIP request share, and per-DIP
        columns (``dip_metrics``: mean latency, drop fraction, and the
        Little's-law in-system estimate Σlatency/window for each DIP that
        saw traffic).  Rows for empty windows are emitted too — a total
        outage should show as a flat-zero window, not a missing one.
        """
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if end_s <= start_s:
            return []
        self._flush()
        n = self._n
        num_windows = int(np.ceil((end_s - start_s) / window_s - 1e-9))
        ts = self._ts[:n]
        in_range = (ts >= start_s) & (ts < end_s)
        # One sort groups every record by window; per-window slices then
        # come from searchsorted boundaries instead of a full-array mask
        # per window (O(records · windows) would bite at 1M requests).
        index = np.floor((ts[in_range] - start_s) / window_s).astype(np.int64)
        order = np.argsort(index, kind="stable")
        index = index[order]
        lat = self._lat[:n][in_range][order]
        done = self._done[:n][in_range][order]
        code = self._code[:n][in_range][order]
        extended = self._extended
        if extended:
            att = self._att[:n][in_range][order]
            tmo = self._tmo[:n][in_range][order]
            gup = self._gup[:n][in_range][order]
        bounds = np.searchsorted(index, np.arange(num_windows + 1))
        rows: list[dict] = []
        for w in range(num_windows):
            window = slice(bounds[w], bounds[w + 1])
            total = int(bounds[w + 1] - bounds[w])
            window_done = done[window]
            completed_lat = lat[window][window_done]
            if completed_lat.size:
                mean = float(completed_lat.mean())
                p50, p99 = (
                    float(v) for v in np.percentile(completed_lat, [50, 99])
                )
            else:
                mean = p50 = p99 = _NAN
            drops = total - int(window_done.sum())
            share: dict[DipId, float] = {}
            dip_metrics: dict[DipId, dict[str, float]] = {}
            if total:
                window_code = code[window]
                counts = np.bincount(window_code, minlength=len(self._dip_ids))
                share = {
                    dip: counts[c] / total
                    for c, dip in enumerate(self._dip_ids)
                    if counts[c]
                }
                # Per-DIP columns via one more bincount pass: completed
                # counts, latency sums (mean + the Little's-law in-system
                # estimate Σlatency / window duration follow directly).
                window_lat = lat[window]
                done_counts = np.bincount(
                    window_code[window_done], minlength=len(self._dip_ids)
                )
                lat_sums = np.bincount(
                    window_code[window_done],
                    weights=window_lat[window_done],
                    minlength=len(self._dip_ids),
                )
                span_s = min(start_s + (w + 1) * window_s, end_s) - (
                    start_s + w * window_s
                )
                for c, dip in enumerate(self._dip_ids):
                    if not counts[c]:
                        continue
                    dip_done = int(done_counts[c])
                    row = {
                        "requests": float(counts[c]),
                        "in_system": (
                            float(lat_sums[c]) / 1000.0 / span_s
                            if span_s > 0
                            else 0.0
                        ),
                        "drop_fraction": float(
                            (counts[c] - dip_done) / counts[c]
                        ),
                    }
                    # All-dropped windows omit the latency column (instead
                    # of NaN) so rows stay JSON-round-trippable by equality.
                    if dip_done:
                        row["mean_latency_ms"] = float(lat_sums[c] / dip_done)
                    dip_metrics[dip] = row
            metrics = {
                "requests": float(total),
                "mean_latency_ms": mean,
                "p50_latency_ms": p50,
                "p99_latency_ms": p99,
                "drop_fraction": drops / total if total else 0.0,
            }
            if extended and total:
                metrics["retried_fraction"] = float(
                    (att[window] > 1).sum() / total
                )
                metrics["timed_out_fraction"] = float(tmo[window].sum() / total)
                metrics["gave_up_fraction"] = float(gup[window].sum() / total)
            rows.append(
                {
                    "start_s": start_s + w * window_s,
                    "end_s": min(start_s + (w + 1) * window_s, end_s),
                    "metrics": metrics,
                    "dip_share": share,
                    "dip_metrics": dip_metrics,
                }
            )
        return rows

    # -- comparisons ------------------------------------------------------------

    def latency_cdf(self, *, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """(latency, cumulative fraction) pairs for CDF plotting/reporting."""
        values = np.sort(self.latencies_ms())
        if values.size == 0:
            return np.array([]), np.array([])
        fractions = np.linspace(0, 1, points)
        latencies = np.quantile(values, fractions)
        return latencies, fractions


def fraction_of_requests_improved(
    baseline: MetricsCollector, improved: MetricsCollector
) -> float:
    """Fraction of the latency distribution where ``improved`` beats ``baseline``.

    The paper states results like "cuts latency by up to 45 % for 79 % of
    requests": we compare the two latency distributions quantile-by-quantile
    and report the fraction of quantiles where the improved system is
    strictly faster.
    """
    base = np.sort(baseline.latencies_ms())
    new = np.sort(improved.latencies_ms())
    if base.size == 0 or new.size == 0:
        return 0.0
    quantiles = np.linspace(0.01, 0.99, 99)
    base_q = np.quantile(base, quantiles)
    new_q = np.quantile(new, quantiles)
    return float(np.mean(new_q < base_q))


def max_latency_gain(
    baseline: MetricsCollector, improved: MetricsCollector
) -> float:
    """Maximum relative latency reduction across quantiles (paper's "up to X %")."""
    base = np.sort(baseline.latencies_ms())
    new = np.sort(improved.latencies_ms())
    if base.size == 0 or new.size == 0:
        return 0.0
    quantiles = np.linspace(0.05, 0.99, 95)
    base_q = np.quantile(base, quantiles)
    new_q = np.quantile(new, quantiles)
    gains = (base_q - new_q) / np.maximum(base_q, 1e-9)
    return float(np.max(gains))

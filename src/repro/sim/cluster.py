"""Request-level cluster simulator.

Couples a workload generator, an LB policy (or MUX pool) and per-DIP
queueing stations into the end-to-end system of Fig. 1/Fig. 2: clients send
requests to the VIP, a MUX picks the DIP for each new connection, the DIP
serves the request through an M/M/c/K queue, and the client-observed latency
is recorded.  This is the substrate behind the policy-comparison experiments
(Figs. 3, 4, 12, 13, 14 and Tables 1, 4, 5).

Hot-path design (``BENCH_request_engine.json`` tracks the speedup):

* **streaming arrivals** — instead of pre-scheduling every Poisson arrival
  upfront (O(total requests) heap entries before the first event fires),
  the cluster keeps exactly one pending arrival event; firing it submits
  the request and schedules the next arrival from a batch of
  :meth:`~repro.sim.client.WorkloadGenerator.next_batch` draws.  Peak heap
  size is O(in-flight requests), independent of run length.
* **resolved dispatch** — whether the policy is a :class:`MuxPool`, needs
  ``advance_time`` (DNS) or inspects the flow 5-tuple is decided once at
  construction, not re-``isinstance``-checked per request; FlowKey objects
  are only built for policies that declare ``uses_flow``.
* **one submit path** — warm-up and measured requests flow through the same
  ``_arrival`` handler; whether a request is recorded is decided by its
  arrival time against the warm-up boundary (the seed had a copy-pasted
  ``_warmup_request`` twin).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

if TYPE_CHECKING:  # sim is below api in the layer map: type-only import
    from repro.api.spec import (
        ArrivalSpec,
        HealthCheckSpec,
        RetryPolicy,
        ServiceSpec,
    )

from repro.backends.dip import DipServer
from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb.base import FlowKey, Policy
from repro.lb.dns_lb import DnsWeightedPolicy
from repro.lb.mux import MuxPool
from repro.sim.client import ClientPool, WorkloadGenerator
from repro.sim.engine import EventScheduler
from repro.sim.queueing import DipStation
from repro.sim.request import Request, RequestOutcome
from repro.sim.trace import MetricsCollector

#: Poisson arrivals drawn per vectorized workload call.
ARRIVAL_BATCH = 4096

_INF = float("inf")

#: retries the budget always allows, so low-volume runs can still retry.
_RETRY_BURST = 10


@dataclass
class RunResult:
    """Outcome of one request-level simulation run."""

    metrics: MetricsCollector
    duration_s: float
    requests_submitted: int
    requests_completed: int
    requests_dropped: int

    @property
    def drop_fraction(self) -> float:
        if self.requests_submitted == 0:
            return 0.0
        return self.requests_dropped / self.requests_submitted


class RequestCluster:
    """A VIP, its DIP pool, one LB policy and an open-loop client workload."""

    def __init__(
        self,
        dips: Mapping[DipId, DipServer],
        policy: Policy | MuxPool,
        *,
        rate_rps: float,
        seed: int | None = None,
        queue_capacity: int = 256,
        utilization_observation_interval_s: float = 0.25,
        clients: ClientPool | None = None,
        health: "HealthCheckSpec | None" = None,
        retry: "RetryPolicy | None" = None,
        arrival: "ArrivalSpec | None" = None,
        service: "ServiceSpec | None" = None,
    ) -> None:
        if not dips:
            raise ConfigurationError("cluster needs at least one DIP")
        self.dips = dict(dips)
        self.policy = policy
        self.scheduler = EventScheduler()
        # Non-Poisson arrival kinds stream through an ArrivalProcess on
        # dedicated RNG lanes; the Poisson default keeps the legacy inline
        # draw, bit-identical with pre-existing artifacts.
        arrivals = None
        if arrival is not None and arrival.kind != "poisson":
            from repro.workloads.arrivals import make_arrival_process

            arrivals = make_arrival_process(arrival, rate_rps, seed=seed)
        self.workload = WorkloadGenerator(
            rate_rps, clients=clients, seed=seed, arrivals=arrivals
        )
        #: the construction-time rate `scale_arrivals` factors are relative
        #: to (a preserve_rate trace pins it to the trace's own rate).
        self._base_rate_rps = float(self.workload.rate_rps)
        self.metrics = MetricsCollector()
        self._seed = seed
        # Resilience layers (both off by default — the oracle-failure /
        # no-retry hot path below stays untouched when they are).
        self._health = health if health is not None and health.enabled else None
        self._retry = retry if retry is not None and retry.enabled else None
        sink = (
            self._on_request_done_retry
            if self._retry is not None
            else self._on_request_done
        )
        self._stations: dict[DipId, DipStation] = {
            dip_id: DipStation(
                server,
                self.scheduler,
                queue_capacity=queue_capacity,
                seed=None if seed is None else seed + index + 1,
                completion_sink=sink,
                service=service,
            )
            for index, (dip_id, server) in enumerate(self.dips.items())
        }
        self._observation_interval = utilization_observation_interval_s
        self._submitted = 0
        self._completed = 0
        self._dropped = 0

        # Policy dispatch resolved once, not per request.
        self._mux = isinstance(policy, MuxPool)
        self._dns = policy if isinstance(policy, DnsWeightedPolicy) else None
        self._needs_flow = getattr(policy, "uses_flow", True)
        self._track_conns = getattr(policy, "uses_connection_counts", True)
        self._select = policy.select
        self._open = policy.on_connection_open
        self._close = policy.on_connection_close

        # Streaming-arrival state (filled per run()).
        self._client_ips = self.workload.client_ips()
        self._vip_address = self.workload.clients.vip_address
        self._vip_port = self.workload.clients.vip_port
        # Arrival buffers hold the *reversed* batch so pop() walks arrivals
        # in time order without index bookkeeping.
        self._arrival_times: list[float] = []
        self._arrival_clients: list[int] = []
        self._arrival_ports: list[int] = []
        self._arrival_clock = 0.0
        self._next_request_id = 0
        self._measure_from = 0.0
        self._total_duration = 0.0
        #: recycled Request objects (bounded by the in-flight count).
        self._free_requests: list[Request] = []
        self._record = self.metrics.record_request

        # Probe-based health state (see HealthCheckSpec): LB-side health is
        # *learned* from the probe state machine, never flipped by events.
        if self._health is not None:
            self._probe_fail = {dip_id: 0 for dip_id in self.dips}
            self._probe_ok = {dip_id: 0 for dip_id in self.dips}
            #: DIPs the probe machine currently considers down.
            self._lb_down: set[DipId] = set()
            #: operator-drained DIPs: probes never resurrect these.
            self._admin_down: set[DipId] = set()
        #: dip ids with a drain in progress (recover cancels the kill).
        self._drain_pending: set[DipId] = set()

        # Retry state (see RetryPolicy).  Timeouts ride a deque "wheel"
        # swept from the arrival path: every entry shares the same timeout,
        # so deadlines are append-ordered and no heap events are needed.
        if self._retry is not None:
            self._retry_rng = np.random.default_rng(
                None if seed is None else (seed, 0x5254)
            )
            #: flat (request, token) pairs — scalars rather than per-entry
            #: tuples, and no stored deadline (a valid entry's deadline is
            #: recomputed as request.arrival_time + timeout).  An entry
            #: lives a full timeout before being swept, so anything it
            #: allocated would be tenured by the cyclic GC and every byte
            #: it occupies is cache-cold at sweep time; pairs of existing
            #: objects keep the wheel allocation-free and minimal.
            self._timeout_wheel: deque = deque()
            self._request_timeout_s = self._retry.request_timeout_s
            #: deadline of the wheel head (inf when empty) — deadlines are
            #: append-ordered, so one float compare per arrival suffices to
            #: know whether any entry is due.
            self._wheel_deadline = _INF
            self._retries_issued = 0
            self._record_full = self.metrics.record_request_full
            # Default completed rows go down the plain record path, so the
            # resilience columns must exist even if no row ever differs.
            self.metrics.enable_resilience_columns()

    # -- weight programming (the KnapsackLB-facing interface) --------------------

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        if self._mux:
            self.policy.program_weights(weights, at_time=self.scheduler.now)
        else:
            self.policy.set_weights(weights)

    # -- mid-run perturbations (the timeline-facing interface) -------------------
    #
    # These may fire while the simulation is running (scheduled as engine
    # events), so each one keeps the streaming invariants intact: stations
    # pick up capacity changes through the antagonist-history token, the
    # policy's health caches invalidate on set_healthy, and arrival
    # rescaling never reorders the sorted arrival stream.

    def fail_dip(self, dip_id: DipId, *, drain_s: float = 0.0) -> None:
        """Take a DIP down, abruptly or after a graceful drain.

        ``drain_s == 0`` (abrupt): the server dies now.  Without a
        :class:`HealthCheckSpec` the LB-side health flip is modelled as
        immediate (the oracle of earlier revisions); with one, the LB keeps
        routing to the dead DIP until the probe machine crosses its
        unhealthy threshold — new arrivals and queued work bounce off as
        ``FAILED_DIP`` in the interim (in-service requests finish).

        ``drain_s > 0`` (graceful): the drain is operator-initiated, so the
        LB stops routing *now* regardless of health mode, while the server
        keeps serving accepted work and only dies ``drain_s`` later (a
        ``dip_recover`` before then cancels the kill).
        """
        if drain_s > 0:
            self.policy.set_healthy(dip_id, False)
            if self._health is not None:
                self._admin_down.add(dip_id)
                self._lb_down.add(dip_id)
            self._drain_pending.add(dip_id)
            self.scheduler.schedule(drain_s, (self._complete_drain, dip_id))
            return
        self.dips[dip_id].fail()
        if self._health is None:
            # Oracle mode: the LB-side health flip is immediate.
            self.policy.set_healthy(dip_id, False)
        else:
            # The dead server loses what it had queued; the LB only finds
            # out through probes.
            self._stations[dip_id].fail_pending()

    def _complete_drain(self, dip_id: DipId) -> None:
        if dip_id in self._drain_pending:
            self._drain_pending.discard(dip_id)
            self.dips[dip_id].fail()

    def recover_dip(self, dip_id: DipId) -> None:
        if dip_id in self._drain_pending:
            # Recovering mid-drain: the server never died; cancel the kill.
            self._drain_pending.discard(dip_id)
        else:
            self.dips[dip_id].recover()
        if self._health is None:
            self.policy.set_healthy(dip_id, True)
        else:
            # The LB must re-learn health through healthy_threshold
            # consecutive successful probes; clear any admin drain.
            self._admin_down.discard(dip_id)

    def set_capacity_ratio(self, dip_id: DipId, ratio: float) -> None:
        """Pin a DIP's capacity mid-run; future service draws use the new mean."""
        self.dips[dip_id].set_capacity_ratio(ratio, at_time=self.scheduler.now)

    def set_antagonist_copies(self, dip_id: DipId, copies: int) -> None:
        self.dips[dip_id].antagonist.set_copies(
            copies, at_time=self.scheduler.now
        )

    def scale_arrivals(self, factor: float) -> None:
        """Scale offered traffic to ``factor`` × the construction-time rate.

        Safe mid-run: pre-drawn future arrivals are rescaled around the
        already-latched next arrival (``run_stream`` holds its timestamp in
        a local), mapping each later time ``t`` to ``anchor + (t - anchor) /
        g`` where ``g`` is the relative rate change.  The transform is
        monotone, so the sorted-stream invariant survives, and rescaling a
        Poisson process this way yields exactly a Poisson process at the new
        rate — determinism per seed is preserved because the underlying
        exponential draws are untouched.
        """
        if factor <= 0:
            raise ConfigurationError("arrival scale factor must be positive")
        new_rate = self._base_rate_rps * factor
        old_rate = self.workload.rate_rps
        if new_rate == old_rate:
            return
        g = new_rate / old_rate
        times = self._arrival_times
        if times:
            # times is reversed (times[-1] is the next arrival, the anchor).
            anchor = times[-1]
            later = np.asarray(times[:-1], dtype=np.float64)
            times[:-1] = (anchor + (later - anchor) / g).tolist()
            self._arrival_clock = anchor + (self._arrival_clock - anchor) / g
        self.workload.set_rate(new_rate)

    # -- internals -----------------------------------------------------------------

    def _observe_utilization(self) -> None:
        """Feed instantaneous per-DIP utilization to CPU-aware policies."""
        snapshot = {
            dip_id: min(1.0, station.active_requests / station.workers)
            for dip_id, station in self._stations.items()
        }
        # MuxPool and Policy share the observe_utilization signature.
        self.policy.observe_utilization(snapshot)
        next_time = self.scheduler.now + self._observation_interval
        if next_time < self._total_duration:
            self.scheduler.schedule_at(next_time, self._observe_utilization)

    # -- probe-based health (HealthCheckSpec) ------------------------------------
    #
    # One self-rescheduling engine event per DIP walks its seeded probe
    # grid.  The same state machine runs analytically on the fluid/fleet
    # substrates (api/timeline), so detection instants agree per seed.

    def _probe(self, dip_id: DipId) -> None:
        health = self._health
        now = self.scheduler._now
        if self.dips[dip_id].failed:
            fails = self._probe_fail[dip_id] + 1
            self._probe_fail[dip_id] = fails
            self._probe_ok[dip_id] = 0
            if (
                fails == health.unhealthy_threshold
                and dip_id not in self._lb_down
            ):
                # The threshold-crossing probe is only *known* failed once
                # its timeout expires; route traffic until then.
                self._lb_down.add(dip_id)
                self.scheduler.schedule(
                    health.probe_timeout_s, (self._mark_unhealthy, dip_id)
                )
        else:
            oks = self._probe_ok[dip_id] + 1
            self._probe_ok[dip_id] = oks
            self._probe_fail[dip_id] = 0
            if (
                dip_id in self._lb_down
                and oks >= health.healthy_threshold
                and dip_id not in self._admin_down
            ):
                self._lb_down.discard(dip_id)
                self._probe_ok[dip_id] = 0
                self.policy.set_healthy(dip_id, True)
        next_time = now + health.probe_interval_s
        if next_time < self._total_duration:
            self.scheduler.schedule_at(next_time, (self._probe, dip_id))

    def _mark_unhealthy(self, dip_id: DipId) -> None:
        self.policy.set_healthy(dip_id, False)

    def _refill_arrivals(self) -> None:
        if self._needs_flow:
            gaps, client_indices, ports = self.workload.next_batch(ARRIVAL_BATCH)
            self._arrival_clients = client_indices[::-1].tolist()
            self._arrival_ports = ports[::-1].tolist()
        else:
            # Flow-less policies skip the client/port draws entirely.
            gaps = self.workload.next_interarrival_batch(ARRIVAL_BATCH)
        times = gaps.cumsum()
        times += self._arrival_clock
        self._arrival_clock = float(times[-1])
        self._arrival_times = times[::-1].tolist()

    def _fire_arrival(self) -> float:
        """Submit one request at the current time; return the next arrival time.

        Driven by :meth:`EventScheduler.run_stream`: the arrival stream
        never touches the event heap, and the returned time (``inf`` once
        past the run horizon) tells the engine when to hand control back.
        """
        now = self.scheduler._now
        times = self._arrival_times
        times.pop()  # this arrival's timestamp (already == now)
        if self._needs_flow:
            flow = FlowKey(
                src_ip=self._client_ips[self._arrival_clients.pop()],
                src_port=self._arrival_ports.pop(),
                dst_ip=self._vip_address,
                dst_port=self._vip_port,
            )
        else:
            flow = None
        if self._dns is not None:
            self._dns.advance_time(now)
        dip_id = self._select(flow)
        request_id = self._next_request_id
        self._next_request_id = request_id + 1
        if now >= self._measure_from:
            self._submitted += 1
        pool = self._free_requests
        if pool:
            # Recycle a completed request: every field is re-set before any
            # read on the lifecycle below.
            request = pool.pop()
            request.request_id = request_id
            request.flow = flow
            request.arrival_time = now
            request.dip = dip_id
        else:
            request = Request(request_id, flow, now, dip_id)
        if self._track_conns:
            if self._mux:
                self._open(flow, dip_id)
            else:
                self._open(dip_id)
        self._stations[dip_id].submit(request)
        # Advance the stream (refilling the numpy-drawn batch when drained).
        if not times:
            self._refill_arrivals()
            times = self._arrival_times
        next_time = times[-1]
        return next_time if next_time < self._total_duration else _INF

    def _on_request_done(self, request: Request) -> None:
        """Completion sink shared by every station (bound once, no closures)."""
        dip_id = request.dip
        if self._track_conns:
            if self._mux:
                self._close(request.flow, dip_id)
            else:
                self._close(dip_id)
        arrival_time = request.arrival_time
        if arrival_time < self._measure_from:
            self._free_requests.append(request)
            return  # warm-up request: routed and served but not recorded
        completion_time = request.completion_time
        completed = request.outcome is RequestOutcome.COMPLETED
        if completed:
            self._completed += 1
        else:
            self._dropped += 1
        self._record(
            dip_id,
            (completion_time - arrival_time) * 1000.0
            if completion_time is not None
            else None,
            completed,
            self.scheduler._now,
        )
        self._free_requests.append(request)

    # -- the retry path (RetryPolicy) ---------------------------------------------
    #
    # Mirrors _fire_arrival/_on_request_done but tracks *logical* requests:
    # an attempt that times out, lands on a dead DIP or is dropped may be
    # re-routed after a seeded exponential backoff; one metrics row is
    # recorded per logical request (latency first-arrival → completion,
    # plus attempts / timed_out / gave_up columns).  Bound at construction,
    # so the plain path above never pays for any of it.

    def _fire_arrival_retry(self) -> float:
        now = self.scheduler._now
        times = self._arrival_times
        times.pop()
        if self._needs_flow:
            flow = FlowKey(
                src_ip=self._client_ips[self._arrival_clients.pop()],
                src_port=self._arrival_ports.pop(),
                dst_ip=self._vip_address,
                dst_port=self._vip_port,
            )
        else:
            flow = None
        if self._dns is not None:
            self._dns.advance_time(now)
        dip_id = self._select(flow)
        request_id = self._next_request_id
        self._next_request_id = request_id + 1
        if now >= self._measure_from:
            self._submitted += 1
        pool = self._free_requests
        if pool:
            request = pool.pop()
            request.request_id = request_id
            request.flow = flow
            request.arrival_time = now
            request.dip = dip_id
        else:
            request = Request(request_id, flow, now, dip_id)
        # Pool invariant: recycled (and fresh) requests already carry the
        # defaults attempts=1 / timed_out=False / abandoned=False — every
        # free site below restores them — so only first_arrival is stored.
        request.first_arrival = now
        if self._track_conns:
            if self._mux:
                self._open(flow, dip_id)
            else:
                self._open(dip_id)
        finish = self._stations[dip_id].submit(request)
        if finish is None or finish - now >= self._request_timeout_s:
            # Only attempts that can actually expire go on the wheel: one
            # that started service and finishes before its deadline is
            # token-invalidated before the deadline is ever swept, and a
            # synchronous outcome (finish < 0) already resolved in submit.
            wheel = self._timeout_wheel
            if not wheel:
                self._wheel_deadline = now + self._request_timeout_s
            wheel.append(request)
            wheel.append(request.token)
        # Expire due timeouts.  Piggybacking on the (dense) arrival stream
        # keeps the wheel off the event heap; a timeout is acted on at the
        # first arrival past its deadline — late by O(1/rate) seconds,
        # deterministically.
        if now >= self._wheel_deadline:
            timeout = self._request_timeout_s
            wheel = self._timeout_wheel
            while wheel:
                timed = wheel[0]
                if timed.token != wheel[1]:
                    # Attempt already completed: dead entry, drop eagerly.
                    wheel.popleft()
                    wheel.popleft()
                    continue
                # Valid entry ⇒ the request was never recycled, so its
                # arrival_time is this attempt's submit instant and the
                # deadline need not be stored per entry at all.
                deadline = timed.arrival_time + timeout
                if deadline > now:
                    self._wheel_deadline = deadline
                    break
                wheel.popleft()
                wheel.popleft()
                self._expire_attempt(timed, now)
            else:
                self._wheel_deadline = _INF
        if not times:
            self._refill_arrivals()
            times = self._arrival_times
        next_time = times[-1]
        return next_time if next_time < self._total_duration else _INF

    def _expire_attempt(self, request: Request, now: float) -> None:
        """An attempt outlived the request timeout: abandon and re-route.

        The attempt itself stays in its station (the server does not know
        the client hung up); its eventual completion is discarded.
        """
        request.timed_out = True
        request.abandoned = True
        if self._track_conns:
            if self._mux:
                self._close(request.flow, request.dip)
            else:
                self._close(request.dip)
        self._maybe_retry_or_record(request, now, busy=True)

    def _on_request_done_retry(self, request: Request) -> None:
        request.token += 1  # invalidate this attempt's timeout-wheel entry
        if request.abandoned:
            # Completion of an attempt the retry layer gave up waiting on.
            request.abandoned = False
            request.timed_out = False
            request.attempts = 1
            self._free_requests.append(request)
            return
        if self._track_conns:
            if self._mux:
                self._close(request.flow, request.dip)
            else:
                self._close(request.dip)
        now = self.scheduler._now
        if request.outcome is RequestOutcome.COMPLETED:
            if request.first_arrival >= self._measure_from:
                self._completed += 1
                if request.timed_out or request.attempts != 1:
                    self._record_full(
                        request.dip,
                        (request.completion_time - request.first_arrival) * 1000.0,
                        True,
                        now,
                        request.attempts,
                        request.timed_out,
                        False,
                    )
                    request.timed_out = False
                    request.attempts = 1
                else:
                    # Default row (one clean attempt): the plain record is
                    # equivalent — the resilience columns are filled with
                    # defaults at flush — and skips three argument pushes.
                    self._record(
                        request.dip,
                        (request.completion_time - request.first_arrival) * 1000.0,
                        True,
                        now,
                    )
            elif request.timed_out or request.attempts != 1:
                request.timed_out = False
                request.attempts = 1
            self._free_requests.append(request)
            return
        # FAILED_DIP or DROPPED: candidate for an immediate-decision retry.
        self._maybe_retry_or_record(request, now, busy=False)

    def _maybe_retry_or_record(
        self, request: Request, now: float, *, busy: bool
    ) -> None:
        retry = self._retry
        attempts = request.attempts
        # _next_request_id counts launched attempts (every attempt, retry
        # or not, consumes one id), so it doubles as the budget base.
        budget = retry.retry_budget * self._next_request_id + _RETRY_BURST
        if attempts <= retry.max_retries and self._retries_issued < budget:
            self._retries_issued += 1
            backoff = retry.backoff_base_s * (
                retry.backoff_multiplier ** (attempts - 1)
            )
            if retry.jitter_fraction:
                backoff *= 1.0 + retry.jitter_fraction * (
                    2.0 * self._retry_rng.random() - 1.0
                )
            state = (
                request.first_arrival,
                attempts + 1,
                request.timed_out,
                request.flow.src_ip if request.flow is not None else None,
            )
            self.scheduler.schedule(backoff, (self._fire_retry, state))
        elif request.first_arrival >= self._measure_from:
            self._dropped += 1
            self._record_full(
                request.dip,
                None,
                False,
                now,
                attempts,
                request.timed_out,
                True,
            )
        if not busy:
            if request.timed_out or request.attempts != 1:
                request.timed_out = False
                request.attempts = 1
            self._free_requests.append(request)

    def _fire_retry(self, state: tuple) -> None:
        """Launch the next attempt of a logical request after its backoff."""
        first_arrival, attempts, timed_out, src_ip = state
        now = self.scheduler._now
        if self._needs_flow:
            # A fresh src port: flow-hashing policies re-roll their pick, so
            # the retry can actually land somewhere else.
            flow = FlowKey(
                src_ip=src_ip,
                src_port=int(self._retry_rng.integers(1024, 65536)),
                dst_ip=self._vip_address,
                dst_port=self._vip_port,
            )
        else:
            flow = None
        if self._dns is not None:
            self._dns.advance_time(now)
        dip_id = self._select(flow)
        request_id = self._next_request_id
        self._next_request_id = request_id + 1
        pool = self._free_requests
        if pool:
            request = pool.pop()
            request.request_id = request_id
            request.flow = flow
            request.arrival_time = now
            request.dip = dip_id
        else:
            request = Request(request_id, flow, now, dip_id)
        request.attempts = attempts
        request.first_arrival = first_arrival
        request.timed_out = timed_out
        request.abandoned = False
        if self._track_conns:
            if self._mux:
                self._open(flow, dip_id)
            else:
                self._open(dip_id)
        finish = self._stations[dip_id].submit(request)
        if finish is None or finish - now >= self._request_timeout_s:
            wheel = self._timeout_wheel
            if not wheel:
                self._wheel_deadline = now + self._request_timeout_s
            wheel.append(request)
            wheel.append(request.token)

    # -- driving the simulation -------------------------------------------------------

    def run(
        self,
        *,
        num_requests: int | None = None,
        duration_s: float | None = None,
        warmup_s: float = 0.0,
    ) -> RunResult:
        """Run the simulation for a request budget or a duration.

        ``warmup_s`` of simulated time is executed before measurement starts
        so queues reach steady state; warmup requests are not recorded.
        """
        if (num_requests is None) == (duration_s is None):
            raise ConfigurationError("specify exactly one of num_requests / duration_s")

        if duration_s is None:
            assert num_requests is not None
            duration_s = num_requests / self.workload.rate_rps
        total_duration = warmup_s + duration_s

        # Stream Poisson arrivals: the sorted stream is merged against the
        # event heap by run_stream, so arrivals never occupy the heap and
        # peak heap size stays O(in-flight requests).
        self._measure_from = warmup_s
        self._total_duration = total_duration
        self._arrival_clock = 0.0
        self._refill_arrivals()
        first_arrival = self._arrival_times[-1]
        if first_arrival >= total_duration:
            first_arrival = _INF

        # Periodic utilization observations for CPU-aware policies
        # (self-rescheduling — also streamed rather than pre-scheduled).
        if self._observation_interval < total_duration:
            self.scheduler.schedule_at(
                self._observation_interval, self._observe_utilization
            )

        # Probe cycles (self-rescheduling, one per DIP on its seeded phase).
        if self._health is not None:
            base_seed = self._seed if self._seed is not None else 0
            for index, dip_id in enumerate(self.dips):
                phase = self._health.probe_phase_s(base_seed, index)
                if phase < total_duration:
                    self.scheduler.schedule_at(phase, (self._probe, dip_id))

        # Run past the end so in-flight requests complete.
        fire = (
            self._fire_arrival_retry
            if self._retry is not None
            else self._fire_arrival
        )
        self.scheduler.run_stream(total_duration + 30.0, first_arrival, fire)

        measured_duration = duration_s
        for dip_id, station in self._stations.items():
            self.metrics.record_utilization(
                {dip_id: station.mean_utilization(total_duration)}
            )

        return RunResult(
            metrics=self.metrics,
            duration_s=measured_duration,
            requests_submitted=self._submitted,
            requests_completed=self._completed,
            requests_dropped=self._dropped,
        )

    # -- observation -------------------------------------------------------------------

    def station(self, dip_id: DipId) -> DipStation:
        return self._stations[dip_id]

    def request_share(self) -> dict[DipId, float]:
        return self.metrics.request_share()

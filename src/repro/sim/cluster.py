"""Request-level cluster simulator.

Couples a workload generator, an LB policy (or MUX pool) and per-DIP
queueing stations into the end-to-end system of Fig. 1/Fig. 2: clients send
requests to the VIP, a MUX picks the DIP for each new connection, the DIP
serves the request through an M/M/c/K queue, and the client-observed latency
is recorded.  This is the substrate behind the policy-comparison experiments
(Figs. 3, 4, 12, 13, 14 and Tables 1, 4, 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.backends.dip import DipServer
from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb.base import Policy
from repro.lb.dns_lb import DnsWeightedPolicy
from repro.lb.mux import MuxPool
from repro.sim.client import ClientPool, WorkloadGenerator
from repro.sim.engine import EventScheduler
from repro.sim.queueing import DipStation
from repro.sim.request import Request, RequestOutcome
from repro.sim.trace import MetricsCollector


@dataclass
class RunResult:
    """Outcome of one request-level simulation run."""

    metrics: MetricsCollector
    duration_s: float
    requests_submitted: int
    requests_completed: int
    requests_dropped: int

    @property
    def drop_fraction(self) -> float:
        if self.requests_submitted == 0:
            return 0.0
        return self.requests_dropped / self.requests_submitted


class RequestCluster:
    """A VIP, its DIP pool, one LB policy and an open-loop client workload."""

    def __init__(
        self,
        dips: Mapping[DipId, DipServer],
        policy: Policy | MuxPool,
        *,
        rate_rps: float,
        seed: int | None = None,
        queue_capacity: int = 256,
        utilization_observation_interval_s: float = 0.25,
        clients: ClientPool | None = None,
    ) -> None:
        if not dips:
            raise ConfigurationError("cluster needs at least one DIP")
        self.dips = dict(dips)
        self.policy = policy
        self.scheduler = EventScheduler()
        self.workload = WorkloadGenerator(rate_rps, clients=clients, seed=seed)
        self.metrics = MetricsCollector()
        self._stations: dict[DipId, DipStation] = {
            dip_id: DipStation(
                server,
                self.scheduler,
                queue_capacity=queue_capacity,
                seed=None if seed is None else seed + index + 1,
            )
            for index, (dip_id, server) in enumerate(self.dips.items())
        }
        self._observation_interval = utilization_observation_interval_s
        self._submitted = 0
        self._completed = 0
        self._dropped = 0

    # -- weight programming (the KnapsackLB-facing interface) --------------------

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        if isinstance(self.policy, MuxPool):
            self.policy.program_weights(weights, at_time=self.scheduler.now)
        else:
            self.policy.set_weights(weights)

    # -- internals -----------------------------------------------------------------

    def _observe_utilization(self) -> None:
        """Feed instantaneous per-DIP utilization to CPU-aware policies."""
        snapshot = {
            dip_id: min(1.0, station.active_requests / station.workers)
            for dip_id, station in self._stations.items()
        }
        if isinstance(self.policy, MuxPool):
            self.policy.observe_utilization(snapshot)
        else:
            self.policy.observe_utilization(snapshot)

    def _submit_one(self) -> None:
        flow = self.workload.next_flow()
        if isinstance(self.policy, DnsWeightedPolicy):
            self.policy.advance_time(self.scheduler.now)
        dip_id = self.policy.select(flow)
        request = Request(
            request_id=self.workload.requests_generated,
            flow=flow,
            arrival_time=self.scheduler.now,
            dip=dip_id,
        )
        self._submitted += 1
        if isinstance(self.policy, MuxPool):
            self.policy.on_connection_open(flow, dip_id)
        else:
            self.policy.on_connection_open(dip_id)

        def on_complete(req: Request) -> None:
            if isinstance(self.policy, MuxPool):
                self.policy.on_connection_close(flow, dip_id)
            else:
                self.policy.on_connection_close(dip_id)
            completed = req.outcome is RequestOutcome.COMPLETED
            if completed:
                self._completed += 1
            else:
                self._dropped += 1
            self.metrics.record_request(
                dip_id,
                req.latency_ms,
                completed=completed,
                timestamp=self.scheduler.now,
            )

        self._stations[dip_id].submit(request, on_complete)

    # -- driving the simulation -------------------------------------------------------

    def run(
        self,
        *,
        num_requests: int | None = None,
        duration_s: float | None = None,
        warmup_s: float = 0.0,
    ) -> RunResult:
        """Run the simulation for a request budget or a duration.

        ``warmup_s`` of simulated time is executed before measurement starts
        so queues reach steady state; warmup requests are not recorded.
        """
        if (num_requests is None) == (duration_s is None):
            raise ConfigurationError("specify exactly one of num_requests / duration_s")

        if duration_s is None:
            assert num_requests is not None
            duration_s = num_requests / self.workload.rate_rps
        total_duration = warmup_s + duration_s

        # Pre-schedule Poisson arrivals across the whole run.
        arrival_time = 0.0
        start_measuring_at = warmup_s
        scheduled = 0
        while arrival_time < total_duration:
            arrival_time += self.workload.next_interarrival_s()
            if arrival_time >= total_duration:
                break
            if arrival_time < start_measuring_at:
                self.scheduler.schedule_at(arrival_time, self._warmup_request)
            else:
                self.scheduler.schedule_at(arrival_time, self._submit_one)
            scheduled += 1

        # Periodic utilization observations for CPU-aware policies.
        observation_time = self._observation_interval
        while observation_time < total_duration:
            self.scheduler.schedule_at(observation_time, self._observe_utilization)
            observation_time += self._observation_interval

        # Run past the end so in-flight requests complete.
        self.scheduler.run_until(total_duration + 30.0)

        measured_duration = duration_s
        for dip_id, station in self._stations.items():
            self.metrics.record_utilization(
                {dip_id: station.mean_utilization(total_duration)}
            )

        return RunResult(
            metrics=self.metrics,
            duration_s=measured_duration,
            requests_submitted=self._submitted,
            requests_completed=self._completed,
            requests_dropped=self._dropped,
        )

    def _warmup_request(self) -> None:
        """A request issued during warm-up: routed and served but not recorded."""
        flow = self.workload.next_flow()
        if isinstance(self.policy, DnsWeightedPolicy):
            self.policy.advance_time(self.scheduler.now)
        dip_id = self.policy.select(flow)
        request = Request(
            request_id=self.workload.requests_generated,
            flow=flow,
            arrival_time=self.scheduler.now,
            dip=dip_id,
        )
        if isinstance(self.policy, MuxPool):
            self.policy.on_connection_open(flow, dip_id)
        else:
            self.policy.on_connection_open(dip_id)

        def on_complete(req: Request) -> None:
            if isinstance(self.policy, MuxPool):
                self.policy.on_connection_close(flow, dip_id)
            else:
                self.policy.on_connection_close(dip_id)

        self._stations[dip_id].submit(request, on_complete)

    # -- observation -------------------------------------------------------------------

    def station(self, dip_id: DipId) -> DipStation:
        return self._stations[dip_id]

    def request_share(self) -> dict[DipId, float]:
        return self.metrics.request_share()

"""Request-level cluster simulator.

Couples a workload generator, an LB policy (or MUX pool) and per-DIP
queueing stations into the end-to-end system of Fig. 1/Fig. 2: clients send
requests to the VIP, a MUX picks the DIP for each new connection, the DIP
serves the request through an M/M/c/K queue, and the client-observed latency
is recorded.  This is the substrate behind the policy-comparison experiments
(Figs. 3, 4, 12, 13, 14 and Tables 1, 4, 5).

Hot-path design (``BENCH_request_engine.json`` tracks the speedup):

* **streaming arrivals** — instead of pre-scheduling every Poisson arrival
  upfront (O(total requests) heap entries before the first event fires),
  the cluster keeps exactly one pending arrival event; firing it submits
  the request and schedules the next arrival from a batch of
  :meth:`~repro.sim.client.WorkloadGenerator.next_batch` draws.  Peak heap
  size is O(in-flight requests), independent of run length.
* **resolved dispatch** — whether the policy is a :class:`MuxPool`, needs
  ``advance_time`` (DNS) or inspects the flow 5-tuple is decided once at
  construction, not re-``isinstance``-checked per request; FlowKey objects
  are only built for policies that declare ``uses_flow``.
* **one submit path** — warm-up and measured requests flow through the same
  ``_arrival`` handler; whether a request is recorded is decided by its
  arrival time against the warm-up boundary (the seed had a copy-pasted
  ``_warmup_request`` twin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.backends.dip import DipServer
from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.lb.base import FlowKey, Policy
from repro.lb.dns_lb import DnsWeightedPolicy
from repro.lb.mux import MuxPool
from repro.sim.client import ClientPool, WorkloadGenerator
from repro.sim.engine import EventScheduler
from repro.sim.queueing import DipStation
from repro.sim.request import Request, RequestOutcome
from repro.sim.trace import MetricsCollector

#: Poisson arrivals drawn per vectorized workload call.
ARRIVAL_BATCH = 4096

_INF = float("inf")


@dataclass
class RunResult:
    """Outcome of one request-level simulation run."""

    metrics: MetricsCollector
    duration_s: float
    requests_submitted: int
    requests_completed: int
    requests_dropped: int

    @property
    def drop_fraction(self) -> float:
        if self.requests_submitted == 0:
            return 0.0
        return self.requests_dropped / self.requests_submitted


class RequestCluster:
    """A VIP, its DIP pool, one LB policy and an open-loop client workload."""

    def __init__(
        self,
        dips: Mapping[DipId, DipServer],
        policy: Policy | MuxPool,
        *,
        rate_rps: float,
        seed: int | None = None,
        queue_capacity: int = 256,
        utilization_observation_interval_s: float = 0.25,
        clients: ClientPool | None = None,
    ) -> None:
        if not dips:
            raise ConfigurationError("cluster needs at least one DIP")
        self.dips = dict(dips)
        self.policy = policy
        self.scheduler = EventScheduler()
        self.workload = WorkloadGenerator(rate_rps, clients=clients, seed=seed)
        #: the construction-time rate `scale_arrivals` factors are relative to.
        self._base_rate_rps = float(rate_rps)
        self.metrics = MetricsCollector()
        self._stations: dict[DipId, DipStation] = {
            dip_id: DipStation(
                server,
                self.scheduler,
                queue_capacity=queue_capacity,
                seed=None if seed is None else seed + index + 1,
                completion_sink=self._on_request_done,
            )
            for index, (dip_id, server) in enumerate(self.dips.items())
        }
        self._observation_interval = utilization_observation_interval_s
        self._submitted = 0
        self._completed = 0
        self._dropped = 0

        # Policy dispatch resolved once, not per request.
        self._mux = isinstance(policy, MuxPool)
        self._dns = policy if isinstance(policy, DnsWeightedPolicy) else None
        self._needs_flow = getattr(policy, "uses_flow", True)
        self._track_conns = getattr(policy, "uses_connection_counts", True)
        self._select = policy.select
        self._open = policy.on_connection_open
        self._close = policy.on_connection_close

        # Streaming-arrival state (filled per run()).
        self._client_ips = self.workload.client_ips()
        self._vip_address = self.workload.clients.vip_address
        self._vip_port = self.workload.clients.vip_port
        # Arrival buffers hold the *reversed* batch so pop() walks arrivals
        # in time order without index bookkeeping.
        self._arrival_times: list[float] = []
        self._arrival_clients: list[int] = []
        self._arrival_ports: list[int] = []
        self._arrival_clock = 0.0
        self._next_request_id = 0
        self._measure_from = 0.0
        self._total_duration = 0.0
        #: recycled Request objects (bounded by the in-flight count).
        self._free_requests: list[Request] = []
        self._record = self.metrics.record_request

    # -- weight programming (the KnapsackLB-facing interface) --------------------

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        if self._mux:
            self.policy.program_weights(weights, at_time=self.scheduler.now)
        else:
            self.policy.set_weights(weights)

    # -- mid-run perturbations (the timeline-facing interface) -------------------
    #
    # These may fire while the simulation is running (scheduled as engine
    # events), so each one keeps the streaming invariants intact: stations
    # pick up capacity changes through the antagonist-history token, the
    # policy's health caches invalidate on set_healthy, and arrival
    # rescaling never reorders the sorted arrival stream.

    def fail_dip(self, dip_id: DipId) -> None:
        """Take a DIP down: in-flight requests fail, the LB stops routing it."""
        self.dips[dip_id].fail()
        # Health checks converge fast next to the simulated timescales, so
        # the LB-side health flip is modelled as immediate.
        self.policy.set_healthy(dip_id, False)

    def recover_dip(self, dip_id: DipId) -> None:
        self.dips[dip_id].recover()
        self.policy.set_healthy(dip_id, True)

    def set_capacity_ratio(self, dip_id: DipId, ratio: float) -> None:
        """Pin a DIP's capacity mid-run; future service draws use the new mean."""
        self.dips[dip_id].set_capacity_ratio(ratio, at_time=self.scheduler.now)

    def set_antagonist_copies(self, dip_id: DipId, copies: int) -> None:
        self.dips[dip_id].antagonist.set_copies(
            copies, at_time=self.scheduler.now
        )

    def scale_arrivals(self, factor: float) -> None:
        """Scale offered traffic to ``factor`` × the construction-time rate.

        Safe mid-run: pre-drawn future arrivals are rescaled around the
        already-latched next arrival (``run_stream`` holds its timestamp in
        a local), mapping each later time ``t`` to ``anchor + (t - anchor) /
        g`` where ``g`` is the relative rate change.  The transform is
        monotone, so the sorted-stream invariant survives, and rescaling a
        Poisson process this way yields exactly a Poisson process at the new
        rate — determinism per seed is preserved because the underlying
        exponential draws are untouched.
        """
        if factor <= 0:
            raise ConfigurationError("arrival scale factor must be positive")
        new_rate = self._base_rate_rps * factor
        old_rate = self.workload.rate_rps
        if new_rate == old_rate:
            return
        g = new_rate / old_rate
        times = self._arrival_times
        if times:
            # times is reversed (times[-1] is the next arrival, the anchor).
            anchor = times[-1]
            later = np.asarray(times[:-1], dtype=np.float64)
            times[:-1] = (anchor + (later - anchor) / g).tolist()
            self._arrival_clock = anchor + (self._arrival_clock - anchor) / g
        self.workload.set_rate(new_rate)

    # -- internals -----------------------------------------------------------------

    def _observe_utilization(self) -> None:
        """Feed instantaneous per-DIP utilization to CPU-aware policies."""
        snapshot = {
            dip_id: min(1.0, station.active_requests / station.workers)
            for dip_id, station in self._stations.items()
        }
        # MuxPool and Policy share the observe_utilization signature.
        self.policy.observe_utilization(snapshot)
        next_time = self.scheduler.now + self._observation_interval
        if next_time < self._total_duration:
            self.scheduler.schedule_at(next_time, self._observe_utilization)

    def _refill_arrivals(self) -> None:
        if self._needs_flow:
            gaps, client_indices, ports = self.workload.next_batch(ARRIVAL_BATCH)
            self._arrival_clients = client_indices[::-1].tolist()
            self._arrival_ports = ports[::-1].tolist()
        else:
            # Flow-less policies skip the client/port draws entirely.
            gaps = self.workload.next_interarrival_batch(ARRIVAL_BATCH)
        times = gaps.cumsum()
        times += self._arrival_clock
        self._arrival_clock = float(times[-1])
        self._arrival_times = times[::-1].tolist()

    def _fire_arrival(self) -> float:
        """Submit one request at the current time; return the next arrival time.

        Driven by :meth:`EventScheduler.run_stream`: the arrival stream
        never touches the event heap, and the returned time (``inf`` once
        past the run horizon) tells the engine when to hand control back.
        """
        now = self.scheduler._now
        times = self._arrival_times
        times.pop()  # this arrival's timestamp (already == now)
        if self._needs_flow:
            flow = FlowKey(
                src_ip=self._client_ips[self._arrival_clients.pop()],
                src_port=self._arrival_ports.pop(),
                dst_ip=self._vip_address,
                dst_port=self._vip_port,
            )
        else:
            flow = None
        if self._dns is not None:
            self._dns.advance_time(now)
        dip_id = self._select(flow)
        request_id = self._next_request_id
        self._next_request_id = request_id + 1
        if now >= self._measure_from:
            self._submitted += 1
        pool = self._free_requests
        if pool:
            # Recycle a completed request: every field is re-set before any
            # read on the lifecycle below.
            request = pool.pop()
            request.request_id = request_id
            request.flow = flow
            request.arrival_time = now
            request.dip = dip_id
        else:
            request = Request(request_id, flow, now, dip_id)
        if self._track_conns:
            if self._mux:
                self._open(flow, dip_id)
            else:
                self._open(dip_id)
        self._stations[dip_id].submit(request)
        # Advance the stream (refilling the numpy-drawn batch when drained).
        if not times:
            self._refill_arrivals()
            times = self._arrival_times
        next_time = times[-1]
        return next_time if next_time < self._total_duration else _INF

    def _on_request_done(self, request: Request) -> None:
        """Completion sink shared by every station (bound once, no closures)."""
        dip_id = request.dip
        if self._track_conns:
            if self._mux:
                self._close(request.flow, dip_id)
            else:
                self._close(dip_id)
        arrival_time = request.arrival_time
        if arrival_time < self._measure_from:
            self._free_requests.append(request)
            return  # warm-up request: routed and served but not recorded
        completion_time = request.completion_time
        completed = request.outcome is RequestOutcome.COMPLETED
        if completed:
            self._completed += 1
        else:
            self._dropped += 1
        self._record(
            dip_id,
            (completion_time - arrival_time) * 1000.0
            if completion_time is not None
            else None,
            completed,
            self.scheduler._now,
        )
        self._free_requests.append(request)

    # -- driving the simulation -------------------------------------------------------

    def run(
        self,
        *,
        num_requests: int | None = None,
        duration_s: float | None = None,
        warmup_s: float = 0.0,
    ) -> RunResult:
        """Run the simulation for a request budget or a duration.

        ``warmup_s`` of simulated time is executed before measurement starts
        so queues reach steady state; warmup requests are not recorded.
        """
        if (num_requests is None) == (duration_s is None):
            raise ConfigurationError("specify exactly one of num_requests / duration_s")

        if duration_s is None:
            assert num_requests is not None
            duration_s = num_requests / self.workload.rate_rps
        total_duration = warmup_s + duration_s

        # Stream Poisson arrivals: the sorted stream is merged against the
        # event heap by run_stream, so arrivals never occupy the heap and
        # peak heap size stays O(in-flight requests).
        self._measure_from = warmup_s
        self._total_duration = total_duration
        self._arrival_clock = 0.0
        self._refill_arrivals()
        first_arrival = self._arrival_times[-1]
        if first_arrival >= total_duration:
            first_arrival = _INF

        # Periodic utilization observations for CPU-aware policies
        # (self-rescheduling — also streamed rather than pre-scheduled).
        if self._observation_interval < total_duration:
            self.scheduler.schedule_at(
                self._observation_interval, self._observe_utilization
            )

        # Run past the end so in-flight requests complete.
        self.scheduler.run_stream(
            total_duration + 30.0, first_arrival, self._fire_arrival
        )

        measured_duration = duration_s
        for dip_id, station in self._stations.items():
            self.metrics.record_utilization(
                {dip_id: station.mean_utilization(total_duration)}
            )

        return RunResult(
            metrics=self.metrics,
            duration_s=measured_duration,
            requests_submitted=self._submitted,
            requests_completed=self._completed,
            requests_dropped=self._dropped,
        )

    # -- observation -------------------------------------------------------------------

    def station(self, dip_id: DipId) -> DipStation:
        return self._stations[dip_id]

    def request_share(self) -> dict[DipId, float]:
        return self.metrics.request_share()

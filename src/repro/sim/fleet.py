"""A shared DIP fleet serving many VIPs — the multi-VIP fluid substrate.

The paper's controller is datacenter-scale: Table 8 accounts for thousands
of VIPs multiplexed over a 60 K-DIP fleet.  :class:`Fleet` models that
shape: one pool of :class:`DipServer` instances, any number of
:class:`~repro.sim.vip.Vip` tenants whose pools are (possibly overlapping)
subsets, and a joint, numpy-vectorized evaluation that maps every VIP's
(rate, policy, weights) to per-DIP arrival rates in one shot.

DIPs shared by several VIPs carry the *sum* of the per-VIP rates, so their
latency — and therefore everything KLM probes observe — reflects cross-VIP
contention.  Load-dependent policies (least-connection, power-of-two) are
resolved by an outer fixed point: each VIP's split is recomputed against
the background load the other VIPs put on its DIPs until the joint rates
stabilise.

Per-VIP :class:`FleetDeployment` views satisfy the controller's
``Deployment`` protocol, so a :class:`repro.core.KnapsackLBController` (or
the multi-VIP :class:`repro.core.fleet_controller.FleetController`) drives
a fleet exactly like a single-VIP :class:`~repro.sim.fluid.FluidCluster` —
which is itself now a one-VIP fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.backends.dip import DipServer
from repro.core.types import DipId, VipId
from repro.exceptions import ConfigurationError
from repro.sim.fluid import (
    LOAD_DEPENDENT_POLICIES,
    PoolArrays,
    pool_arrays,
    split_rates_array,
    vector_mean_latency_ms,
    vector_utilization,
)
from repro.sim.vip import Vip


def _subset(pool: PoolArrays, index: np.ndarray) -> PoolArrays:
    return PoolArrays(
        ids=tuple(pool.ids[i] for i in index),
        servers=pool.servers[index],
        capacity_rps=pool.capacity_rps[index],
        idle_latency_ms=pool.idle_latency_ms[index],
        max_queue=pool.max_queue[index],
        drop_utilization=pool.drop_utilization[index],
        failed=pool.failed[index],
    )


@dataclass
class FleetState:
    """A snapshot of the whole fleet after a joint evaluation."""

    time: float
    #: total arrival rate per DIP, summed over every VIP it serves.
    total_rates_rps: dict[DipId, float]
    utilization: dict[DipId, float]
    mean_latency_ms: dict[DipId, float]
    #: each VIP's own contribution per DIP.
    per_vip_rates: dict[VipId, dict[DipId, float]]

    def vip_mean_latency_ms(self, vip: VipId) -> float:
        """Request-weighted mean latency experienced by one VIP's traffic."""
        rates = self.per_vip_rates.get(vip, {})
        total = sum(rates.values())
        if total <= 0:
            return float("nan")
        return (
            sum(rate * self.mean_latency_ms[d] for d, rate in rates.items()) / total
        )

    def overall_mean_latency_ms(self) -> float:
        """Request-weighted mean latency across the whole fleet."""
        total = sum(self.total_rates_rps.values())
        if total <= 0:
            return float("nan")
        return (
            sum(
                rate * self.mean_latency_ms[d]
                for d, rate in self.total_rates_rps.items()
            )
            / total
        )

    def dip_summaries(self) -> dict[DipId, dict[str, float]]:
        """Per-DIP {rate, utilization, latency, #vips} rows for result artifacts."""
        vips_per_dip: dict[DipId, int] = {}
        for rates in self.per_vip_rates.values():
            for dip in rates:
                vips_per_dip[dip] = vips_per_dip.get(dip, 0) + 1
        return {
            dip: {
                "rate_rps": self.total_rates_rps[dip],
                "utilization": self.utilization[dip],
                "mean_latency_ms": self.mean_latency_ms[dip],
                "vips": float(vips_per_dip.get(dip, 0)),
            }
            for dip in sorted(self.total_rates_rps)
        }


class FleetDeployment:
    """One VIP's view of a shared fleet (satisfies ``Deployment``).

    The controller programs weights and advances time through this view; it
    only ever sees its own VIP's DIPs, while the underlying rates include
    whatever the other tenants put on the shared servers.
    """

    def __init__(self, fleet: "Fleet", vip_id: VipId) -> None:
        self._fleet = fleet
        self.vip_id = vip_id

    @property
    def dips(self) -> dict[DipId, DipServer]:
        return self._fleet.vips[self.vip_id].dips

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        self._fleet.set_weights(self.vip_id, weights)

    def advance(self, duration_s: float) -> FleetState:
        return self._fleet.advance(duration_s)

    def healthy_dip_ids(self) -> tuple[DipId, ...]:
        return self._fleet.vips[self.vip_id].healthy_dip_ids()


class Fleet:
    """A pool of DIP servers shared by any number of VIPs."""

    def __init__(
        self,
        dips: Mapping[DipId, DipServer] | None = None,
        *,
        start_time: float = 0.0,
        contention_iterations: int = 12,
        contention_tolerance: float = 1e-6,
    ) -> None:
        if contention_iterations < 1:
            raise ConfigurationError("contention_iterations must be >= 1")
        self.dips: dict[DipId, DipServer] = dict(dips) if dips else {}
        self.vips: dict[VipId, Vip] = {}
        self.time = float(start_time)
        self.contention_iterations = contention_iterations
        self.contention_tolerance = contention_tolerance
        self._last_state: FleetState | None = None

    # -- membership --------------------------------------------------------------

    def add_dip(self, server: DipServer) -> None:
        if server.dip_id in self.dips:
            raise ConfigurationError(f"DIP {server.dip_id!r} already in fleet")
        self.dips[server.dip_id] = server
        self._last_state = None

    def create_vip(
        self,
        vip_id: VipId,
        *,
        dip_ids: Iterable[DipId],
        total_rate_rps: float,
        policy_name: str = "wrr",
        weights: Mapping[DipId, float] | None = None,
        probe_url: str = "/",
    ) -> Vip:
        """Register a VIP fronting a subset of the fleet's DIPs."""
        if vip_id in self.vips:
            raise ConfigurationError(f"VIP {vip_id!r} already in fleet")
        members = list(dip_ids)
        if not members:
            raise ConfigurationError(f"VIP {vip_id!r} needs at least one DIP")
        unknown = [d for d in members if d not in self.dips]
        if unknown:
            raise ConfigurationError(f"unknown DIPs for VIP {vip_id!r}: {unknown}")
        vip = Vip(
            vip_id=vip_id,
            dips={d: self.dips[d] for d in members},
            probe_url=probe_url,
            total_rate_rps=float(total_rate_rps),
            policy_name=policy_name,
            weights=dict(weights) if weights else {},
        )
        self.vips[vip_id] = vip
        self._last_state = None
        return vip

    def add_vip(self, vip: Vip) -> Vip:
        """Register an existing :class:`Vip`; its DIPs join the fleet."""
        if vip.vip_id in self.vips:
            raise ConfigurationError(f"VIP {vip.vip_id!r} already in fleet")
        for dip_id, server in vip.dips.items():
            existing = self.dips.get(dip_id)
            if existing is None:
                self.dips[dip_id] = server
            elif existing is not server:
                raise ConfigurationError(
                    f"DIP {dip_id!r} of VIP {vip.vip_id!r} conflicts with the fleet's"
                )
        self.vips[vip.vip_id] = vip
        self._last_state = None
        return vip

    def remove_vip(self, vip_id: VipId) -> Vip:
        try:
            vip = self.vips.pop(vip_id)
        except KeyError:
            raise ConfigurationError(f"VIP {vip_id!r} not in fleet") from None
        self.apply()
        return vip

    def view(self, vip_id: VipId) -> FleetDeployment:
        """A ``Deployment``-protocol view scoped to one VIP."""
        if vip_id not in self.vips:
            raise ConfigurationError(f"VIP {vip_id!r} not in fleet")
        return FleetDeployment(self, vip_id)

    # -- control interface --------------------------------------------------------

    def set_weights(self, vip_id: VipId, weights: Mapping[DipId, float]) -> None:
        vip = self._vip(vip_id)
        for dip in weights:
            if dip not in vip.dips:
                raise ConfigurationError(f"unknown DIP {dip!r}")
        vip.weights.update({d: float(w) for d, w in weights.items()})
        self.apply()

    def set_total_rate(self, vip_id: VipId, total_rate_rps: float) -> None:
        if total_rate_rps < 0:
            raise ConfigurationError("total_rate_rps must be >= 0")
        self._vip(vip_id).total_rate_rps = float(total_rate_rps)
        self.apply()

    def scale_traffic(self, vip_id: VipId, factor: float) -> None:
        if factor < 0:
            raise ConfigurationError("factor must be >= 0")
        vip = self._vip(vip_id)
        self.set_total_rate(vip_id, vip.total_rate_rps * factor)

    def fail_dip(self, dip: DipId) -> None:
        self.dips[dip].fail()
        self.apply()

    def recover_dip(self, dip: DipId) -> None:
        self.dips[dip].recover()
        self.apply()

    def set_capacity_ratio(self, dip: DipId, ratio: float) -> None:
        self.dips[dip].set_capacity_ratio(ratio, at_time=self.time)
        self.apply()

    def set_antagonist_copies(self, dip: DipId, copies: int) -> None:
        """Run ``copies`` antagonist processes on ``dip`` (0 clears them)."""
        self.dips[dip].antagonist.set_copies(copies, at_time=self.time)
        self.apply()

    # -- joint evaluation ----------------------------------------------------------

    def apply(self) -> FleetState:
        """Recompute every DIP's arrival rate from all VIPs' traffic at once.

        Load-independent policies (equal/weighted splits) are evaluated in a
        single vectorized pass; load-dependent ones (lc/wlc/p2) then iterate
        against the background load of the other VIPs until the joint rates
        converge.
        """
        pool = pool_arrays(self.dips)
        n = pool.size
        index_of = {dip: i for i, dip in enumerate(pool.ids)}
        total = np.zeros(n)
        contributions: dict[VipId, tuple[np.ndarray, np.ndarray]] = {}
        reactive: list[VipId] = []

        for vip_id, vip in self.vips.items():
            healthy = vip.healthy_dip_ids()
            if not healthy:
                raise ConfigurationError(f"VIP {vip_id!r}: no healthy DIPs")
            index = np.array([index_of[d] for d in healthy], dtype=np.intp)
            sub_pool = _subset(pool, index)
            weight_vec = np.array(
                [vip.weights.get(d, 0.0) for d in healthy], dtype=np.float64
            )
            if vip.policy_name in LOAD_DEPENDENT_POLICIES:
                # Seed with an equal split; refined by the fixed point below.
                rates = np.full(len(healthy), vip.total_rate_rps / len(healthy))
                reactive.append(vip_id)
            else:
                rates = split_rates_array(
                    vip.policy_name, sub_pool, vip.total_rate_rps, weights=weight_vec
                )
            contributions[vip_id] = (index, rates)
            total[index] += rates

        for _ in range(self.contention_iterations if reactive else 0):
            max_delta = 0.0
            for vip_id in reactive:
                vip = self.vips[vip_id]
                index, old_rates = contributions[vip_id]
                sub_pool = _subset(pool, index)
                background = total[index] - old_rates
                weight_vec = np.array(
                    [vip.weights.get(d, 0.0) for d in sub_pool.ids],
                    dtype=np.float64,
                )
                new_rates = split_rates_array(
                    vip.policy_name,
                    sub_pool,
                    vip.total_rate_rps,
                    weights=weight_vec,
                    background_rps=background,
                )
                total[index] += new_rates - old_rates
                contributions[vip_id] = (index, new_rates)
                delta = float(np.max(np.abs(new_rates - old_rates))) if len(index) else 0.0
                max_delta = max(max_delta, delta)
            scale = max(1.0, float(total.sum()))
            if max_delta < self.contention_tolerance * scale:
                break

        for i, dip_id in enumerate(pool.ids):
            self.dips[dip_id].set_offered_rate(float(total[i]))
        self._last_state = self._state_from(pool, total, contributions)
        return self._last_state

    def advance(self, duration_s: float) -> FleetState:
        """Advance shared simulated time (loads are steady in the fluid model)."""
        if duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        self.time += duration_s
        return self.apply()

    # -- observation ---------------------------------------------------------------

    def _state_from(
        self,
        pool: PoolArrays,
        total: np.ndarray,
        contributions: Mapping[VipId, tuple[np.ndarray, np.ndarray]],
    ) -> FleetState:
        latency = vector_mean_latency_ms(pool, total)
        utilization = np.minimum(1.0, vector_utilization(pool, total))
        per_vip = {
            vip_id: {
                pool.ids[i]: float(rate) for i, rate in zip(index, rates)
            }
            for vip_id, (index, rates) in contributions.items()
        }
        return FleetState(
            time=self.time,
            total_rates_rps={d: float(r) for d, r in zip(pool.ids, total)},
            utilization={
                d: (0.0 if failed else float(u))
                for d, u, failed in zip(pool.ids, utilization, pool.failed)
            },
            mean_latency_ms={
                d: (float("inf") if failed else float(l))
                for d, l, failed in zip(pool.ids, latency, pool.failed)
            },
            per_vip_rates=per_vip,
        )

    def state(self) -> FleetState:
        """The snapshot of the last joint evaluation (reads are free).

        Every mutating entry point (``set_weights``, ``set_total_rate``,
        ``fail_dip``, ``advance``, …) re-runs :meth:`apply`, so the cached
        snapshot is current unless DIPs were mutated directly — call
        :meth:`apply` after doing that.
        """
        if self._last_state is None or self._last_state.time != self.time:
            return self.apply()
        return self._last_state

    def _vip(self, vip_id: VipId) -> Vip:
        try:
            return self.vips[vip_id]
        except KeyError:
            raise ConfigurationError(f"VIP {vip_id!r} not in fleet") from None

    @property
    def total_capacity_rps(self) -> float:
        return sum(s.capacity_rps for s in self.dips.values() if not s.failed)

    def healthy_dip_ids(self) -> tuple[DipId, ...]:
        return tuple(d for d, s in self.dips.items() if not s.failed)

    def shared_dip_ids(self) -> tuple[DipId, ...]:
        """DIPs that belong to more than one VIP (the contention set)."""
        owners: dict[DipId, int] = {}
        for vip in self.vips.values():
            for dip in vip.dips:
                owners[dip] = owners.get(dip, 0) + 1
        return tuple(d for d, count in owners.items() if count > 1)

    def __len__(self) -> int:
        return len(self.dips)

"""A small discrete-event simulation engine.

The request-level cluster simulator is built on this engine: events are
callbacks scheduled at simulated timestamps, executed in time order (ties
broken by insertion order so runs are deterministic).

The hot path is allocation-lean: each scheduled event is one plain
``(time, sequence, payload)`` tuple on a binary heap.  A payload is either

* a zero-argument callable (the common case),
* a ``(func, arg)`` pair — dispatched as ``func(arg)`` so per-request
  completion events carry their request without allocating a closure, or
* an :class:`EventHandle`, created only when the caller asked for
  cancellation via :meth:`EventScheduler.schedule_cancellable`.

``pending_events`` is O(1): it is the heap length minus a live count of
cancelled-but-not-yet-popped handles, maintained on schedule/cancel/pop
instead of scanning the queue.  ``peak_pending_events`` records the
high-water mark so benchmarks can verify the heap stays O(DIPs + in-flight
requests) rather than O(total requests).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.exceptions import SimulationError

EventCallback = Callable[[], None]

_heappush = heapq.heappush


class EventHandle:
    """Cancellable event wrapper returned by ``schedule_cancellable``.

    Only cancellable events pay for this allocation; plain ``schedule``
    pushes the bare callback.  Cancelling lazily marks the handle — the
    heap entry is skipped when popped.
    """

    __slots__ = ("_scheduler", "time", "callback", "cancelled", "popped")

    def __init__(self, scheduler: "EventScheduler", time: float, callback) -> None:
        self._scheduler = scheduler
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.popped = False

    def cancel(self) -> None:
        # Cancelling after the event already fired must not touch the
        # scheduler's cancelled-in-heap counter (nothing is left to skip).
        if not self.cancelled and not self.popped:
            self.cancelled = True
            self._scheduler._cancelled += 1


class EventScheduler:
    """A deterministic event loop over simulated time."""

    __slots__ = ("_now", "_queue", "_next_seq", "_processed", "_cancelled", "_peak")

    def __init__(self, *, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple] = []
        self._next_seq = 0
        self._processed = 0
        #: cancelled handles still sitting in the heap.
        self._cancelled = 0
        self._peak = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) scheduled events — an O(1) counter."""
        return len(self._queue) - self._cancelled

    @property
    def peak_pending_events(self) -> int:
        """High-water mark of live scheduled events over the run."""
        return self._peak

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``callback`` is either a zero-argument callable or a ``(func, arg)``
        pair executed as ``func(arg)``.  Use :meth:`schedule_cancellable`
        when the event may need cancelling.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._next_seq
        self._next_seq = seq + 1
        queue = self._queue
        _heappush(queue, (self._now + delay, seq, callback))
        pending = len(queue) - self._cancelled
        if pending > self._peak:
            self._peak = pending

    def schedule_cancellable(self, delay: float, callback: EventCallback) -> EventHandle:
        """Like :meth:`schedule` but returns a handle that can cancel."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        handle = EventHandle(self, self._now + delay, callback)
        seq = self._next_seq
        self._next_seq = seq + 1
        queue = self._queue
        heapq.heappush(queue, (handle.time, seq, handle))
        pending = len(queue) - self._cancelled
        if pending > self._peak:
            self._peak = pending
        return handle

    def schedule_at(self, time: float, callback) -> None:
        """Schedule ``callback`` at absolute simulated ``time``."""
        self.schedule(max(0.0, time - self._now), callback)

    def schedule_cancellable_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Like :meth:`schedule_at` but returns a cancellable handle.

        Used for externally injected events (timeline perturbations) whose
        absolute firing times are known upfront but which must be revocable
        once the run's horizon passes.
        """
        return self.schedule_cancellable(max(0.0, time - self._now), callback)

    def run_until(self, end_time: float, *, max_events: int | None = None) -> int:
        """Run events with timestamps <= ``end_time``; returns events executed.

        When ``max_events`` truncates the run with events still due before
        ``end_time``, the clock stays at the last executed event's time —
        advancing it to ``end_time`` would let those pending events fire in
        the scheduler's past on the next call.
        """
        executed = 0
        truncated = False
        queue = self._queue
        pop = heapq.heappop
        unlimited = max_events is None
        try:
            while queue and queue[0][0] <= end_time:
                time, _, payload = pop(queue)
                cls = payload.__class__
                if cls is EventHandle and payload.cancelled:
                    self._cancelled -= 1
                    continue
                if time < self._now - 1e-12:
                    raise SimulationError("event time went backwards")
                if time > self._now:
                    self._now = time
                if cls is tuple:
                    payload[0](payload[1])
                elif cls is EventHandle:
                    payload.popped = True
                    payload.callback()
                else:
                    payload()
                executed += 1
                if not unlimited and executed >= max_events:
                    while queue and queue[0][2].__class__ is EventHandle and queue[0][2].cancelled:
                        pop(queue)
                        self._cancelled -= 1
                    truncated = bool(queue) and queue[0][0] <= end_time
                    break
        finally:
            self._processed += executed
        if not truncated and end_time > self._now:
            self._now = end_time
        return executed

    def run_stream(self, end_time: float, first_arrival: float, fire) -> int:
        """Merge a sorted arrival stream with the scheduled-event heap.

        ``fire()`` processes the arrival whose timestamp was returned last
        (starting from ``first_arrival``) and returns the next arrival's
        absolute time, or ``inf`` when the stream is exhausted.  Arrivals
        therefore never occupy the heap at all — the peak heap size is the
        in-flight completion count, and each arrival skips a full
        schedule/heappush/heappop cycle.  Heap events win ties so a
        completion stamped exactly at an arrival's time runs first; the
        rule is fixed, keeping runs deterministic.
        """
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        next_arrival = first_arrival
        while True:
            if queue:
                head_time = queue[0][0]
                if head_time <= next_arrival:
                    if head_time > end_time:
                        break
                    time, _, payload = pop(queue)
                    cls = payload.__class__
                    if cls is tuple:
                        if time > self._now:
                            self._now = time
                        payload[0](payload[1])
                    elif cls is EventHandle:
                        if payload.cancelled:
                            self._cancelled -= 1
                            continue
                        if time > self._now:
                            self._now = time
                        payload.popped = True
                        payload.callback()
                    else:
                        if time > self._now:
                            self._now = time
                        payload()
                    executed += 1
                    continue
            if next_arrival > end_time:
                break
            if next_arrival > self._now:
                self._now = next_arrival
            next_arrival = fire()
            executed += 1
        self._processed += executed
        if end_time > self._now:
            self._now = end_time
        return executed

    def run_all(self, *, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                time, _, payload = pop(queue)
                cls = payload.__class__
                if cls is EventHandle and payload.cancelled:
                    self._cancelled -= 1
                    continue
                if time > self._now:
                    self._now = time
                if cls is tuple:
                    payload[0](payload[1])
                elif cls is EventHandle:
                    payload.popped = True
                    payload.callback()
                else:
                    payload()
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"run_all exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            self._processed += executed
        return executed

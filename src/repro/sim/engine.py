"""A small discrete-event simulation engine.

The request-level cluster simulator is built on this engine: events are
callbacks scheduled at simulated timestamps, executed in time order (ties
broken by insertion order so runs are deterministic).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancelling."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventScheduler:
    """A deterministic event loop over simulated time."""

    def __init__(self, *, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = _ScheduledEvent(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        return self.schedule(max(0.0, time - self._now), callback)

    def run_until(self, end_time: float, *, max_events: int | None = None) -> int:
        """Run events with timestamps <= ``end_time``; returns events executed.

        When ``max_events`` truncates the run with events still due before
        ``end_time``, the clock stays at the last executed event's time —
        advancing it to ``end_time`` would let those pending events fire in
        the scheduler's past on the next call.
        """
        executed = 0
        truncated = False
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now - 1e-12:
                raise SimulationError("event time went backwards")
            self._now = max(self._now, event.time)
            event.callback()
            executed += 1
            self._processed += 1
            if max_events is not None and executed >= max_events:
                while self._queue and self._queue[0].cancelled:
                    heapq.heappop(self._queue)
                truncated = bool(self._queue) and self._queue[0].time <= end_time
                break
        if not truncated:
            self._now = max(self._now, end_time)
        return executed

    def run_all(self, *, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        executed = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
            executed += 1
            self._processed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"run_all exceeded {max_events} events; runaway simulation?"
                )
        return executed

"""Per-DIP queueing dynamics for the request-level simulator.

Each DIP is modelled as an M/M/c/K station: ``c`` workers (vCPUs), an
exponential service time whose mean tracks the DIP's *current* capacity
(antagonists slow every request down), and a finite queue of length ``K``
beyond which requests are dropped.  This is the generative counterpart of
the analytic :class:`repro.backends.latency_model.LatencyModel`, so the
request-level and fluid simulations agree on means by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque

import collections

import numpy as np

from repro.backends.dip import DipServer
from repro.exceptions import ConfigurationError
from repro.sim.engine import EventScheduler
from repro.sim.request import Request, RequestOutcome

CompletionCallback = Callable[[Request], None]


@dataclass
class DipQueueStats:
    """Counters a station accumulates over a simulation run."""

    arrivals: int = 0
    completions: int = 0
    drops: int = 0
    busy_time_s: float = 0.0
    #: integral of (busy workers) over time, for mean-utilization reporting.
    busy_worker_seconds: float = 0.0


class DipStation:
    """The M/M/c/K queue representing one DIP in the request simulator."""

    def __init__(
        self,
        dip: DipServer,
        scheduler: EventScheduler,
        *,
        queue_capacity: int = 256,
        seed: int | None = None,
    ) -> None:
        if queue_capacity < 0:
            raise ConfigurationError("queue_capacity must be >= 0")
        self.dip = dip
        self._scheduler = scheduler
        self._queue_capacity = queue_capacity
        self._rng = np.random.default_rng(seed)
        self._waiting: Deque[Request] = collections.deque()
        self._busy_workers = 0
        self._last_change = scheduler.now
        self.stats = DipQueueStats()

    # -- service-time model --------------------------------------------------

    @property
    def workers(self) -> int:
        return self.dip.vm_type.vcpus

    def _mean_service_time_s(self) -> float:
        """Current mean per-request service time (antagonist-aware)."""
        model = self.dip.latency_model
        return model.servers / model.capacity_rps

    def _sample_service_time_s(self) -> float:
        return float(self._rng.exponential(self._mean_service_time_s()))

    # -- utilization accounting ------------------------------------------------

    def _account(self) -> None:
        now = self._scheduler.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self.stats.busy_worker_seconds += self._busy_workers * elapsed
            if self._busy_workers > 0:
                self.stats.busy_time_s += elapsed
            self._last_change = now

    def mean_utilization(self, duration_s: float) -> float:
        """Time-averaged CPU utilization over ``duration_s`` of simulation."""
        if duration_s <= 0:
            return 0.0
        self._account()
        return min(1.0, self.stats.busy_worker_seconds / (self.workers * duration_s))

    @property
    def active_requests(self) -> int:
        return self._busy_workers + len(self._waiting)

    # -- request lifecycle -----------------------------------------------------

    def submit(self, request: Request, on_complete: CompletionCallback) -> None:
        """Accept a request routed to this DIP."""
        self.stats.arrivals += 1
        if self.dip.failed:
            request.outcome = RequestOutcome.FAILED_DIP
            request.completion_time = self._scheduler.now
            on_complete(request)
            return
        self._account()
        if self._busy_workers < self.workers:
            self._start_service(request, on_complete)
        elif len(self._waiting) < self._queue_capacity:
            request._on_complete = on_complete  # type: ignore[attr-defined]
            self._waiting.append(request)
        else:
            self.stats.drops += 1
            request.outcome = RequestOutcome.DROPPED
            request.completion_time = self._scheduler.now
            on_complete(request)

    def _start_service(self, request: Request, on_complete: CompletionCallback) -> None:
        self._busy_workers += 1
        request.start_service_time = self._scheduler.now
        service_time = self._sample_service_time_s()

        def finish() -> None:
            self._account()
            self._busy_workers -= 1
            request.completion_time = self._scheduler.now
            request.outcome = RequestOutcome.COMPLETED
            self.stats.completions += 1
            on_complete(request)
            self._dequeue_next()

        self._scheduler.schedule(service_time, finish)

    def _dequeue_next(self) -> None:
        if not self._waiting or self._busy_workers >= self.workers:
            return
        queued = self._waiting.popleft()
        callback: CompletionCallback = queued._on_complete  # type: ignore[attr-defined]
        self._start_service(queued, callback)

"""Per-DIP queueing dynamics for the request-level simulator.

Each DIP is modelled as an M/M/c/K station: ``c`` workers (vCPUs), an
exponential service time whose mean tracks the DIP's *current* capacity
(antagonists slow every request down), and a finite queue of length ``K``
beyond which requests are dropped.  This is the generative counterpart of
the analytic :class:`repro.backends.latency_model.LatencyModel`, so the
request-level and fluid simulations agree on means by construction
(``tests/unit/test_request_engine.py`` checks that agreement).

Hot-path design: each station owns its RNG and draws *unit* exponentials in
batches (one vectorized call per ``SERVICE_BATCH`` requests), scaling by the
current mean service time at consumption — so antagonist-driven capacity
changes still affect every in-flight draw, and per-station draw order is
preserved regardless of how arrivals interleave across stations.  Service
completions are scheduled as ``(bound_method, request)`` heap payloads
instead of per-request closures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque

import collections

import numpy as np

from repro.backends.dip import DipServer
from repro.exceptions import ConfigurationError
from repro.sim.engine import EventScheduler
from repro.sim.request import Request, RequestOutcome

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.api.spec import ServiceSpec

_heappush = heapq.heappush

CompletionCallback = Callable[[Request], None]

#: unit-exponential draws per vectorized RNG call.
SERVICE_BATCH = 512

_COMPLETED = RequestOutcome.COMPLETED


@dataclass(slots=True)
class DipQueueStats:
    """Counters a station accumulates over a simulation run."""

    arrivals: int = 0
    completions: int = 0
    drops: int = 0
    busy_time_s: float = 0.0
    #: integral of (busy workers) over time, for mean-utilization reporting.
    busy_worker_seconds: float = 0.0


class DipStation:
    """The M/M/c/K queue representing one DIP in the request simulator."""

    __slots__ = (
        "dip",
        "_scheduler",
        "_queue_capacity",
        "_rng",
        "_waiting",
        "_busy_workers",
        "_last_change",
        "_workers",
        "_svc_buf",
        "_svc_mean",
        "_svc_token",
        "_svc_draw",
        "_sink",
        "stats",
    )

    def __init__(
        self,
        dip: DipServer,
        scheduler: EventScheduler,
        *,
        queue_capacity: int = 256,
        seed: int | None = None,
        completion_sink: CompletionCallback | None = None,
        service: "ServiceSpec | None" = None,
    ) -> None:
        if queue_capacity < 0:
            raise ConfigurationError("queue_capacity must be >= 0")
        self.dip = dip
        self._scheduler = scheduler
        self._queue_capacity = queue_capacity
        self._rng = np.random.default_rng(seed)
        # Unit-mean batched service sampler.  The default is the
        # generator's own bound standard_exponential — the bit-identical
        # legacy path; non-exponential kinds swap in a sampler from
        # repro.workloads.arrivals on the same generator.
        if service is None or service.kind == "exponential":
            self._svc_draw = self._rng.standard_exponential
        else:
            from repro.workloads.arrivals import unit_service_sampler

            self._svc_draw = unit_service_sampler(service, self._rng)
        #: waiting requests with their completion callbacks (FIFO).
        self._waiting: Deque[tuple[Request, CompletionCallback]] = collections.deque()
        self._busy_workers = 0
        self._last_change = scheduler.now
        self._workers = dip.vm_type.vcpus
        #: pre-drawn unit exponentials, reversed so pop() preserves draw order.
        self._svc_buf: list[float] = []
        # The mean service time is cached against the antagonist's change
        # history (every capacity change appends an entry), avoiding a
        # scaled_model construction per request on degraded DIPs.
        self._svc_mean = self._mean_service_time_s()
        self._svc_token = len(dip.antagonist.history)
        self._sink = completion_sink
        self.stats = DipQueueStats()

    # -- service-time model --------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    def set_completion_sink(self, sink: CompletionCallback) -> None:
        """Default completion callback for ``submit`` calls that omit one."""
        self._sink = sink

    def _mean_service_time_s(self) -> float:
        """Current mean per-request service time (antagonist-aware).

        Unit exponentials are pre-drawn in batches (see ``_start_service``);
        scaling by this mean at consumption keeps draws tracking the DIP's
        *current* capacity.
        """
        model = self.dip.latency_model
        return model.servers / model.capacity_rps

    # -- utilization accounting ------------------------------------------------

    def _account(self) -> None:
        now = self._scheduler.now
        elapsed = now - self._last_change
        if elapsed > 0:
            busy = self._busy_workers
            stats = self.stats
            stats.busy_worker_seconds += busy * elapsed
            if busy > 0:
                stats.busy_time_s += elapsed
            self._last_change = now

    def mean_utilization(self, duration_s: float) -> float:
        """Time-averaged CPU utilization over ``duration_s`` of simulation."""
        if duration_s <= 0:
            return 0.0
        self._account()
        return min(1.0, self.stats.busy_worker_seconds / (self._workers * duration_s))

    @property
    def active_requests(self) -> int:
        return self._busy_workers + len(self._waiting)

    # -- request lifecycle -----------------------------------------------------

    def submit(
        self, request: Request, on_complete: CompletionCallback | None = None
    ) -> float | None:
        """Accept a request routed to this DIP.

        ``on_complete`` defaults to the station's completion sink (set once
        by the cluster), so the hot path passes no per-request callable.
        The busy/idle accounting is inlined here and in the finish handlers:
        these two methods run once per simulated request each.

        Returns the scheduled completion time when service starts
        immediately, ``-1.0`` when the outcome was decided synchronously
        (dead DIP, queue overflow — ``on_complete`` already ran), and
        ``None`` when the request was queued.  The retry layer uses this
        to skip timeout-wheel entries that can never expire.
        """
        if on_complete is None:
            on_complete = self._sink
            if on_complete is None:
                raise ConfigurationError(
                    "submit() needs on_complete or a completion sink"
                )
        stats = self.stats
        stats.arrivals += 1
        scheduler = self._scheduler
        if self.dip.failed:
            request.outcome = RequestOutcome.FAILED_DIP
            request.completion_time = scheduler._now
            on_complete(request)
            return -1.0
        now = scheduler._now
        busy = self._busy_workers
        elapsed = now - self._last_change
        if elapsed > 0:
            stats.busy_worker_seconds += busy * elapsed
            if busy > 0:
                stats.busy_time_s += elapsed
            self._last_change = now
        if busy < self._workers:
            # Uncontended start (inlined _start_service — the common case).
            # The completion event is heap-pushed directly: service times
            # are never negative and never cancelled, so the engine's
            # schedule() checks are skipped (same tuple layout).
            self._busy_workers = busy + 1
            request.start_service_time = now
            buf = self._svc_buf
            if not buf:
                buf = self._svc_draw(SERVICE_BATCH)[::-1].tolist()
                self._svc_buf = buf
            token = len(self.dip.antagonist.history)
            if token != self._svc_token:
                self._svc_mean = self._mean_service_time_s()
                self._svc_token = token
            finish = now + buf.pop() * self._svc_mean
            seq = scheduler._next_seq
            scheduler._next_seq = seq + 1
            queue = scheduler._queue
            if on_complete is self._sink:
                _heappush(queue, (finish, seq, (self._finish_to_sink, request)))
            else:
                _heappush(
                    queue, (finish, seq, (self._finish_to, (request, on_complete)))
                )
            pending = len(queue) - scheduler._cancelled
            if pending > scheduler._peak:
                scheduler._peak = pending
            return finish
        elif len(self._waiting) < self._queue_capacity:
            self._waiting.append((request, on_complete))
            return None
        else:
            stats.drops += 1
            request.outcome = RequestOutcome.DROPPED
            request.completion_time = now
            on_complete(request)
            return -1.0

    def fail_pending(self) -> None:
        """Bounce every queued (not yet in service) request off the station.

        Called when the DIP's server dies abruptly under probe-based
        health: work the dead server had accepted but not started is lost
        and completes immediately as ``FAILED_DIP`` (the retry layer may
        re-route it).  Requests already *in service* are allowed to finish
        — the failure model targets routing, not preemption.
        """
        now = self._scheduler.now
        stats = self.stats
        while self._waiting:
            request, on_complete = self._waiting.popleft()
            stats.drops += 1
            request.outcome = RequestOutcome.FAILED_DIP
            request.completion_time = now
            on_complete(request)

    def _start_service(self, request: Request, on_complete: CompletionCallback) -> None:
        """Start serving ``request`` (dequeue path; submit inlines this)."""
        self._busy_workers += 1
        scheduler = self._scheduler
        request.start_service_time = scheduler._now
        buf = self._svc_buf
        if not buf:
            buf = self._svc_draw(SERVICE_BATCH)[::-1].tolist()
            self._svc_buf = buf
        token = len(self.dip.antagonist.history)
        if token != self._svc_token:
            self._svc_mean = self._mean_service_time_s()
            self._svc_token = token
        delay = buf.pop() * self._svc_mean
        if on_complete is self._sink:
            scheduler.schedule(delay, (self._finish_to_sink, request))
        else:
            scheduler.schedule(delay, (self._finish_to, (request, on_complete)))

    def _finish_to_sink(self, request: Request) -> None:
        """Service completion for a sink-routed request (the hot path).

        Busy/idle accounting is inlined (this runs once per request).
        """
        now = self._scheduler._now
        busy = self._busy_workers
        stats = self.stats
        elapsed = now - self._last_change
        if elapsed > 0:
            stats.busy_worker_seconds += busy * elapsed
            if busy > 0:
                stats.busy_time_s += elapsed
            self._last_change = now
        self._busy_workers = busy - 1
        request.completion_time = now
        request.outcome = _COMPLETED
        stats.completions += 1
        self._sink(request)
        if self._waiting and self._busy_workers < self._workers:
            queued, callback = self._waiting.popleft()
            self._start_service(queued, callback)

    def _finish_to(self, item: tuple[Request, CompletionCallback]) -> None:
        """Service completion for a request with an explicit callback."""
        request, on_complete = item
        now = self._scheduler._now
        busy = self._busy_workers
        stats = self.stats
        elapsed = now - self._last_change
        if elapsed > 0:
            stats.busy_worker_seconds += busy * elapsed
            if busy > 0:
                stats.busy_time_s += elapsed
            self._last_change = now
        self._busy_workers = busy - 1
        request.completion_time = now
        request.outcome = _COMPLETED
        stats.completions += 1
        on_complete(request)
        if self._waiting and self._busy_workers < self._workers:
            queued, callback = self._waiting.popleft()
            self._start_service(queued, callback)

"""Fluid (rate-based) cluster model.

The fluid model maps an aggregate VIP request rate and an LB policy to
per-DIP arrival rates, then uses each DIP's analytic latency model to derive
utilization and mean latency.  It is the fast substrate the KnapsackLB
controller runs against for exploration, dynamics and large-scale (Table 6,
Table 8) studies; the request-level simulator in :mod:`repro.sim.cluster`
cross-checks the resulting latency distributions.

Fluid interpretations of the policies:

* round robin, 5-tuple hash, uniform random — equal split of the arrival rate;
* weighted round robin / weighted random / DNS — split proportional to weight;
* least connection — the split that equalises the number of in-flight
  connections across DIPs (``λ_d · T_d(λ_d)`` equal for all d), obtained by
  fixed-point iteration; this is exactly why LCA still overloads slow DIPs
  (§2.1): equal *concurrency* is not equal *utilization*;
* weighted least connection — equalises in-flight connections divided by
  weight;
* power of two — fixed-point of the pairwise-comparison selection
  probabilities using CPU utilization as the load signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.backends.dip import DipServer
from repro.core.types import DipId
from repro.exceptions import ConfigurationError

EQUAL_SPLIT_POLICIES = {"rr", "hash", "random"}
WEIGHTED_SPLIT_POLICIES = {"wrr", "wrandom", "dns"}
CONCURRENCY_POLICIES = {"lc", "wlc"}


def equal_split(dips: Sequence[DipId], total_rate_rps: float) -> dict[DipId, float]:
    """Equal division of the arrival rate across DIPs."""
    if not dips:
        return {}
    share = total_rate_rps / len(dips)
    return {dip: share for dip in dips}


def weighted_split(
    weights: Mapping[DipId, float], total_rate_rps: float
) -> dict[DipId, float]:
    """Division proportional to (non-negative) weights."""
    positive = {dip: max(0.0, w) for dip, w in weights.items()}
    total = sum(positive.values())
    if total <= 0:
        return equal_split(list(weights), total_rate_rps)
    return {dip: total_rate_rps * w / total for dip, w in positive.items()}


def least_connection_split(
    dips: Mapping[DipId, DipServer],
    total_rate_rps: float,
    *,
    weights: Mapping[DipId, float] | None = None,
    iterations: int = 200,
    damping: float = 0.5,
) -> dict[DipId, float]:
    """The fluid equilibrium of (weighted) least-connection selection.

    At equilibrium the number of concurrent connections per unit weight is
    equal across DIPs: ``λ_d · T_d(λ_d) / weight_d = const``.  We iterate
    ``λ_d ∝ weight_d / T_d(λ_d)`` with damping until the split stabilises.
    """
    ids = list(dips)
    if not ids:
        return {}
    if weights is None:
        weight_vec = np.ones(len(ids))
    else:
        weight_vec = np.array([max(1e-9, weights.get(d, 1.0)) for d in ids])

    rates = np.full(len(ids), total_rate_rps / len(ids))
    for _ in range(iterations):
        latencies = np.array(
            [dips[d].latency_model.mean_latency_ms(r) for d, r in zip(ids, rates)]
        )
        target = weight_vec / np.maximum(latencies, 1e-9)
        target = target / target.sum() * total_rate_rps
        new_rates = damping * target + (1 - damping) * rates
        if np.max(np.abs(new_rates - rates)) < 1e-6 * max(1.0, total_rate_rps):
            rates = new_rates
            break
        rates = new_rates
    return {d: float(r) for d, r in zip(ids, rates)}


def power_of_two_split(
    dips: Mapping[DipId, DipServer],
    total_rate_rps: float,
    *,
    iterations: int = 100,
    damping: float = 0.5,
) -> dict[DipId, float]:
    """Fluid approximation of power-of-two-choices on CPU utilization.

    The probability DIP ``d`` receives a connection is the probability it is
    sampled and its utilization is no higher than the other sampled DIP:
    ``p_d = (1/N²) · (1 + 2·|{e ≠ d : u_d < u_e}| + |{e ≠ d : u_e = u_d}|)``.
    We iterate to a fixed point since the utilizations depend on the split.
    """
    ids = list(dips)
    n = len(ids)
    if n == 0:
        return {}
    if n == 1:
        return {ids[0]: total_rate_rps}

    rates = np.full(n, total_rate_rps / n)
    for _ in range(iterations):
        utils = np.array(
            [dips[d].latency_model.utilization(r) for d, r in zip(ids, rates)]
        )
        probs = np.zeros(n)
        for i in range(n):
            wins = np.sum(utils[i] < utils) + 0.5 * (np.sum(utils[i] == utils) - 1)
            probs[i] = (1.0 + 2.0 * wins) / (n * n)
        probs = probs / probs.sum()
        new_rates = damping * probs * total_rate_rps + (1 - damping) * rates
        if np.max(np.abs(new_rates - rates)) < 1e-6 * max(1.0, total_rate_rps):
            rates = new_rates
            break
        rates = new_rates
    return {d: float(r) for d, r in zip(ids, rates)}


def split_for_policy(
    policy_name: str,
    dips: Mapping[DipId, DipServer],
    total_rate_rps: float,
    *,
    weights: Mapping[DipId, float] | None = None,
) -> dict[DipId, float]:
    """Dispatch to the fluid split of the named policy."""
    healthy = {d: s for d, s in dips.items() if not s.failed}
    if not healthy:
        raise ConfigurationError("no healthy DIPs")
    if policy_name in EQUAL_SPLIT_POLICIES:
        return equal_split(list(healthy), total_rate_rps)
    if policy_name in WEIGHTED_SPLIT_POLICIES:
        if weights is None:
            return equal_split(list(healthy), total_rate_rps)
        filtered = {d: weights.get(d, 0.0) for d in healthy}
        return weighted_split(filtered, total_rate_rps)
    if policy_name == "lc":
        return least_connection_split(healthy, total_rate_rps)
    if policy_name == "wlc":
        return least_connection_split(healthy, total_rate_rps, weights=weights)
    if policy_name == "p2":
        return power_of_two_split(healthy, total_rate_rps)
    raise ConfigurationError(f"no fluid model for policy {policy_name!r}")


@dataclass
class FluidClusterState:
    """A snapshot of the fluid cluster after applying a split."""

    time: float
    rates_rps: dict[DipId, float]
    utilization: dict[DipId, float]
    mean_latency_ms: dict[DipId, float]

    def overall_mean_latency_ms(self) -> float:
        """Request-weighted mean latency across DIPs."""
        total_rate = sum(self.rates_rps.values())
        if total_rate <= 0:
            return float("nan")
        return sum(
            self.rates_rps[d] * self.mean_latency_ms[d] for d in self.rates_rps
        ) / total_rate


@dataclass
class FluidCluster:
    """A VIP's DIP pool driven by aggregate request rates.

    The KnapsackLB controller interacts with this cluster exactly as it
    would with a real deployment: it programs weights on the (simulated) LB
    and reads latencies through KLM probes; it never touches the DIPs.
    """

    dips: dict[DipId, DipServer]
    total_rate_rps: float
    policy_name: str = "wrr"
    weights: dict[DipId, float] = field(default_factory=dict)
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.total_rate_rps < 0:
            raise ConfigurationError("total_rate_rps must be >= 0")
        if not self.dips:
            raise ConfigurationError("cluster needs at least one DIP")
        if not self.weights:
            share = 1.0 / len(self.dips)
            self.weights = {d: share for d in self.dips}
        self.apply()

    # -- control interface (what KnapsackLB programs) ---------------------------

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        for dip in weights:
            if dip not in self.dips:
                raise ConfigurationError(f"unknown DIP {dip!r}")
        self.weights.update({d: float(w) for d, w in weights.items()})
        self.apply()

    def set_total_rate(self, total_rate_rps: float) -> None:
        if total_rate_rps < 0:
            raise ConfigurationError("total_rate_rps must be >= 0")
        self.total_rate_rps = float(total_rate_rps)
        self.apply()

    def scale_traffic(self, factor: float) -> None:
        if factor < 0:
            raise ConfigurationError("factor must be >= 0")
        self.set_total_rate(self.total_rate_rps * factor)

    def fail_dip(self, dip: DipId) -> None:
        self.dips[dip].fail()
        self.apply()

    def recover_dip(self, dip: DipId) -> None:
        self.dips[dip].recover()
        self.apply()

    def set_capacity_ratio(self, dip: DipId, ratio: float) -> None:
        self.dips[dip].set_capacity_ratio(ratio, at_time=self.time)
        self.apply()

    # -- dynamics ----------------------------------------------------------------

    def apply(self) -> FluidClusterState:
        """Recompute the per-DIP rates from the current weights and traffic."""
        healthy = {d: s for d, s in self.dips.items() if not s.failed}
        rates = split_for_policy(
            self.policy_name, healthy, self.total_rate_rps, weights=self.weights
        )
        for dip_id, server in self.dips.items():
            server.set_offered_rate(rates.get(dip_id, 0.0))
        return self.state()

    def advance(self, duration_s: float) -> FluidClusterState:
        """Advance simulated time (loads are steady in the fluid model)."""
        if duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        self.time += duration_s
        return self.apply()

    # -- observation ---------------------------------------------------------------

    def state(self) -> FluidClusterState:
        rates = {d: s.offered_rate_rps for d, s in self.dips.items()}
        return FluidClusterState(
            time=self.time,
            rates_rps=rates,
            utilization={d: s.cpu_utilization for d, s in self.dips.items()},
            mean_latency_ms={
                d: (float("inf") if s.failed else s.mean_latency_ms)
                for d, s in self.dips.items()
            },
        )

    @property
    def total_capacity_rps(self) -> float:
        return sum(s.capacity_rps for s in self.dips.values() if not s.failed)

    def healthy_dip_ids(self) -> tuple[DipId, ...]:
        return tuple(d for d, s in self.dips.items() if not s.failed)

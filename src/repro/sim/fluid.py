"""Fluid (rate-based) cluster model, vectorized over whole DIP pools.

The fluid model maps an aggregate VIP request rate and an LB policy to
per-DIP arrival rates, then uses each DIP's analytic latency model to derive
utilization and mean latency.  It is the fast substrate the KnapsackLB
controller runs against for exploration, dynamics and large-scale (Table 6,
Table 8) studies; the request-level simulator in :mod:`repro.sim.cluster`
cross-checks the resulting latency distributions.

All policy splits and latency evaluations operate on numpy arrays covering
the whole pool in one shot (:class:`PoolArrays`); the dict-based public
functions are thin wrappers over the vectorized kernels.  This is what lets
:class:`repro.sim.fleet.Fleet` evaluate thousands of DIPs shared by many
VIPs per control interval.

Fluid interpretations of the policies:

* round robin, 5-tuple hash, uniform random — equal split of the arrival rate;
* weighted round robin / weighted random / DNS — split proportional to weight;
* least connection — the split that equalises the number of in-flight
  connections across DIPs (``λ_d · T_d(λ_d)`` equal for all d), obtained by
  fixed-point iteration; this is exactly why LCA still overloads slow DIPs
  (§2.1): equal *concurrency* is not equal *utilization*;
* weighted least connection — equalises in-flight connections divided by
  weight;
* power of two — fixed-point of the pairwise-comparison selection
  probabilities using CPU utilization as the load signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.backends.dip import DipServer
from repro.core.types import DipId
from repro.exceptions import ConfigurationError

EQUAL_SPLIT_POLICIES = {"rr", "hash", "random"}
WEIGHTED_SPLIT_POLICIES = {"wrr", "wrandom", "dns"}
CONCURRENCY_POLICIES = {"lc", "wlc"}
#: Policies whose split depends on the DIPs' load (fixed-point policies).
LOAD_DEPENDENT_POLICIES = CONCURRENCY_POLICIES | {"p2"}


# ---------------------------------------------------------------------------
# vectorized latency kernel
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PoolArrays:
    """A DIP pool flattened into numpy arrays for one-shot evaluation.

    Mirrors :class:`repro.backends.latency_model.LatencyModel` per DIP; the
    arrays capture the *current* models (after antagonist capacity scaling),
    so they must be rebuilt when a DIP's capacity changes.
    """

    ids: tuple[DipId, ...]
    servers: np.ndarray
    capacity_rps: np.ndarray
    idle_latency_ms: np.ndarray
    max_queue: np.ndarray
    drop_utilization: np.ndarray
    failed: np.ndarray
    #: per-DIP Allen-Cunneen M/G/c waiting-time factor (1.0 = exact M/M/c).
    scv_correction: np.ndarray | float = 1.0

    @property
    def size(self) -> int:
        return len(self.ids)


def pool_arrays(dips: Mapping[DipId, DipServer]) -> PoolArrays:
    """Flatten ``dips`` (their current latency models) into :class:`PoolArrays`."""
    ids = tuple(dips)
    models = [dips[d].latency_model for d in ids]
    return PoolArrays(
        ids=ids,
        servers=np.array([m.servers for m in models], dtype=np.int64),
        capacity_rps=np.array([m.capacity_rps for m in models]),
        idle_latency_ms=np.array([m.idle_latency_ms for m in models]),
        max_queue=np.array([m.max_queue for m in models]),
        drop_utilization=np.array([m.drop_utilization for m in models]),
        failed=np.array([dips[d].failed for d in ids], dtype=bool),
        scv_correction=np.array(
            [getattr(dips[d], "scv_correction", 1.0) for d in ids]
        ),
    )


def vector_erlang_c(servers: np.ndarray, offered_load: np.ndarray) -> np.ndarray:
    """Erlang-C queueing probability for arrays of (servers, offered load).

    Vectorizes the iterative Erlang-B recursion of
    :func:`repro.backends.latency_model.erlang_c`: the recursion runs to the
    maximum server count and each DIP stops updating once ``k`` exceeds its
    own server count.
    """
    servers = np.asarray(servers, dtype=np.int64)
    offered = np.asarray(offered_load, dtype=np.float64)
    result = np.zeros(offered.shape)
    saturated = offered >= servers
    result[saturated] = 1.0

    active = (~saturated) & (offered > 0)
    if not np.any(active):
        return result
    load = np.where(offered > 0, offered, 1.0)  # avoid div by zero below
    inv_b = np.ones(offered.shape)
    # For near-zero load 1/B grows factorially and may overflow to inf; the
    # limit is exactly right (erlang_b -> 0), so silence the overflow noise.
    with np.errstate(over="ignore"):
        for k in range(1, int(servers.max()) + 1):
            step = 1.0 + inv_b * k / load
            inv_b = np.where(k <= servers, step, inv_b)
    erlang_b = 1.0 / inv_b
    rho = offered / servers
    erlang = erlang_b / (1.0 - rho + rho * erlang_b)
    result[active] = erlang[active]
    return result


def vector_mean_latency_ms(pool: PoolArrays, rates_rps: np.ndarray) -> np.ndarray:
    """Mean application latency per DIP at ``rates_rps``, in one shot.

    Matches :meth:`LatencyModel.mean_latency_ms` per element: idle latency at
    zero load, Erlang-C waiting below saturation (bounded by the finite
    queue) and the full-queue plateau at or past saturation.
    """
    rates = np.asarray(rates_rps, dtype=np.float64)
    if np.any(rates < 0):
        raise ConfigurationError("rates must be >= 0")
    mu = pool.capacity_rps / pool.servers
    offered = rates / mu
    max_wait_ms = pool.max_queue / pool.capacity_rps * 1000.0

    pq = vector_erlang_c(pool.servers, offered)
    headroom = pool.servers * mu - rates
    # The Allen-Cunneen factor scales the waiting component only; at the
    # default of 1.0 the multiply is exact and bit-identical to M/M/c.
    wait_ms = np.where(
        headroom > 0,
        pq / np.where(headroom > 0, headroom, 1.0)
        * 1000.0
        * pool.scv_correction,
        np.inf,
    )
    below = rates < pool.capacity_rps * 0.999
    latency = pool.idle_latency_ms + np.where(
        below, np.minimum(wait_ms, max_wait_ms), max_wait_ms
    )
    return np.where(rates == 0, pool.idle_latency_ms, latency)


def vector_utilization(pool: PoolArrays, rates_rps: np.ndarray) -> np.ndarray:
    """CPU utilization per DIP (may nominally exceed 1)."""
    return np.asarray(rates_rps, dtype=np.float64) / pool.capacity_rps


# ---------------------------------------------------------------------------
# vectorized splits
# ---------------------------------------------------------------------------


def equal_split_array(n: int, total_rate_rps: float) -> np.ndarray:
    if n == 0:
        return np.zeros(0)
    return np.full(n, total_rate_rps / n)


def weighted_split_array(weights: np.ndarray, total_rate_rps: float) -> np.ndarray:
    """Division proportional to (non-negative) weights; equal when all zero."""
    positive = np.maximum(0.0, np.asarray(weights, dtype=np.float64))
    total = positive.sum()
    if total <= 0:
        return equal_split_array(len(positive), total_rate_rps)
    return total_rate_rps * positive / total


def least_connection_split_array(
    pool: PoolArrays,
    total_rate_rps: float,
    *,
    weights: np.ndarray | None = None,
    background_rps: np.ndarray | None = None,
    iterations: int = 200,
    damping: float = 0.5,
) -> np.ndarray:
    """The fluid equilibrium of (weighted) least-connection selection.

    At equilibrium the number of concurrent connections per unit weight is
    equal across DIPs: ``λ_d · T_d(λ_d) / weight_d = const``.  We iterate
    ``λ_d ∝ weight_d / T_d(λ_d)`` with damping until the split stabilises.
    ``background_rps`` is load the DIPs carry from *other* VIPs of a shared
    fleet; it shifts the latencies but is not part of the split itself.
    """
    n = pool.size
    if n == 0:
        return np.zeros(0)
    weight_vec = (
        np.ones(n)
        if weights is None
        else np.maximum(1e-9, np.asarray(weights, dtype=np.float64))
    )
    background = (
        np.zeros(n) if background_rps is None else np.asarray(background_rps)
    )

    rates = np.full(n, total_rate_rps / n)
    for _ in range(iterations):
        latencies = vector_mean_latency_ms(pool, rates + background)
        target = weight_vec / np.maximum(latencies, 1e-9)
        target = target / target.sum() * total_rate_rps
        new_rates = damping * target + (1 - damping) * rates
        if np.max(np.abs(new_rates - rates)) < 1e-6 * max(1.0, total_rate_rps):
            rates = new_rates
            break
        rates = new_rates
    return rates


def power_of_two_split_array(
    pool: PoolArrays,
    total_rate_rps: float,
    *,
    background_rps: np.ndarray | None = None,
    iterations: int = 100,
    damping: float = 0.5,
) -> np.ndarray:
    """Fluid approximation of power-of-two-choices on CPU utilization.

    The probability DIP ``d`` receives a connection is the probability it is
    sampled and its utilization is no higher than the other sampled DIP:
    ``p_d = (1/N²) · (1 + 2·|{e ≠ d : u_d < u_e}| + |{e ≠ d : u_e = u_d}|)``.
    We iterate to a fixed point since the utilizations depend on the split.
    The win counts are computed by ranking, not pairwise comparison, so one
    iteration is O(N log N) instead of O(N²).
    """
    n = pool.size
    if n == 0:
        return np.zeros(0)
    if n == 1:
        return np.full(1, total_rate_rps)
    background = (
        np.zeros(n) if background_rps is None else np.asarray(background_rps)
    )

    rates = np.full(n, total_rate_rps / n)
    for _ in range(iterations):
        utils = vector_utilization(pool, rates + background)
        # wins_i = |{j : u_i < u_j}| + 0.5·(|{j : u_j = u_i}| - 1), via ranks.
        order = np.argsort(utils, kind="stable")
        sorted_utils = utils[order]
        # For each DIP: how many DIPs have strictly smaller / equal utilization.
        smaller = np.searchsorted(sorted_utils, utils, side="left")
        less_or_equal = np.searchsorted(sorted_utils, utils, side="right")
        equal = less_or_equal - smaller
        greater = n - less_or_equal
        wins = greater + 0.5 * (equal - 1)
        probs = (1.0 + 2.0 * wins) / (n * n)
        probs = probs / probs.sum()
        new_rates = damping * probs * total_rate_rps + (1 - damping) * rates
        if np.max(np.abs(new_rates - rates)) < 1e-6 * max(1.0, total_rate_rps):
            rates = new_rates
            break
        rates = new_rates
    return rates


def split_rates_array(
    policy_name: str,
    pool: PoolArrays,
    total_rate_rps: float,
    *,
    weights: np.ndarray | None = None,
    background_rps: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch to the vectorized fluid split of the named policy."""
    if pool.size == 0:
        raise ConfigurationError("no healthy DIPs")
    if policy_name in EQUAL_SPLIT_POLICIES:
        return equal_split_array(pool.size, total_rate_rps)
    if policy_name in WEIGHTED_SPLIT_POLICIES:
        if weights is None:
            return equal_split_array(pool.size, total_rate_rps)
        return weighted_split_array(weights, total_rate_rps)
    if policy_name == "lc":
        return least_connection_split_array(
            pool, total_rate_rps, background_rps=background_rps
        )
    if policy_name == "wlc":
        return least_connection_split_array(
            pool, total_rate_rps, weights=weights, background_rps=background_rps
        )
    if policy_name == "p2":
        return power_of_two_split_array(
            pool, total_rate_rps, background_rps=background_rps
        )
    raise ConfigurationError(f"no fluid model for policy {policy_name!r}")


# ---------------------------------------------------------------------------
# dict-based wrappers (the original public API)
# ---------------------------------------------------------------------------


def equal_split(dips: Sequence[DipId], total_rate_rps: float) -> dict[DipId, float]:
    """Equal division of the arrival rate across DIPs."""
    if not dips:
        return {}
    share = total_rate_rps / len(dips)
    return {dip: share for dip in dips}


def weighted_split(
    weights: Mapping[DipId, float], total_rate_rps: float
) -> dict[DipId, float]:
    """Division proportional to (non-negative) weights."""
    ids = list(weights)
    rates = weighted_split_array(
        np.array([weights[d] for d in ids], dtype=np.float64), total_rate_rps
    )
    return {dip: float(r) for dip, r in zip(ids, rates)}


def least_connection_split(
    dips: Mapping[DipId, DipServer],
    total_rate_rps: float,
    *,
    weights: Mapping[DipId, float] | None = None,
    iterations: int = 200,
    damping: float = 0.5,
) -> dict[DipId, float]:
    """The fluid equilibrium of (weighted) least-connection selection."""
    if not dips:
        return {}
    pool = pool_arrays(dips)
    weight_vec = (
        None
        if weights is None
        else np.array([weights.get(d, 1.0) for d in pool.ids])
    )
    rates = least_connection_split_array(
        pool,
        total_rate_rps,
        weights=weight_vec,
        iterations=iterations,
        damping=damping,
    )
    return {dip: float(r) for dip, r in zip(pool.ids, rates)}


def power_of_two_split(
    dips: Mapping[DipId, DipServer],
    total_rate_rps: float,
    *,
    iterations: int = 100,
    damping: float = 0.5,
) -> dict[DipId, float]:
    """Fluid approximation of power-of-two-choices on CPU utilization."""
    if not dips:
        return {}
    pool = pool_arrays(dips)
    rates = power_of_two_split_array(
        pool, total_rate_rps, iterations=iterations, damping=damping
    )
    return {dip: float(r) for dip, r in zip(pool.ids, rates)}


def split_for_policy(
    policy_name: str,
    dips: Mapping[DipId, DipServer],
    total_rate_rps: float,
    *,
    weights: Mapping[DipId, float] | None = None,
) -> dict[DipId, float]:
    """Dispatch to the fluid split of the named policy."""
    healthy = {d: s for d, s in dips.items() if not s.failed}
    if not healthy:
        raise ConfigurationError("no healthy DIPs")
    pool = pool_arrays(healthy)
    weight_vec = (
        None
        if weights is None
        else np.array([weights.get(d, 0.0) for d in pool.ids], dtype=np.float64)
    )
    rates = split_rates_array(
        policy_name, pool, total_rate_rps, weights=weight_vec
    )
    return {dip: float(r) for dip, r in zip(pool.ids, rates)}


# ---------------------------------------------------------------------------
# single-VIP cluster (a one-VIP fleet)
# ---------------------------------------------------------------------------


@dataclass
class FluidClusterState:
    """A snapshot of the fluid cluster after applying a split."""

    time: float
    rates_rps: dict[DipId, float]
    utilization: dict[DipId, float]
    mean_latency_ms: dict[DipId, float]

    def overall_mean_latency_ms(self) -> float:
        """Request-weighted mean latency across DIPs."""
        total_rate = sum(self.rates_rps.values())
        if total_rate <= 0:
            return float("nan")
        return sum(
            self.rates_rps[d] * self.mean_latency_ms[d] for d in self.rates_rps
        ) / total_rate

    def dip_summaries(self) -> dict[DipId, dict[str, float]]:
        """Per-DIP {rate, utilization, latency} rows (result-artifact shape)."""
        return {
            dip: {
                "rate_rps": self.rates_rps[dip],
                "utilization": self.utilization[dip],
                "mean_latency_ms": self.mean_latency_ms[dip],
            }
            for dip in sorted(self.rates_rps)
        }


@dataclass
class FluidCluster:
    """A VIP's DIP pool driven by aggregate request rates.

    The KnapsackLB controller interacts with this cluster exactly as it
    would with a real deployment: it programs weights on the (simulated) LB
    and reads latencies through KLM probes; it never touches the DIPs.

    Internally this is a one-VIP :class:`repro.sim.fleet.Fleet` — the
    multi-VIP substrate with a single tenant.
    """

    dips: dict[DipId, DipServer]
    total_rate_rps: float
    policy_name: str = "wrr"
    weights: dict[DipId, float] = field(default_factory=dict)
    time: float = 0.0

    def __post_init__(self) -> None:
        from repro.sim.fleet import Fleet  # deferred; fleet imports this module

        if self.total_rate_rps < 0:
            raise ConfigurationError("total_rate_rps must be >= 0")
        if not self.dips:
            raise ConfigurationError("cluster needs at least one DIP")
        if not self.weights:
            share = 1.0 / len(self.dips)
            self.weights = {d: share for d in self.dips}
        self._fleet = Fleet(dips=self.dips, start_time=self.time)
        self._vip = self._fleet.create_vip(
            "vip",
            dip_ids=list(self.dips),
            total_rate_rps=self.total_rate_rps,
            policy_name=self.policy_name,
            weights=self.weights,
        )
        # Share the weight dict so fleet-side updates stay visible here.
        self.weights = self._vip.weights
        self.apply()

    # -- control interface (what KnapsackLB programs) ---------------------------

    def set_weights(self, weights: Mapping[DipId, float]) -> None:
        self._fleet.set_weights("vip", weights)

    def set_total_rate(self, total_rate_rps: float) -> None:
        self._fleet.set_total_rate("vip", total_rate_rps)
        self.total_rate_rps = self._vip.total_rate_rps

    def scale_traffic(self, factor: float) -> None:
        if factor < 0:
            raise ConfigurationError("factor must be >= 0")
        self.set_total_rate(self.total_rate_rps * factor)

    def fail_dip(self, dip: DipId) -> None:
        self._fleet.fail_dip(dip)

    def recover_dip(self, dip: DipId) -> None:
        self._fleet.recover_dip(dip)

    def set_capacity_ratio(self, dip: DipId, ratio: float) -> None:
        self._fleet.set_capacity_ratio(dip, ratio)

    def set_antagonist_copies(self, dip: DipId, copies: int) -> None:
        self._fleet.set_antagonist_copies(dip, copies)

    # -- dynamics ----------------------------------------------------------------

    def apply(self) -> FluidClusterState:
        """Recompute the per-DIP rates from the current weights and traffic."""
        self._fleet.apply()
        return self.state()

    def advance(self, duration_s: float) -> FluidClusterState:
        """Advance simulated time (loads are steady in the fluid model)."""
        self._fleet.advance(duration_s)
        self.time = self._fleet.time
        return self.state()

    # -- observation ---------------------------------------------------------------

    def state(self) -> FluidClusterState:
        rates = {d: s.offered_rate_rps for d, s in self.dips.items()}
        return FluidClusterState(
            time=self.time,
            rates_rps=rates,
            utilization={d: s.cpu_utilization for d, s in self.dips.items()},
            mean_latency_ms={
                d: (float("inf") if s.failed else s.mean_latency_ms)
                for d, s in self.dips.items()
            },
        )

    @property
    def total_capacity_rps(self) -> float:
        return sum(s.capacity_rps for s in self.dips.values() if not s.failed)

    def healthy_dip_ids(self) -> tuple[DipId, ...]:
        return tuple(d for d, s in self.dips.items() if not s.failed)

"""Request and connection records used by the request-level simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.types import DipId
from repro.lb.base import FlowKey


class RequestOutcome(enum.Enum):
    COMPLETED = "completed"
    DROPPED = "dropped"
    FAILED_DIP = "failed_dip"


@dataclass(slots=True)
class Request:
    """One client request-response exchange over a fresh connection.

    The paper's workload is HTTP request/response over HAProxy: one request
    per connection, latency measured end-to-end by the client.  Slotted:
    the request simulator allocates one of these per simulated request, so
    the instance dict would dominate the hot path's memory traffic.

    ``flow`` may be ``None`` when the routing policy declares (via
    ``Policy.uses_flow``) that it never inspects the 5-tuple — building a
    FlowKey per request is then pure overhead.
    """

    request_id: int
    flow: FlowKey | None
    arrival_time: float
    dip: DipId | None = None
    start_service_time: float | None = None
    completion_time: float | None = None
    outcome: RequestOutcome | None = None
    # -- resilience fields (only touched on the retry path) --
    #: routing attempts for the logical request this attempt belongs to.
    attempts: int = 1
    #: arrival time of the logical request's first attempt.
    first_arrival: float = 0.0
    #: any attempt of the logical request exceeded the request timeout.
    timed_out: bool = False
    #: the retry layer stopped waiting for this attempt (late completions
    #: of abandoned attempts are discarded, not recorded).
    abandoned: bool = False
    #: generation token: bumped when the attempt finishes, so stale
    #: timeout-wheel entries recognise a recycled Request object.
    token: int = 0

    @property
    def latency_ms(self) -> float | None:
        """End-to-end latency (queueing + service), in milliseconds."""
        if self.completion_time is None:
            return None
        return (self.completion_time - self.arrival_time) * 1000.0

    @property
    def queueing_ms(self) -> float | None:
        if self.start_service_time is None:
            return None
        return (self.start_service_time - self.arrival_time) * 1000.0

    @property
    def completed(self) -> bool:
        return self.outcome is RequestOutcome.COMPLETED

"""Client workload generation for the request-level simulator.

Clients issue requests open-loop (Poisson arrivals) against the VIP; each
request uses a fresh connection with a distinct ephemeral source port, as in
the paper's testbed where clients send HTTP requests through HAProxy and
measure end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lb.base import FlowKey


@dataclass(frozen=True)
class ClientPool:
    """A set of client machines issuing requests against one VIP."""

    num_clients: int = 8
    vip_address: str = "10.0.0.1"
    vip_port: int = 80

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")


class WorkloadGenerator:
    """Open-loop Poisson request generator."""

    def __init__(
        self,
        rate_rps: float,
        *,
        clients: ClientPool | None = None,
        seed: int | None = None,
    ) -> None:
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        self.rate_rps = float(rate_rps)
        self.clients = clients or ClientPool()
        self._rng = np.random.default_rng(seed)
        self._next_port = 1024
        self._request_counter = 0

    def set_rate(self, rate_rps: float) -> None:
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        self.rate_rps = float(rate_rps)

    def next_interarrival_s(self) -> float:
        """Time until the next request arrival."""
        return float(self._rng.exponential(1.0 / self.rate_rps))

    def next_flow(self) -> FlowKey:
        """A fresh connection 5-tuple for the next request."""
        self._request_counter += 1
        client_index = int(self._rng.integers(self.clients.num_clients))
        self._next_port += 1
        if self._next_port > 65000:
            self._next_port = 1024
        return FlowKey(
            src_ip=f"10.1.0.{client_index + 1}",
            src_port=self._next_port,
            dst_ip=self.clients.vip_address,
            dst_port=self.clients.vip_port,
        )

    @property
    def requests_generated(self) -> int:
        return self._request_counter

"""Client workload generation for the request-level simulator.

Clients issue requests open-loop (Poisson arrivals) against the VIP; each
request uses a fresh connection with a distinct ephemeral source port, as in
the paper's testbed where clients send HTTP requests through HAProxy and
measure end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lb.base import FlowKey

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.workloads.arrivals import ArrivalProcess


@dataclass(frozen=True)
class ClientPool:
    """A set of client machines issuing requests against one VIP."""

    num_clients: int = 8
    vip_address: str = "10.0.0.1"
    vip_port: int = 80

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")


#: ephemeral source ports cycle through [1024, 65000] as in the seed path.
_PORT_MIN = 1024
_PORT_MAX = 65000
_PORT_SPAN = _PORT_MAX - _PORT_MIN + 1


class WorkloadGenerator:
    """Open-loop Poisson request generator.

    Supports two draw styles with the same per-seed determinism guarantee
    (a fixed seed always yields the same stream *within* a style):

    * scalar ``next_interarrival_s`` / ``next_flow`` — one RNG call per
      sample, as the seed simulator used;
    * :meth:`next_batch` — one vectorized RNG call per chunk, feeding the
      streaming-arrival engine without per-request Generator overhead.
    """

    def __init__(
        self,
        rate_rps: float,
        *,
        clients: ClientPool | None = None,
        seed: int | None = None,
        arrivals: "ArrivalProcess | None" = None,
    ) -> None:
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        self.rate_rps = float(rate_rps)
        self.clients = clients or ClientPool()
        self._rng = np.random.default_rng(seed)
        self._next_port = 1024
        self._request_counter = 0
        #: non-Poisson gap source (see :mod:`repro.workloads.arrivals`);
        #: ``None`` keeps the legacy inline exponential draw, bit-identical
        #: with every artifact recorded before arrival kinds existed.
        self._arrivals = arrivals
        if arrivals is not None:
            # a preserve_rate trace reports its own mean rate.
            self.rate_rps = float(arrivals.rate_rps)

    def set_rate(self, rate_rps: float) -> None:
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        if self._arrivals is not None:
            self._arrivals.set_rate(rate_rps)
        self.rate_rps = float(rate_rps)

    def next_interarrival_s(self) -> float:
        """Time until the next request arrival."""
        if self._arrivals is not None:
            return float(self._arrivals.produce(1)[0])
        return float(self._rng.exponential(1.0 / self.rate_rps))

    def next_batch(self, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``n`` arrivals in one shot: (interarrivals_s, client_idx, ports).

        Interarrival times are exponential at the *current* rate; client
        indices are uniform over the pool; source ports continue the same
        rolling [1024, 65000] sequence the scalar path uses.  Counters
        advance by ``n`` so batch and scalar draws can be mixed.
        """
        if n < 1:
            raise ConfigurationError("batch size must be >= 1")
        if self._arrivals is not None:
            gaps = self._arrivals.produce(n)
        else:
            gaps = self._rng.exponential(1.0 / self.rate_rps, size=n)
        client_indices = self._rng.integers(self.clients.num_clients, size=n)
        ports = (
            self._next_port + 1 - _PORT_MIN + np.arange(n, dtype=np.int64)
        ) % _PORT_SPAN + _PORT_MIN
        self._next_port = int(ports[-1])
        self._request_counter += n
        return gaps, client_indices, ports

    def next_interarrival_batch(self, n: int) -> np.ndarray:
        """Draw only ``n`` interarrival times (policies that ignore flows).

        The lean path works for every arrival kind: non-Poisson gap
        sources live on their own RNG lanes, so skipping the client/port
        draws never perturbs the gap stream.
        """
        if n < 1:
            raise ConfigurationError("batch size must be >= 1")
        self._request_counter += n
        if self._arrivals is not None:
            return self._arrivals.produce(n)
        return self._rng.exponential(1.0 / self.rate_rps, size=n)

    def client_ips(self) -> list[str]:
        """Source IP strings by client index (precomputed for batch mode)."""
        return [f"10.1.0.{i + 1}" for i in range(self.clients.num_clients)]

    def next_flow(self) -> FlowKey:
        """A fresh connection 5-tuple for the next request."""
        self._request_counter += 1
        client_index = int(self._rng.integers(self.clients.num_clients))
        self._next_port += 1
        if self._next_port > 65000:
            self._next_port = 1024
        return FlowKey(
            src_ip=f"10.1.0.{client_index + 1}",
            src_port=self._next_port,
            dst_ip=self.clients.vip_address,
            dst_port=self.clients.vip_port,
        )

    @property
    def requests_generated(self) -> int:
        return self._request_counter

"""KLM probing and the latency store (§3.2, §5)."""

from repro.probing.klm import KLM, KLM_REQUESTS_PER_SECOND_PER_CORE, ProbeOutcome
from repro.probing.latency_store import LatencyStore, StoreStats

__all__ = [
    "KLM",
    "KLM_REQUESTS_PER_SECOND_PER_CORE",
    "ProbeOutcome",
    "LatencyStore",
    "StoreStats",
]

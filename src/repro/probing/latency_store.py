"""The latency store: the mailbox between KLMs and the controller (§5).

The paper uses Azure Redis (in-memory, persistent connections) keyed by VIP
with a list of ``<DIP, latency, time>`` tuples as the value.  This module
provides the same semantics in-process: per-VIP append-only sample lists
with optional retention limits, plus the read patterns the controller needs
(latest sample per DIP, samples since a timestamp).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.types import DipId, LatencySample, VipId
from repro.exceptions import ConfigurationError


@dataclass
class StoreStats:
    """Operation counters (used by the §6.7 overhead model and tests)."""

    writes: int = 0
    reads: int = 0
    evictions: int = 0


class LatencyStore:
    """An in-memory, Redis-like store of latency samples keyed by VIP."""

    def __init__(self, *, max_samples_per_dip: int = 1000) -> None:
        if max_samples_per_dip < 1:
            raise ConfigurationError("max_samples_per_dip must be >= 1")
        self._max_samples_per_dip = max_samples_per_dip
        self._data: dict[VipId, dict[DipId, list[LatencySample]]] = {}
        self.stats = StoreStats()

    # -- writes ------------------------------------------------------------------

    def write(self, vip: VipId, sample: LatencySample) -> None:
        """Append one sample for ``(vip, sample.dip)``."""
        per_vip = self._data.setdefault(vip, {})
        samples = per_vip.setdefault(sample.dip, [])
        samples.append(sample)
        self.stats.writes += 1
        if len(samples) > self._max_samples_per_dip:
            del samples[: len(samples) - self._max_samples_per_dip]
            self.stats.evictions += 1

    def write_many(self, vip: VipId, samples: Iterable[LatencySample]) -> None:
        for sample in samples:
            self.write(vip, sample)

    # -- reads --------------------------------------------------------------------

    def vips(self) -> tuple[VipId, ...]:
        return tuple(self._data)

    def dips(self, vip: VipId) -> tuple[DipId, ...]:
        self.stats.reads += 1
        return tuple(self._data.get(vip, {}))

    def samples(
        self,
        vip: VipId,
        dip: DipId | None = None,
        *,
        since: float | None = None,
    ) -> list[LatencySample]:
        """Samples for a VIP (optionally one DIP, optionally after ``since``)."""
        self.stats.reads += 1
        per_vip = self._data.get(vip, {})
        if dip is not None:
            pools = [per_vip.get(dip, [])]
        else:
            pools = list(per_vip.values())
        result: list[LatencySample] = []
        for pool in pools:
            for sample in pool:
                if since is None or sample.timestamp >= since:
                    result.append(sample)
        result.sort(key=lambda s: s.timestamp)
        return result

    def latest(self, vip: VipId, dip: DipId) -> LatencySample | None:
        """The most recent sample for ``(vip, dip)``, if any."""
        self.stats.reads += 1
        samples = self._data.get(vip, {}).get(dip, [])
        return samples[-1] if samples else None

    def latest_per_dip(self, vip: VipId) -> dict[DipId, LatencySample]:
        self.stats.reads += 1
        per_vip = self._data.get(vip, {})
        return {dip: samples[-1] for dip, samples in per_vip.items() if samples}

    # -- maintenance -----------------------------------------------------------------

    def clear(self, vip: VipId | None = None) -> None:
        if vip is None:
            self._data.clear()
        else:
            self._data.pop(vip, None)

    def sample_count(self, vip: VipId | None = None) -> int:
        if vip is not None:
            return sum(len(s) for s in self._data.get(vip, {}).values())
        return sum(
            len(samples)
            for per_vip in self._data.values()
            for samples in per_vip.values()
        )

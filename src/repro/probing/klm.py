"""KLM — KnapsackLB Latency Measurement (§3.2, §5).

One KLM instance runs inside each customer VNET.  Every probe interval it
sends a batch of application requests *directly to each DIP's IP*
(bypassing the MUXes so MUX queueing cannot pollute the measurement),
averages the response latency over the batch, and writes a
``<DIP, latency, time>`` sample to the latency store.  Failed probes are
recorded as failures so the controller can detect DIP failures (§4.5).

KLM is agent-less from the DIP's perspective: it only issues ordinary
requests against the admin-provided URL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.backends.dip import DipServer
from repro.core.config import ProbeConfig
from repro.core.types import DipId, LatencySample, VipId
from repro.exceptions import DipFailureError
from repro.probing.latency_store import LatencyStore

#: Measured KLM probing throughput on a 1-core DS1v2 VM (§6.7).
KLM_REQUESTS_PER_SECOND_PER_CORE = 4500.0


@dataclass
class ProbeOutcome:
    """Result of probing one DIP once."""

    dip: DipId
    latency_ms: float | None
    dropped: bool
    failed: bool
    timestamp: float


@dataclass
class KLM:
    """A per-VNET latency prober.

    Parameters
    ----------
    vip:
        The VIP whose DIPs this KLM measures (one VIP per VNET, §3.2).
    dips:
        The DIP servers, addressed directly by id (standing in for their IPs).
    store:
        The latency store samples are written to.
    config:
        Probe interval / batch size / timeout.
    """

    vip: VipId
    dips: Mapping[DipId, DipServer]
    store: LatencyStore
    config: ProbeConfig = field(default_factory=ProbeConfig)
    probe_url: str = "/"
    #: consecutive failed probes per DIP (controller reads this for §4.5).
    consecutive_failures: dict[DipId, int] = field(default_factory=dict)

    def probe_dip(self, dip_id: DipId, *, now: float) -> ProbeOutcome:
        """Send one probe batch to a single DIP and record the sample."""
        server = self.dips[dip_id]
        try:
            result = server.serve_probe_batch(self.config.requests_per_probe)
        except DipFailureError:
            self.consecutive_failures[dip_id] = (
                self.consecutive_failures.get(dip_id, 0) + 1
            )
            return ProbeOutcome(
                dip=dip_id, latency_ms=None, dropped=False, failed=True, timestamp=now
            )

        self.consecutive_failures[dip_id] = 0
        latency = result.mean_latency_ms
        dropped = result.dropped
        if latency == float("inf"):
            # Every request in the batch was dropped: treat as a drop signal
            # with no usable latency.
            outcome = ProbeOutcome(
                dip=dip_id, latency_ms=None, dropped=True, failed=False, timestamp=now
            )
            return outcome
        sample = LatencySample(
            dip=dip_id,
            latency_ms=latency,
            timestamp=now,
            dropped=dropped,
        )
        self.store.write(self.vip, sample)
        return ProbeOutcome(
            dip=dip_id, latency_ms=latency, dropped=dropped, failed=False, timestamp=now
        )

    def probe_all(self, *, now: float) -> dict[DipId, ProbeOutcome]:
        """Probe every DIP once (one probe round)."""
        return {dip_id: self.probe_dip(dip_id, now=now) for dip_id in self.dips}

    def failures(self, threshold: int) -> tuple[DipId, ...]:
        """DIPs whose probes failed at least ``threshold`` consecutive times."""
        return tuple(
            dip
            for dip, count in self.consecutive_failures.items()
            if count >= threshold
        )

    # -- capacity planning (§6.7) ---------------------------------------------------

    def probe_rate_rps(self) -> float:
        """Probe requests per second this KLM issues."""
        return len(self.dips) * self.config.requests_per_probe / self.config.interval_s

    def cores_required(self) -> float:
        """KLM cores needed to sustain the probe rate (4 500 req/s per core)."""
        return self.probe_rate_rps() / KLM_REQUESTS_PER_SECOND_PER_CORE

    def max_dips_per_core(self) -> int:
        """How many DIPs one KLM core can probe at the configured cadence."""
        per_dip_rate = self.config.requests_per_probe / self.config.interval_s
        return int(KLM_REQUESTS_PER_SECOND_PER_CORE // per_dip_rate)

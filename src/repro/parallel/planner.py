"""The shard planner: decide *how* a request-level run can be sharded.

A request-level simulation shards along the DIP axis.  The planner issues
a three-way verdict (``ShardPlan.mode``):

* ``"exact"`` — for policies whose routing law is independent of queue
  state and flow contents, the VIP's Poisson arrival process decomposes
  *exactly* into per-DIP sub-streams:

  - ``rr`` — plain round robin sends request ``i`` to DIP ``i mod n``, so
    DIP ``d``'s arrivals are the global stream sliced ``times[d::n]``
    (Erlang-``n`` interarrivals, exactly the law the serial engine
    produces);
  - ``random`` / ``wrandom`` — each request draws its DIP i.i.d. from a
    fixed categorical distribution, so per-DIP streams are independent
    thinned Poisson processes (the classic thinning decomposition).

  Disjoint DIP subsets evolve independently and the union of shards is
  distributed exactly like the serial run
  (:mod:`repro.parallel.shard`).

* ``"epoch"`` — stateful policies (lc/wlc/p2/hash/dns/wrr, MuxPool
  dataplanes) and timeline runs shard *approximately* under the
  epoch-synchronized engine (:mod:`repro.parallel.epoch`): every shard
  replays the full routing stream against an identical router replica and
  simulates only its own DIPs' queues, exchanging per-DIP connection
  counts at ``sync_interval_s`` barriers.  Between barriers replicas
  route on a bounded-stale view — quantified by
  :func:`repro.parallel.epoch.staleness_crosscheck`.

* ``"serial"`` — everything else falls back to the serial DES with a
  reason logged under ``repro.parallel``:

  ============================  ================================================
  condition                     why it cannot shard at all
  ============================  ================================================
  runner != "request"           fluid/fleet are analytic and already vectorized
  non-Poisson arrivals          stream decomposition/replication assumes Poisson
  non-exponential service       shard kernels draw exponential service times
  fleet-only timeline events    vip_onboard/offboard need the fleet substrate
  policy has no epoch router    an unregistered/novel policy cannot be replayed
  fewer than 2 DIPs             nothing to split
  1 shard requested             sharding was not asked for
  ============================  ================================================
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError
from repro.lb import make_policy, policy_registry, policy_seed_kwargs
from repro.lb.base import Policy
from repro.lb.mux import MuxPool
from repro.parallel.epoch import EPOCH_ROUTERS
from repro.workloads import split_dip_ids

logger = logging.getLogger("repro.parallel")

#: Policies the planner can shard *exactly*, mapped to their routing law.
SHARDABLE_POLICIES: dict[str, str] = {
    "rr": "cyclic",
    "random": "iid-uniform",
    "wrandom": "iid-weighted",
}


def policy_fallback_reason(policy: Policy | MuxPool | str) -> str | None:
    """Why this policy cannot shard *exactly*, or ``None`` when it can.

    Accepts a registry name, a live :class:`Policy`, or a
    :class:`~repro.lb.mux.MuxPool` (which wraps per-MUX policy replicas and
    is inherently shared dataplane state).  A non-``None`` reason no longer
    means serial execution: policies with an epoch router
    (:data:`repro.parallel.epoch.EPOCH_ROUTERS`) still shard approximately.
    """
    if isinstance(policy, MuxPool):
        return (
            "MuxPool routing is shared dataplane state (per-MUX weight "
            "staleness); shards cannot replicate it independently"
        )
    if isinstance(policy, str):
        if policy not in policy_registry():
            raise ConfigurationError(f"unknown policy {policy!r}")
        if policy in SHARDABLE_POLICIES:
            return None
        # Instantiate a throwaway copy to read its routing declarations;
        # the seed kwarg is derived from the constructor signature so new
        # stochastic policies probe correctly without planner changes.
        policy = make_policy(policy, ["_probe"], **policy_seed_kwargs(policy))
    name = getattr(policy, "name", type(policy).__name__)
    if name in SHARDABLE_POLICIES:
        return None
    if getattr(policy, "uses_connection_counts", True):
        return (
            f"policy {name!r} routes on global connection counts; "
            "shards would each see only their own queues"
        )
    if getattr(policy, "uses_flow", True):
        return (
            f"policy {name!r} inspects the flow 5-tuple; per-flow routing "
            "state cannot be split along the DIP axis"
        )
    return (
        f"policy {name!r} routes through one global deterministic sequence "
        "(not an independent per-DIP thinning)"
    )


@dataclass(frozen=True)
class ShardPlan:
    """The planner's verdict for one spec.

    ``mode`` is ``"exact"`` (per-DIP stream decomposition), ``"epoch"``
    (bounded-staleness replica sharding at ``sync_interval_s`` barriers)
    or ``"serial"``.  Shardable plans carry the per-shard DIP id slices
    (contiguous, in pool order — merged metrics are therefore independent
    of the shard count); exact plans also carry the routing law the
    stream builder must reproduce.  Serial plans carry the
    human-readable ``fallback_reason``.  ``shards`` is always the
    *effective* count (clamped to the DIP count, with the clamp logged).
    """

    shards: int
    shardable: bool
    routing: str | None = None
    dip_slices: tuple[tuple[str, ...], ...] = ()
    fallback_reason: str | None = None
    mode: str = field(default="")
    sync_interval_s: float | None = None

    def __post_init__(self) -> None:
        if not self.mode:
            # Callers building plans by hand predate the three-way verdict:
            # infer the mode the old two-way fields imply.
            object.__setattr__(self, "mode", "exact" if self.shardable else "serial")

    @property
    def num_dips(self) -> int:
        return sum(len(s) for s in self.dip_slices)


def _serial(reason: str, *, log: bool = True) -> ShardPlan:
    if log:
        logger.info("sharding disabled: %s", reason)
    return ShardPlan(shards=1, shardable=False, fallback_reason=reason)


def spec_fallback_reason(spec: ExperimentSpec) -> str | None:
    """The pool-independent screens: why ``spec`` cannot shard, or ``None``.

    These checks (substrate, timeline kinds, policy) need nothing but the
    spec itself, so callers can screen before paying for pool
    construction; :func:`plan_shards` applies them first for the same
    reason.  ``None`` means the spec shards at least approximately — the
    planner picks exact vs epoch mode afterwards.
    """
    if spec.runner != "request":
        return (
            f"runner {spec.runner!r} is not request-level (the fluid and "
            "fleet substrates are analytic and already vectorized)"
        )
    if spec.workload.arrival.kind != "poisson":
        return (
            f"workload.arrival.kind {spec.workload.arrival.kind!r} is not "
            "Poisson; both the exact per-DIP stream decomposition and the "
            "epoch executor's replicated arrival streams assume Poisson "
            "arrivals, so bursty/trace runs stay serial"
        )
    if spec.workload.service.kind != "exponential":
        return (
            f"workload.service.kind {spec.workload.service.kind!r} is not "
            "exponential; the shard kernels regenerate exponential service "
            "streams, so heavy-tailed runs stay serial"
        )
    for event in spec.timeline.events:
        if event.kind in ("vip_onboard", "vip_offboard") or (
            event.kind == "arrival_scale" and event.vip is not None
        ):
            return (
                f"timeline event kind {event.kind!r} needs the fleet "
                "substrate; the request engine cannot execute it at all"
            )
        if event.drain_s > 0:
            return (
                f"timeline event {event.label()!r} drains gracefully; the "
                "epoch station replicas apply failures abruptly"
            )
    if spec.health.enabled:
        return (
            "health probing is enabled; the epoch executor's station "
            "replicas do not run probe cycles, so detection-delay runs "
            "stay serial"
        )
    if spec.retry.enabled:
        return (
            "retries are enabled; the retry loop re-routes requests "
            "across DIPs, which the per-shard stations cannot see"
        )
    name = spec.policy.name
    if name in SHARDABLE_POLICIES or name in EPOCH_ROUTERS:
        return None
    return policy_fallback_reason(name)


def plan_shards(
    spec: ExperimentSpec,
    *,
    shards: int,
    dip_ids: tuple[str, ...] | None = None,
) -> ShardPlan:
    """Plan a sharded execution of ``spec``, or a serial fallback with reason.

    ``dip_ids`` lets callers that already built the pool skip rebuilding it;
    otherwise the planner derives the ids from the pool spec (cheap — the
    pool builders are deterministic).
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if shards == 1:
        return _serial("1 shard requested", log=False)
    reason = spec_fallback_reason(spec)
    if reason is not None:
        return _serial(reason)
    if dip_ids is None:
        from repro.api.runners import pool_from_spec

        dip_ids = tuple(pool_from_spec(spec.pool, spec.seed))
    if len(dip_ids) < 2:
        return _serial("pool has fewer than 2 DIPs; nothing to split")
    if shards > len(dip_ids):
        logger.info(
            "requested %d shards exceeds %d DIPs; clamping to %d",
            shards,
            len(dip_ids),
            len(dip_ids),
        )
        shards = len(dip_ids)
    exact = (
        spec.policy.name in SHARDABLE_POLICIES
        and spec.timeline.empty
        and spec.policy.num_muxes == 1
    )
    if exact:
        return ShardPlan(
            shards=shards,
            shardable=True,
            routing=SHARDABLE_POLICIES[spec.policy.name],
            dip_slices=split_dip_ids(dip_ids, shards),
            mode="exact",
        )
    return ShardPlan(
        shards=shards,
        shardable=True,
        routing=None,
        dip_slices=split_dip_ids(dip_ids, shards),
        mode="epoch",
        sync_interval_s=spec.sync_interval_s,
    )

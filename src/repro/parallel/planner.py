"""The shard planner: decide whether a request-level run can be sharded.

A request-level simulation shards along the DIP axis.  For policies whose
routing law is independent of queue state and flow contents, the VIP's
Poisson arrival process decomposes *exactly* into per-DIP sub-streams:

* ``rr`` — plain round robin sends request ``i`` to DIP ``i mod n``, so
  DIP ``d``'s arrivals are the global stream sliced ``times[d::n]``
  (Erlang-``n`` interarrivals, exactly the law the serial engine produces);
* ``random`` / ``wrandom`` — each request draws its DIP i.i.d. from a fixed
  categorical distribution, so per-DIP streams are independent thinned
  Poisson processes (the classic thinning decomposition).

Either way, disjoint DIP subsets evolve independently: a shard simulates
its DIPs' M/M/c/K queues against their sub-streams and the union of shards
is distributed exactly like the serial run.  Everything else falls back to
the serial engine with a reason logged under ``repro.parallel``:

============================  ==================================================
condition                     why it cannot shard
============================  ==================================================
runner != "request"           fluid/fleet are analytic and already vectorized
timeline events declared      mid-run perturbations couple every DIP's clock
policy uses connection counts routing reads global queue state (lc, wlc, p2)
policy inspects the flow      per-flow state spans shards (hash, dns)
policy is a MuxPool           per-MUX weight staleness is shared dataplane state
policy "wrr"                  the smooth-WRR interleave is one global sequence
fewer than 2 DIPs             nothing to split
============================  ==================================================
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError
from repro.lb import make_policy, policy_registry
from repro.lb.base import Policy
from repro.lb.mux import MuxPool
from repro.workloads import split_dip_ids

logger = logging.getLogger("repro.parallel")

#: Policies the planner can shard, mapped to their routing law.
SHARDABLE_POLICIES: dict[str, str] = {
    "rr": "cyclic",
    "random": "iid-uniform",
    "wrandom": "iid-weighted",
}


def policy_fallback_reason(policy: Policy | MuxPool | str) -> str | None:
    """Why this policy cannot shard, or ``None`` when it can.

    Accepts a registry name, a live :class:`Policy`, or a
    :class:`~repro.lb.mux.MuxPool` (which wraps per-MUX policy replicas and
    is inherently shared dataplane state).
    """
    if isinstance(policy, MuxPool):
        return (
            "MuxPool routing is shared dataplane state (per-MUX weight "
            "staleness); shards cannot replicate it independently"
        )
    if isinstance(policy, str):
        if policy not in policy_registry():
            raise ConfigurationError(f"unknown policy {policy!r}")
        if policy in SHARDABLE_POLICIES:
            return None
        # Instantiate a throwaway copy to read its routing declarations.
        kwargs = {"seed": 0} if policy in ("random", "wrandom", "p2", "dns") else {}
        policy = make_policy(policy, ["_probe"], **kwargs)
    name = getattr(policy, "name", type(policy).__name__)
    if name in SHARDABLE_POLICIES:
        return None
    if getattr(policy, "uses_connection_counts", True):
        return (
            f"policy {name!r} routes on global connection counts; "
            "shards would each see only their own queues"
        )
    if getattr(policy, "uses_flow", True):
        return (
            f"policy {name!r} inspects the flow 5-tuple; per-flow routing "
            "state cannot be split along the DIP axis"
        )
    return (
        f"policy {name!r} routes through one global deterministic sequence "
        "(not an independent per-DIP thinning)"
    )


@dataclass(frozen=True)
class ShardPlan:
    """The planner's verdict for one spec.

    ``shardable`` plans carry the per-shard DIP id slices (contiguous, in
    pool order — merged metrics are therefore independent of the shard
    count) and the routing law the stream builder must reproduce.
    Non-shardable plans carry the human-readable ``fallback_reason``.
    """

    shards: int
    shardable: bool
    routing: str | None = None
    dip_slices: tuple[tuple[str, ...], ...] = ()
    fallback_reason: str | None = None

    @property
    def num_dips(self) -> int:
        return sum(len(s) for s in self.dip_slices)


def _serial(reason: str, *, log: bool = True) -> ShardPlan:
    if log:
        logger.info("sharding disabled: %s", reason)
    return ShardPlan(shards=1, shardable=False, fallback_reason=reason)


def spec_fallback_reason(spec: ExperimentSpec) -> str | None:
    """The pool-independent screens: why ``spec`` cannot shard, or ``None``.

    These checks (substrate, timeline, policy) need nothing but the spec
    itself, so callers can screen before paying for pool construction;
    :func:`plan_shards` applies them first for the same reason.
    """
    if spec.runner != "request":
        return (
            f"runner {spec.runner!r} is not request-level (the fluid and "
            "fleet substrates are analytic and already vectorized)"
        )
    if not spec.timeline.empty:
        kinds = sorted({e.kind for e in spec.timeline.events}) or ["horizon"]
        return (
            "timeline events ({}) perturb shared state mid-run; shards "
            "could not agree on a global clock".format(", ".join(kinds))
        )
    return policy_fallback_reason(spec.policy.name)


def plan_shards(
    spec: ExperimentSpec,
    *,
    shards: int,
    dip_ids: tuple[str, ...] | None = None,
) -> ShardPlan:
    """Plan a sharded execution of ``spec``, or a serial fallback with reason.

    ``dip_ids`` lets callers that already built the pool skip rebuilding it;
    otherwise the planner derives the ids from the pool spec (cheap — the
    pool builders are deterministic).
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if shards == 1:
        return _serial("1 shard requested", log=False)
    reason = spec_fallback_reason(spec)
    if reason is not None:
        return _serial(reason)
    if dip_ids is None:
        from repro.api.runners import pool_from_spec

        dip_ids = tuple(pool_from_spec(spec.pool, spec.seed))
    if len(dip_ids) < 2:
        return _serial("pool has fewer than 2 DIPs; nothing to split")
    shards = min(shards, len(dip_ids))
    return ShardPlan(
        shards=shards,
        shardable=True,
        routing=SHARDABLE_POLICIES[spec.policy.name],
        dip_slices=split_dip_ids(dip_ids, shards),
    )

"""Multi-core execution layer: sharded request runs and persistent pools.

Four pieces, composable but independently usable:

* :mod:`repro.parallel.planner` issues the three-way sharding verdict for
  a request-level run — statistically-exact per-DIP decomposition,
  epoch-synchronized approximate sharding, or serial with a reason;
* :mod:`repro.parallel.shard` executes an exact plan — in-process or
  across worker processes with a shared-memory columnar merge — and folds
  the shards back into one :class:`~repro.api.result.RunResult`;
* :mod:`repro.parallel.epoch` executes an epoch plan: full-stream router
  replicas with per-DIP queues sharded across barrier-synchronized
  processes, exchanging connection counts every ``sync_interval_s`` (the
  bounded-staleness model, with :func:`staleness_crosscheck` quantifying
  the error against the serial engine);
* :mod:`repro.parallel.pool` keeps a warm worker-process pool alive across
  sweeps and exact sharded runs so consecutive dispatches skip interpreter
  start-up and spec re-parsing.
"""

from repro.parallel.epoch import (
    EPOCH_ROUTERS,
    run_request_epoch,
    staleness_crosscheck,
)
from repro.parallel.kernel import build_dip_arrival_streams, simulate_station
from repro.parallel.planner import (
    SHARDABLE_POLICIES,
    ShardPlan,
    plan_shards,
    policy_fallback_reason,
    spec_fallback_reason,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.shard import merge_shard_outcomes, run_request_sharded

__all__ = [
    "EPOCH_ROUTERS",
    "SHARDABLE_POLICIES",
    "ShardPlan",
    "WorkerPool",
    "build_dip_arrival_streams",
    "merge_shard_outcomes",
    "plan_shards",
    "policy_fallback_reason",
    "run_request_epoch",
    "run_request_sharded",
    "simulate_station",
    "spec_fallback_reason",
    "staleness_crosscheck",
]

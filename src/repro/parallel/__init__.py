"""Multi-core execution layer: sharded request runs and persistent pools.

Three pieces, composable but independently usable:

* :mod:`repro.parallel.planner` decides whether a request-level run can be
  split into statistically-exact per-DIP shards (and says *why not* when it
  cannot);
* :mod:`repro.parallel.shard` executes a shard plan — in-process or across
  worker processes with a shared-memory columnar merge — and folds the
  shards back into one :class:`~repro.api.result.RunResult`;
* :mod:`repro.parallel.pool` keeps a warm worker-process pool alive across
  sweeps and sharded runs so consecutive dispatches skip interpreter
  start-up and spec re-parsing.
"""

from repro.parallel.kernel import build_dip_arrival_streams, simulate_station
from repro.parallel.planner import (
    SHARDABLE_POLICIES,
    ShardPlan,
    plan_shards,
    policy_fallback_reason,
    spec_fallback_reason,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.shard import merge_shard_outcomes, run_request_sharded

__all__ = [
    "SHARDABLE_POLICIES",
    "ShardPlan",
    "WorkerPool",
    "build_dip_arrival_streams",
    "merge_shard_outcomes",
    "plan_shards",
    "policy_fallback_reason",
    "run_request_sharded",
    "simulate_station",
    "spec_fallback_reason",
]

"""Execute a shard plan and fold the shards into one ``RunResult``.

One worker task per shard: the worker deterministically regenerates the
VIP-wide arrival stream from the run seed (see
:mod:`repro.parallel.kernel`), keeps its own DIPs' sub-streams, runs the
per-station kernel, and hands the arrival-ordered record columns back —
either inline (``workers <= 1``, no processes at all) or through
``multiprocessing.shared_memory`` so the parent merges raw numpy buffers
instead of unpickling per-request rows.

The merge is deterministic by construction: shard slices are contiguous in
pool order and shards are folded in index order, so the merged columnar
metrics (summaries, percentiles, ``window_rows``) are bit-identical across
repeats for a fixed seed — and in fact independent of the shard count,
because every per-DIP stream is keyed by the DIP's global pool index.
"""

from __future__ import annotations

import os
import time
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.parallel.kernel import (
    build_dip_arrival_streams,
    service_seed,
    simulate_station,
)
from repro.sim.trace import MetricsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runners import us lazily)
    from repro.api.result import RunResult
    from repro.api.spec import ExperimentSpec
    from repro.parallel.planner import ShardPlan
    from repro.parallel.pool import WorkerPool

#: queue length per DIP station, matching RequestCluster's default.
QUEUE_CAPACITY = 256


def _unregister_shm(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from this process's resource tracker.

    The worker creates the segment but the *parent* unlinks it after the
    merge; without this the worker-side tracker would double-free it at
    executor shutdown and spam warnings.
    """
    try:  # pragma: no cover - depends on resource_tracker internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def run_shard_task(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Simulate one shard (module-level so process pools can pickle it).

    Returns per-DIP record columns plus counters; with ``use_shm`` the
    columns live in one shared-memory segment (latency, timestamp and
    completed regions, one block per DIP) and only the segment name plus
    block offsets cross the process boundary.
    """
    stations: list[tuple[str, int, int, float]] = payload["stations"]
    seed = payload["seed"]
    streams = build_dip_arrival_streams(
        seed=seed,
        rate_rps=payload["rate_rps"],
        horizon_s=payload["horizon_s"],
        num_dips=payload["num_dips"],
        routing=payload["routing"],
        probabilities=payload["probabilities"],
        wanted={index for _, index, _, _ in stations},
    )
    outcomes = []
    for dip_id, index, servers, mean_service_s in stations:
        arrivals = streams[index]
        services = np.random.default_rng(
            service_seed(seed, index)
        ).standard_exponential(arrivals.size)
        services *= mean_service_s
        outcome = simulate_station(
            arrivals,
            services,
            servers=servers,
            queue_capacity=payload["queue_capacity"],
            measure_from=payload["measure_from"],
        )
        outcomes.append((dip_id, servers, outcome))

    blocks = [
        {
            "dip": dip_id,
            "count": int(outcome.latency_ms.size),
            "submitted": outcome.submitted,
            "dropped": outcome.dropped,
            "busy_seconds": outcome.busy_seconds,
            "servers": servers,
            "latency_ms": outcome.latency_ms,
            "completed": outcome.completed,
            "timestamp": outcome.timestamp,
        }
        for dip_id, servers, outcome in outcomes
    ]
    if not payload.get("use_shm"):
        return {"blocks": blocks}
    return publish_blocks(blocks, shm_name=payload.get("shm_name"))


def publish_blocks(
    blocks: list[dict[str, Any]], *, shm_name: str | None
) -> dict[str, Any]:
    """Move per-DIP record columns into one shared-memory segment.

    ``blocks`` carry their ``latency_ms``/``completed``/``timestamp``
    arrays inline; this packs them into the segment (layout: latency
    f8[total] | timestamp f8[total] | completed u1[total]), replaces the
    arrays with block offsets, and returns the result dict the merge
    consumes.  The segment name is assigned by the *parent* so a failed
    dispatch can still discard every segment its surviving workers
    created; it is detached from this process's resource tracker because
    the parent unlinks it after the merge.
    """
    total = sum(block["count"] for block in blocks)
    try:
        shm = shared_memory.SharedMemory(
            name=shm_name, create=True, size=max(1, total * 17)
        )
    except FileExistsError:
        # Stale segment from a crashed earlier run under the same name.
        _discard_shm(shm_name)
        shm = shared_memory.SharedMemory(
            name=shm_name, create=True, size=max(1, total * 17)
        )
    try:
        lat = np.ndarray((total,), dtype=np.float64, buffer=shm.buf)
        ts = np.ndarray((total,), dtype=np.float64, buffer=shm.buf, offset=total * 8)
        done = np.ndarray((total,), dtype=np.uint8, buffer=shm.buf, offset=total * 16)
        offset = 0
        for block in blocks:
            end = offset + block["count"]
            lat[offset:end] = block.pop("latency_ms")
            ts[offset:end] = block.pop("timestamp")
            done[offset:end] = block.pop("completed")
            block["offset"] = offset
            offset = end
        del lat, ts, done
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    name = shm.name
    _unregister_shm(shm)
    shm.close()
    return {"blocks": blocks, "shm": name, "total": total}


def _discard_shm(name: str) -> None:
    """Best-effort unlink of a segment this process has not merged."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - racing another cleanup
        pass


def merge_shard_outcomes(
    shard_results: list[dict[str, Any]],
    *,
    collector: MetricsCollector | None = None,
) -> tuple[MetricsCollector, dict[str, Any]]:
    """Fold shard results (in shard order) into one columnar collector.

    Returns the collector plus the aggregate counters.  Shared-memory
    segments are consumed (closed and unlinked) here — the workers
    deliberately detached them from their resource trackers, so this loop
    is the segments' only owner and unlinks every one of them even when
    the merge fails partway through.
    """
    collector = collector or MetricsCollector()
    submitted = completed = dropped = 0
    busy: dict[DipId, tuple[float, int]] = {}
    pending = list(shard_results)
    try:
        for result in shard_results:
            shm = None
            lat = ts = done = None
            if "shm" in result:
                shm = shared_memory.SharedMemory(name=result["shm"])
            try:
                if shm is not None:
                    total = result["total"]
                    lat = np.ndarray((total,), dtype=np.float64, buffer=shm.buf)
                    ts = np.ndarray(
                        (total,), dtype=np.float64, buffer=shm.buf, offset=total * 8
                    )
                    done = np.ndarray(
                        (total,), dtype=np.uint8, buffer=shm.buf, offset=total * 16
                    )
                for block in result["blocks"]:
                    count = block["count"]
                    if shm is None:
                        columns = (
                            block["latency_ms"],
                            block["completed"],
                            block["timestamp"],
                        )
                    else:
                        offset = block["offset"]
                        columns = (
                            lat[offset : offset + count],
                            done[offset : offset + count].astype(bool),
                            ts[offset : offset + count],
                        )
                    collector.extend_columns(block["dip"], *columns)
                    submitted += block["submitted"]
                    dropped += block["dropped"]
                    completed += block["submitted"] - block["dropped"]
                    busy[block["dip"]] = (
                        block["busy_seconds"],
                        block["servers"],
                    )
            finally:
                if shm is not None:
                    del lat, ts, done
                    shm.close()
                    shm.unlink()
            pending.remove(result)
    except BaseException:
        # A failed merge must not strand the still-unconsumed segments in
        # /dev/shm (nothing else will ever unlink them).
        for result in pending[1:] if pending else []:
            if "shm" in result:
                _discard_shm(result["shm"])
        raise
    counters = {
        "submitted": submitted,
        "completed": completed,
        "dropped": dropped,
        "busy": busy,
    }
    return collector, counters


def run_request_sharded(
    spec: "ExperimentSpec",
    plan: "ShardPlan",
    *,
    workers: int | None = None,
    pool: "WorkerPool | None" = None,
    dips: Mapping[DipId, Any] | None = None,
) -> "RunResult":
    """Execute ``spec`` as ``plan.shards`` independent DIP shards.

    ``workers`` bounds the process fan-out (``None`` picks
    ``min(shards, cpu_count)``; ``<= 1`` runs every shard in-process, which
    still gets the kernel's per-request speedup).  A caller-provided
    :class:`~repro.parallel.pool.WorkerPool` is reused warm and left open;
    a caller-built ``dips`` pool skips rebuilding it from the spec.
    """
    from repro.api.result import Provenance, RunResult
    from repro.api.runners import (
        now_iso,
        pool_from_spec,
        replay_controller_weights,
    )

    if plan.mode != "exact":
        raise ConfigurationError(
            f"plan mode is {plan.mode!r}, not 'exact'"
            + (f": {plan.fallback_reason}" if plan.fallback_reason else "")
        )
    started_at, started = now_iso(), time.perf_counter()
    if dips is None:
        dips = pool_from_spec(spec.pool, spec.seed)
    dip_ids = list(dips)
    if tuple(dip_ids) != tuple(d for s in plan.dip_slices for d in s):
        raise ConfigurationError("shard plan does not cover the spec's pool")
    total_capacity = sum(d.capacity_rps for d in dips.values())
    rate = spec.workload.load_fraction * total_capacity
    duration = spec.workload.num_requests / rate
    warmup = spec.workload.warmup_s
    horizon = warmup + duration

    weights = replay_controller_weights(spec)
    if plan.routing == "iid-weighted" and weights is not None:
        probabilities = [max(0.0, weights.get(d, 0.0)) for d in dip_ids]
        if sum(probabilities) <= 0:
            probabilities = None
    else:
        probabilities = None

    index_of = {dip_id: i for i, dip_id in enumerate(dip_ids)}
    if pool is not None:
        # A caller-provided pool defines the real fan-out; record its width.
        workers = pool.max_workers
    elif workers is None:
        workers = min(plan.shards, os.cpu_count() or 1)
    use_processes = workers > 1 or pool is not None
    run_tag = f"repro-{os.getpid()}-{os.urandom(4).hex()}"
    payloads = []
    for shard_index, dip_slice in enumerate(plan.dip_slices):
        stations = []
        for dip_id in dip_slice:
            model = dips[dip_id].latency_model
            stations.append(
                (
                    dip_id,
                    index_of[dip_id],
                    model.servers,
                    model.servers / model.capacity_rps,
                )
            )
        payloads.append(
            {
                "stations": stations,
                "seed": spec.seed,
                "rate_rps": rate,
                "horizon_s": horizon,
                "measure_from": warmup,
                "num_dips": len(dip_ids),
                "routing": plan.routing,
                "probabilities": probabilities,
                "queue_capacity": QUEUE_CAPACITY,
                "use_shm": use_processes,
                "shm_name": f"{run_tag}-s{shard_index}",
            }
        )

    if use_processes:
        from repro.parallel.pool import WorkerPool

        own_pool = pool is None
        pool = pool or WorkerPool(max_workers=workers)
        try:
            shard_results = pool.map(run_shard_task, payloads)
        except BaseException:
            # A worker died mid-fan-out: the shards that *did* finish have
            # already detached their segments from every resource tracker,
            # so discard them by their parent-assigned names.
            for payload in payloads:
                _discard_shm(payload["shm_name"])
            raise
        finally:
            if own_pool:
                pool.close()
    else:
        shard_results = [run_shard_task(payload) for payload in payloads]

    collector, counters = merge_shard_outcomes(shard_results)
    for dip_id, (busy_seconds, servers) in counters["busy"].items():
        collector.record_utilization(
            {dip_id: min(1.0, busy_seconds / (servers * horizon))}
        )

    metrics = {
        "mean_latency_ms": collector.mean_latency_ms(),
        "p50_latency_ms": collector.percentile_latency_ms(50),
        "p99_latency_ms": collector.percentile_latency_ms(99),
        "drop_fraction": (
            counters["dropped"] / counters["submitted"]
            if counters["submitted"]
            else 0.0
        ),
        "requests_submitted": float(counters["submitted"]),
        "duration_s": duration,
    }
    summaries = {
        dip: {
            "requests": float(row.requests),
            "mean_latency_ms": row.mean_latency_ms,
            "p99_latency_ms": row.p99_latency_ms,
            "cpu_utilization": row.cpu_utilization,
            "drop_fraction": row.drop_fraction,
        }
        for dip, row in collector.summaries().items()
    }
    return RunResult(
        spec=spec,
        runner=spec.runner,
        seed=spec.seed,
        metrics={k: float(v) for k, v in metrics.items()},
        dip_summaries=summaries,
        provenance=Provenance(
            started_at=started_at,
            wall_clock_s=time.perf_counter() - started,
            shards=plan.shards,
            workers=max(1, workers),
            shard_mode="exact",
        ),
        detail={"plan": plan, "collector": collector},
    )
